#include "serve/shard_worker.h"

#include <chrono>
#include <utility>
#include <vector>

#ifdef __linux__
#include <signal.h>
#include <sys/prctl.h>
#endif

#include "common/logging.h"
#include "net/socket.h"
#include "net/wire.h"
#include "store/snapshot.h"

namespace sweetknn::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// How long the worker waits for the router to connect after binding.
constexpr std::chrono::seconds kAcceptTimeout{60};
/// Per-reply send budget. The router always reads its pending reply, so
/// hitting this means the router is gone or wedged — exit either way.
constexpr std::chrono::seconds kSendTimeout{30};
/// Idle budget between requests. Effectively "forever": a dead router
/// surfaces as EOF (or the parent-death signal below) long before this.
constexpr std::chrono::hours kIdleTimeout{24};

net::Frame ErrorFrame(const Status& status) {
  net::Frame frame;
  frame.type = static_cast<uint32_t>(net::MsgType::kError);
  frame.payload = net::EncodeError(status);
  return frame;
}

net::Frame AckFrame() {
  net::Frame frame;
  frame.type = static_cast<uint32_t>(net::MsgType::kAck);
  return frame;
}

}  // namespace

ShardWorker::ShardWorker(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

Status ShardWorker::Run() {
#ifdef __linux__
  // A router that dies without a clean Shutdown (test harnesses, crashed
  // benches) must not leak worker processes: die with the parent.
  prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  Result<net::Listener> listener = net::Listener::Bind(socket_path_);
  SK_RETURN_IF_ERROR(listener.status());
  Result<net::Connection> accepted =
      listener.value().Accept(SteadyClock::now() + kAcceptTimeout);
  SK_RETURN_IF_ERROR(accepted.status());
  net::Connection conn = std::move(accepted).value();

  for (;;) {
    Result<net::Frame> request =
        net::RecvFrame(conn, SteadyClock::now() + kIdleTimeout);
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kUnavailable) {
        return Status::Ok();  // router closed the connection (or died)
      }
      return request.status();
    }
    bool shutdown = false;
    const net::Frame reply = Dispatch(request.value(), &shutdown);
    SK_RETURN_IF_ERROR(net::SendFrame(conn, reply.type, reply.payload,
                                      SteadyClock::now() + kSendTimeout));
    if (shutdown) return Status::Ok();
  }
}

net::Frame ShardWorker::Dispatch(const net::Frame& request, bool* shutdown) {
  switch (static_cast<net::MsgType>(request.type)) {
    case net::MsgType::kPrepareCold: {
      const Status status = HandlePrepareCold(request.payload);
      return status.ok() ? AckFrame() : ErrorFrame(status);
    }
    case net::MsgType::kPrepareSnapshot: {
      const Status status = HandlePrepareSnapshot(request.payload);
      return status.ok() ? AckFrame() : ErrorFrame(status);
    }
    case net::MsgType::kQuery: {
      net::Frame reply;
      const Status status = HandleQuery(request.payload, &reply);
      return status.ok() ? std::move(reply) : ErrorFrame(status);
    }
    case net::MsgType::kInsert: {
      const Status status = HandleInsert(request.payload);
      return status.ok() ? AckFrame() : ErrorFrame(status);
    }
    case net::MsgType::kRemove: {
      net::Frame reply;
      const Status status = HandleRemove(request.payload, &reply);
      return status.ok() ? std::move(reply) : ErrorFrame(status);
    }
    case net::MsgType::kCompact: {
      const Status status = HandleCompact(request.payload);
      return status.ok() ? AckFrame() : ErrorFrame(status);
    }
    case net::MsgType::kSaveShard: {
      const Status status = HandleSaveShard(request.payload);
      return status.ok() ? AckFrame() : ErrorFrame(status);
    }
    case net::MsgType::kJobSubmit: {
      const Status status = HandleJobSubmit(request.payload);
      return status.ok() ? AckFrame() : ErrorFrame(status);
    }
    case net::MsgType::kJobPoll: {
      net::Frame reply;
      const Status status = HandleJobPoll(request.payload, &reply);
      return status.ok() ? std::move(reply) : ErrorFrame(status);
    }
    case net::MsgType::kJobCancel:
      return HandleJobCancel(request.payload);
    case net::MsgType::kJobResult: {
      net::Frame reply;
      const Status status = HandleJobResult(request.payload, &reply);
      return status.ok() ? std::move(reply) : ErrorFrame(status);
    }
    case net::MsgType::kExportLive: {
      net::Frame reply;
      const Status status = HandleExportLive(request.payload, &reply);
      return status.ok() ? std::move(reply) : ErrorFrame(status);
    }
    case net::MsgType::kHealth:
      return HandleHealth();
    case net::MsgType::kListIndexes:
      return HandleListIndexes();
    case net::MsgType::kShutdown:
      *shutdown = true;
      return AckFrame();
    default:
      return ErrorFrame(Status::InvalidArgument(
          "shard worker: unknown message type " +
          std::to_string(request.type)));
  }
}

void ShardWorker::AdoptConfig(const core::TiOptions& options,
                              const gpusim::DeviceSpec& device,
                              const core::PlannerConfig& planner,
                              bool enable_ann,
                              const ann::GraphBuildParams& ann_params) {
  options_ = options;
  device_ = device;
  if (!planner_) planner_ = std::make_unique<core::RoutePlanner>(planner);
  enable_ann_ = enable_ann;
  ann_params_ = ann_params;
  configured_ = true;
}

ShardHost* ShardWorker::FindShard(uint32_t shard_index) {
  const auto it = shards_.find(shard_index);
  return it == shards_.end() ? nullptr : it->second.get();
}

Status ShardWorker::HandlePrepareCold(const std::string& payload) {
  net::PrepareColdRequest req;
  SK_RETURN_IF_ERROR(net::DecodePrepareCold(payload, &req));
  if (req.slice.empty()) {
    return Status::InvalidArgument("PrepareCold: empty target slice");
  }
  if (dims_ != 0 && req.slice.cols() != dims_) {
    return Status::InvalidArgument(
        "PrepareCold: slice has " + std::to_string(req.slice.cols()) +
        " dims, this worker serves " + std::to_string(dims_));
  }
  if (!shards_.empty() && req.tenant != tenant_) {
    return Status::InvalidArgument("PrepareCold: shard belongs to index '" +
                                   req.tenant + "', this worker hosts '" +
                                   tenant_ + "'");
  }
  tenant_ = req.tenant;
  AdoptConfig(req.options, req.device, req.planner, req.enable_ann,
              req.ann_params);
  // The shard engines are pinned to one execution thread, exactly like
  // KnnService's (the engine is bit-identical at any worker count; the
  // fan-out across workers is the parallel axis here).
  core::TiOptions shard_options = options_;
  shard_options.sim_threads = 1;
  auto shard = std::make_unique<ShardHost>(device_, shard_options);
  shard->ConfigureAnn(enable_ann_, ann_params_, options_.sim_threads);
  shard->offset = static_cast<uint32_t>(req.offset);
  shard->epoch = ++epoch_counter_;
  shard->BuildCold(req.slice);
  dims_ = req.slice.cols();
  shards_[req.shard_index] = std::move(shard);
  return Status::Ok();
}

Status ShardWorker::HandlePrepareSnapshot(const std::string& payload) {
  net::PrepareSnapshotRequest req;
  SK_RETURN_IF_ERROR(net::DecodePrepareSnapshot(payload, &req));
  Result<store::IndexSnapshot> loaded = store::LoadIndexSnapshot(req.path);
  SK_RETURN_IF_ERROR(loaded.status());
  const store::IndexSnapshot& snap = loaded.value();
  if (snap.shard_index != req.shard_index) {
    return Status::InvalidArgument(
        req.path + " records shard " + std::to_string(snap.shard_index) +
        ", expected " + std::to_string(req.shard_index));
  }
  if (snap.options_fingerprint != store::OptionsFingerprint(req.options)) {
    return Status::InvalidArgument(
        req.path + " was built under different options");
  }
  if (snap.device_fingerprint != store::DeviceFingerprint(req.device)) {
    return Status::InvalidArgument(
        req.path + " was built for a different device");
  }
  if (dims_ != 0 && snap.target.cols() != dims_) {
    return Status::InvalidArgument(
        req.path + " holds " + std::to_string(snap.target.cols()) +
        "-dimensional points, this worker serves " + std::to_string(dims_));
  }
  if (!shards_.empty() && req.tenant != tenant_) {
    return Status::InvalidArgument(
        "PrepareSnapshot: shard belongs to index '" + req.tenant +
        "', this worker hosts '" + tenant_ + "'");
  }
  tenant_ = req.tenant;
  AdoptConfig(req.options, req.device, req.planner, req.enable_ann,
              req.ann_params);
  core::TiOptions shard_options = options_;
  shard_options.sim_threads = 1;
  auto shard = std::make_unique<ShardHost>(device_, shard_options);
  shard->ConfigureAnn(enable_ann_, ann_params_, options_.sim_threads);
  shard->AdoptOverlay(snap);
  shard->RestoreBase(snap.target, snap.clustering);
  shard->epoch = ++epoch_counter_;
  dims_ = snap.target.cols();
  shards_[req.shard_index] = std::move(shard);
  return Status::Ok();
}

Status ShardWorker::HandleQuery(const std::string& payload,
                                net::Frame* reply) {
  net::QueryRequest req;
  SK_RETURN_IF_ERROR(net::DecodeQuery(payload, &req));
  if (req.tenant != tenant_) {
    return Status::InvalidArgument("Query: names index '" + req.tenant +
                                   "', this worker hosts '" + tenant_ + "'");
  }
  if (req.k == 0) return Status::InvalidArgument("Query: k must be > 0");
  if (req.queries.empty()) {
    return Status::InvalidArgument("Query: empty query matrix");
  }
  if (req.queries.cols() != dims_) {
    return Status::InvalidArgument(
        "Query: " + std::to_string(req.queries.cols()) +
        "-dimensional queries, this worker serves " + std::to_string(dims_));
  }
  if (req.shard_indices.empty()) {
    return Status::InvalidArgument("Query: no shard indices named");
  }
  net::QueryReply out;
  out.shard_indices = req.shard_indices;
  out.answers.reserve(req.shard_indices.size());
  for (const uint32_t index : req.shard_indices) {
    ShardHost* shard = FindShard(index);
    if (shard == nullptr) {
      return Status::NotFound("Query: shard " + std::to_string(index) +
                              " is not hosted by this worker");
    }
    // Per-shard routing, same decision inputs as KnnService's planner
    // pass. Both routes answer bit-identically, so the cluster's answers
    // cannot depend on which side of the cost model a shard lands on.
    const core::QueryRoute route = planner_->Choose(
        req.queries.rows(), shard->base_rows(), dims_);
    out.answers.push_back(shard->SearchGroup(req.queries,
                                             static_cast<int>(req.k), route,
                                             options_.metric, req.mode));
  }
  queries_served_ += req.queries.rows();
  reply->type = static_cast<uint32_t>(net::MsgType::kQueryReply);
  reply->payload = net::EncodeQueryReply(out);
  return Status::Ok();
}

Status ShardWorker::HandleInsert(const std::string& payload) {
  net::InsertRequest req;
  SK_RETURN_IF_ERROR(net::DecodeInsert(payload, &req));
  ShardHost* shard = FindShard(req.shard_index);
  if (shard == nullptr) {
    return Status::NotFound("Insert: shard " +
                            std::to_string(req.shard_index) +
                            " is not hosted by this worker");
  }
  if (req.point.size() != dims_) {
    return Status::InvalidArgument(
        "Insert: point has " + std::to_string(req.point.size()) +
        " dims, this worker serves " + std::to_string(dims_));
  }
  // The router allocates ids strictly upward; a violation here means a
  // router bug or a replayed frame, not a crash-worthy invariant.
  if (!shard->delta.ids.empty() && req.id <= shard->delta.ids.back()) {
    return Status::InvalidArgument(
        "Insert: id " + std::to_string(req.id) +
        " does not exceed the shard's delta ids");
  }
  if (shard->Owns(req.id)) {
    return Status::InvalidArgument("Insert: id " + std::to_string(req.id) +
                                   " already lives in this shard");
  }
  shard->delta.Append(req.id, req.point.data());
  return Status::Ok();
}

Status ShardWorker::HandleRemove(const std::string& payload,
                                 net::Frame* reply) {
  net::RemoveRequest req;
  SK_RETURN_IF_ERROR(net::DecodeRemove(payload, &req));
  ShardHost* shard = FindShard(req.shard_index);
  if (shard == nullptr) {
    return Status::NotFound("Remove: shard " +
                            std::to_string(req.shard_index) +
                            " is not hosted by this worker");
  }
  net::RemoveReply out;
  out.found = shard->ApplyRemove(req.id);
  reply->type = static_cast<uint32_t>(net::MsgType::kRemoveReply);
  reply->payload = net::EncodeRemoveReply(out);
  return Status::Ok();
}

Status ShardWorker::HandleCompact(const std::string& payload) {
  net::CompactRequest req;
  SK_RETURN_IF_ERROR(net::DecodeCompact(payload, &req));
  ShardHost* shard = FindShard(req.shard_index);
  if (shard == nullptr) {
    return Status::NotFound("Compact: shard " +
                            std::to_string(req.shard_index) +
                            " is not hosted by this worker");
  }
  // Same pre-checks as KnnService::CompactShardInternal. The worker is
  // single-threaded, so the capture/rebuild/install protocol runs
  // synchronously with nothing to race: the carried-forward overlay is
  // necessarily empty, but running the identical steps keeps the state
  // byte-identical to the in-process compactor's.
  if (shard->Pristine() || shard->live_rows() == 0) return Status::Ok();
  CompactionPlan plan;
  CaptureCompaction(shard, static_cast<int>(req.shard_index), &plan);
  core::TiOptions shard_options = options_;
  shard_options.sim_threads = 1;
  std::unique_ptr<ShardHost> fresh = RebuildCompacted(
      plan, device_, shard_options, dims_, enable_ann_, ann_params_);
  CarryOverlayForward(*shard, plan, fresh.get());
  fresh->epoch = ++epoch_counter_;
  shards_[req.shard_index] = std::move(fresh);
  return Status::Ok();
}

Status ShardWorker::HandleSaveShard(const std::string& payload) {
  net::SaveShardRequest req;
  SK_RETURN_IF_ERROR(net::DecodeSaveShard(payload, &req));
  ShardHost* shard = FindShard(req.shard_index);
  if (shard == nullptr) {
    return Status::NotFound("SaveShard: shard " +
                            std::to_string(req.shard_index) +
                            " is not hosted by this worker");
  }
  const store::IndexSnapshot snap = shard->Export(
      req.dataset_name, "ShardWorker::SaveShard", req.shard_index,
      req.shard_count, store::OptionsFingerprint(options_),
      store::DeviceFingerprint(device_), req.next_id);
  return store::SaveIndexSnapshot(snap, req.path);
}

Status ShardWorker::HandleJobSubmit(const std::string& payload) {
  net::JobSubmitRequest req;
  SK_RETURN_IF_ERROR(net::DecodeJobSubmit(payload, &req));
  if (req.tenant != tenant_) {
    return Status::InvalidArgument("JobSubmit: names index '" + req.tenant +
                                   "', this worker hosts '" + tenant_ + "'");
  }
  if (job_ != nullptr) {
    return Status::InvalidArgument(
        "JobSubmit: job " + std::to_string(job_->spec.job_id) +
        " is already active (one job slot per worker)");
  }
  if (req.queries.rows() > 0 && req.queries.cols() != dims_) {
    return Status::InvalidArgument(
        "JobSubmit: " + std::to_string(req.queries.cols()) +
        "-dimensional queries, this worker serves " + std::to_string(dims_));
  }
  if (req.kind == net::WireJobKind::kKnn && req.k == 0) {
    return Status::InvalidArgument("JobSubmit: knn jobs need k > 0");
  }
  if (req.shard_indices.empty()) {
    return Status::InvalidArgument("JobSubmit: no shard indices named");
  }
  for (const uint32_t index : req.shard_indices) {
    if (FindShard(index) == nullptr) {
      return Status::NotFound("JobSubmit: shard " + std::to_string(index) +
                              " is not hosted by this worker");
    }
  }
  if (req.chunk_rows == 0) req.chunk_rows = 1;
  auto job = std::make_unique<WorkerJob>();
  if (req.kind == net::WireJobKind::kKnn) {
    job->knn = KnnResult(req.queries.rows(), static_cast<int>(req.k));
  }
  job->spec = std::move(req);
  job_ = std::move(job);
  return Status::Ok();
}

void ShardWorker::AdvanceJob() {
  WorkerJob& job = *job_;
  const size_t total = job.spec.queries.rows();
  if (job.failed || job.done_rows >= total) return;
  const size_t begin = job.done_rows;
  const size_t end =
      std::min<size_t>(total, begin + job.spec.chunk_rows);
  HostMatrix chunk(end - begin, dims_);
  std::memcpy(chunk.mutable_data(), job.spec.queries.row(begin),
              (end - begin) * dims_ * sizeof(float));
  std::vector<core::RangeShardAnswer> range_answers;
  std::vector<core::ShardAnswer> knn_answers;
  for (const uint32_t index : job.spec.shard_indices) {
    ShardHost* shard = FindShard(index);
    if (shard == nullptr) {  // cannot happen in the single-threaded loop
      job.failed = true;
      job.error = "shard " + std::to_string(index) + " disappeared mid-job";
      return;
    }
    const core::QueryRoute route =
        planner_->Choose(chunk.rows(), shard->base_rows(), dims_);
    if (job.spec.kind == net::WireJobKind::kRange) {
      range_answers.push_back(
          shard->RangeGroup(chunk, job.spec.radius, route, options_.metric));
    } else {
      knn_answers.push_back(shard->SearchGroup(
          chunk, static_cast<int>(job.spec.k), route, options_.metric));
    }
  }
  if (job.spec.kind == net::WireJobKind::kRange) {
    job.range.AppendRows(
        core::MergeRangeShardAnswers(range_answers, chunk.rows()));
  } else {
    const KnnResult merged =
        core::MergeShardAnswers(knn_answers, static_cast<int>(job.spec.k));
    for (size_t q = 0; q < merged.num_queries(); ++q) {
      std::memcpy(job.knn.mutable_row(begin + q), merged.row(q),
                  job.spec.k * sizeof(Neighbor));
    }
  }
  job.done_rows = end;
  queries_served_ += chunk.rows();
}

Status ShardWorker::HandleJobPoll(const std::string& payload,
                                  net::Frame* reply) {
  net::JobPollRequest req;
  SK_RETURN_IF_ERROR(net::DecodeJobPoll(payload, &req));
  if (job_ == nullptr || job_->spec.job_id != req.job_id) {
    return Status::NotFound("JobPoll: no active job " +
                            std::to_string(req.job_id));
  }
  AdvanceJob();
  net::JobPollReply out;
  out.total_rows = job_->spec.queries.rows();
  out.done_rows = job_->done_rows;
  if (job_->failed) {
    out.state = net::WireJobState::kFailed;
    out.error = job_->error;
  } else if (job_->done_rows >= out.total_rows) {
    out.state = net::WireJobState::kDone;
  } else {
    out.state = net::WireJobState::kRunning;
  }
  reply->type = static_cast<uint32_t>(net::MsgType::kJobPollReply);
  reply->payload = net::EncodeJobPollReply(out);
  return Status::Ok();
}

net::Frame ShardWorker::HandleJobCancel(const std::string& payload) {
  net::JobCancelRequest req;
  const Status status = net::DecodeJobCancel(payload, &req);
  if (!status.ok()) return ErrorFrame(status);
  // Idempotent: cancelling an unknown (already finished, never started)
  // job is an ack — the router cancels on cleanup paths where the
  // worker may have forgotten the job long ago.
  if (job_ != nullptr && job_->spec.job_id == req.job_id) job_.reset();
  return AckFrame();
}

Status ShardWorker::HandleJobResult(const std::string& payload,
                                    net::Frame* reply) {
  net::JobResultRequest req;
  SK_RETURN_IF_ERROR(net::DecodeJobResult(payload, &req));
  if (job_ == nullptr || job_->spec.job_id != req.job_id) {
    return Status::NotFound("JobResult: no active job " +
                            std::to_string(req.job_id));
  }
  if (job_->failed) {
    const std::string error = job_->error;
    job_.reset();
    return Status::Internal("JobResult: job failed: " + error);
  }
  if (job_->done_rows < job_->spec.queries.rows()) {
    return Status::InvalidArgument(
        "JobResult: job " + std::to_string(req.job_id) +
        " is still running");
  }
  net::JobResultReply out;
  out.kind = job_->spec.kind;
  out.range = std::move(job_->range);
  out.knn = std::move(job_->knn);
  job_.reset();
  reply->type = static_cast<uint32_t>(net::MsgType::kJobResultReply);
  reply->payload = net::EncodeJobResultReply(out);
  return Status::Ok();
}

Status ShardWorker::HandleExportLive(const std::string& payload,
                                     net::Frame* reply) {
  net::ExportLiveRequest req;
  SK_RETURN_IF_ERROR(net::DecodeExportLive(payload, &req));
  if (req.tenant != tenant_) {
    return Status::InvalidArgument("ExportLive: names index '" + req.tenant +
                                   "', this worker hosts '" + tenant_ + "'");
  }
  if (req.shard_indices.empty()) {
    return Status::InvalidArgument("ExportLive: no shard indices named");
  }
  std::vector<std::vector<uint32_t>> ids(req.shard_indices.size());
  std::vector<HostMatrix> points(req.shard_indices.size());
  size_t total = 0;
  for (size_t s = 0; s < req.shard_indices.size(); ++s) {
    ShardHost* shard = FindShard(req.shard_indices[s]);
    if (shard == nullptr) {
      return Status::NotFound("ExportLive: shard " +
                              std::to_string(req.shard_indices[s]) +
                              " is not hosted by this worker");
    }
    shard->ExportLive(&ids[s], &points[s]);
    total += ids[s].size();
  }
  net::ExportLiveReply out;
  out.ids.reserve(total);
  out.points = HostMatrix(total, dims_);
  size_t row = 0;
  for (size_t s = 0; s < ids.size(); ++s) {
    for (size_t r = 0; r < ids[s].size(); ++r, ++row) {
      out.ids.push_back(ids[s][r]);
      std::memcpy(out.points.mutable_row(row), points[s].row(r),
                  dims_ * sizeof(float));
    }
  }
  reply->type = static_cast<uint32_t>(net::MsgType::kExportLiveReply);
  reply->payload = net::EncodeExportLiveReply(out);
  return Status::Ok();
}

net::Frame ShardWorker::HandleHealth() const {
  net::HealthReply out;
  out.queries_served = queries_served_;
  for (const auto& [index, shard] : shards_) {
    net::HealthReply::ShardHealth health;
    health.index = index;
    health.base_rows = shard->base_rows();
    health.delta_points = shard->delta.size();
    health.tombstones = shard->delta.tombstones.size();
    health.live_rows = shard->live_rows();
    out.shards.push_back(health);
  }
  net::Frame reply;
  reply.type = static_cast<uint32_t>(net::MsgType::kHealthReply);
  reply.payload = net::EncodeHealthReply(out);
  return reply;
}

net::Frame ShardWorker::HandleListIndexes() const {
  net::ListIndexesReply out;
  if (!shards_.empty()) out.names.push_back(tenant_);
  net::Frame reply;
  reply.type = static_cast<uint32_t>(net::MsgType::kListIndexesReply);
  reply.payload = net::EncodeListIndexesReply(out);
  return reply;
}

}  // namespace sweetknn::serve
