#ifndef SWEETKNN_SERVE_ROUTER_H_
#define SWEETKNN_SERVE_ROUTER_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/metrics.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/wire.h"
#include "serve/knn_service.h"

namespace sweetknn::serve {

/// Knobs of the cluster front-end (docs/distributed.md).
struct RouterConfig {
  /// The serving knobs shared with the in-process backend: num_shards,
  /// micro-batching, options/device/planner, dataset_name. cache_capacity,
  /// snapshot_dir, auto_compact and compact_delta_fraction are ignored
  /// (the router has no result cache and compacts only explicitly).
  ServiceConfig service;
  /// Worker processes. Clamped to [1, num_shards]; shard s's primary is
  /// worker s % num_workers.
  int num_workers = 2;
  /// Extra copies of each shard on distinct workers (clamped to
  /// num_workers - 1). With replicas >= 1 a worker death fails over:
  /// the replica is promoted and the group retried, bit-identically.
  int replicas = 0;
  /// Per-RPC budget (send + reply). A worker that misses it is declared
  /// dead — SIGSTOP wedges and SIGKILLs look the same from here.
  std::chrono::milliseconds rpc_timeout{10000};
  /// Budget for prepare RPCs (cold builds cluster the whole slice) and
  /// for replica catch-up (save + adopt a snapshot).
  std::chrono::milliseconds prepare_timeout{120000};
  /// The worker executable, exec'd as
  /// "<worker_binary> shard-worker --socket=<path>". Tests and the CLI
  /// pass the sweetknn_cli binary.
  std::string worker_binary;
  /// Sockets and catch-up snapshots live here; created (and removed at
  /// Shutdown) when empty: a fresh directory under TMPDIR.
  std::string work_dir;
  /// Named index this cluster serves. Rides every prepare and query
  /// frame; workers record it at prepare time and reject queries naming
  /// a different one (one tenant per cluster today; docs/serving.md).
  std::string tenant = kDefaultTenant;
};

/// Cumulative cluster counters, the router-side subset of ServiceStats
/// plus the failure-path counters the cluster adds.
struct RouterStats {
  uint64_t requests = 0;
  uint64_t queries = 0;
  uint64_t rejected_requests = 0;
  uint64_t batches = 0;
  uint64_t engine_groups = 0;
  uint64_t batched_queries = 0;
  uint64_t inserts = 0;
  uint64_t removes = 0;
  uint64_t remove_misses = 0;
  uint64_t compactions = 0;
  /// Workers declared dead (timeout, transport error, or bad reply).
  uint64_t worker_deaths = 0;
  /// RPCs that missed their deadline.
  uint64_t rpc_timeouts = 0;
  /// Query groups re-fanned after a failover.
  uint64_t retried_groups = 0;
  /// Replicas re-established by RestoreReplication.
  uint64_t replicas_restored = 0;
  /// Completed cluster jobs (RadiusSearch / SelfJoin / KnnGraph).
  uint64_t jobs = 0;
};

/// The multi-process cluster front-end: KnnService's dispatch/merge
/// logic over shard-worker processes instead of in-process threads
/// (docs/distributed.md).
///
/// Start() spawns num_workers worker processes, connects to each over a
/// unix socket, and cold-builds the same contiguous target slices
/// KnnService would build, placing shard s's primary on worker s % W and
/// its replicas on the following workers. Search/JoinBatch admit into
/// the same micro-batching dispatcher (max_batch_size / max_batch_wait,
/// per-k groups); each group fans out one Query RPC per primary worker
/// and the per-shard answers are merged with core::MergeShardAnswers —
/// the identical exact merge the in-process backend runs, so cluster
/// answers are bit-identical to a local KnnService over the same target
/// and mutation sequence (tests/integration/cluster_differential_test.cc
/// proves this byte for byte, across worker counts and through worker
/// kills).
///
/// Mutations mirror KnnService's semantics: Insert allocates stable ids
/// upward and lands id on shard id % S; Remove resolves its owner
/// deterministically (initial rows by slice, inserted rows by modulo);
/// both are applied to the primary and every replica of the shard, so
/// replicas track primaries exactly. CompactShard runs the same
/// capture/rebuild/install protocol on every host of the shard.
///
/// Failure handling: every RPC carries rpc_timeout. A worker that times
/// out, drops its connection, or answers garbage is declared dead
/// (SIGKILLed for good measure); its primaries fail over to their
/// replicas and the in-flight group is re-fanned — callers just see the
/// answer, a little later. A shard with no live host left fails requests
/// with Unavailable. RestoreReplication() re-establishes missing
/// replicas on surviving workers via snapshot catch-up (primary exports
/// a .sksnap, the new host adopts it).
///
/// Thread model: Search/JoinBatch/Insert/Remove/Compact* are
/// thread-safe. mutex_ serializes query groups, mutations, and topology
/// changes (failover, catch-up) — one consistent cluster state per
/// answer, like index_mutex_ in KnnService.
class Router {
 public:
  /// Spawns and prepares the cluster. On any spawn/connect/prepare
  /// failure every already-started worker is torn down and the error
  /// returned.
  static Result<std::unique_ptr<Router>> Start(const HostMatrix& target,
                                               const RouterConfig& config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// The k nearest target rows of one query point. Blocks until the
  /// micro-batch holding it has been served.
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query_point,
                                       int k);
  /// Mode-selected Search: exact (the default above) or approx under a
  /// recall SLA, answered by the workers' ANN tier (requires
  /// service.enable_ann; approx against graph-free workers falls back to
  /// the exact path shard by shard).
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query_point,
                                       int k, const ann::SearchMode& mode);
  /// The k nearest target rows for every row of `queries`, as one
  /// request (rows ride in one micro-batch, order preserved).
  Result<KnnResult> JoinBatch(const HostMatrix& queries, int k);
  /// Mode-selected JoinBatch; see the Search overload.
  Result<KnnResult> JoinBatch(const HostMatrix& queries, int k,
                              const ann::SearchMode& mode);

  // -- Offline jobs (docs/modalities.md) ------------------------------
  // Each runs as a wire-level job on every primary worker (kJobSubmit /
  // kJobPoll / kJobResult; one chunk per poll) and merges the per-worker
  // stable-id answers with the same reductions KnnService applies —
  // cluster job answers are bit-identical to local ones. The calls are
  // synchronous and serialize with queries and mutations on the
  // cluster mutex (one consistent cluster state per job). A worker
  // death mid-job fails the job with Unavailable (jobs are not
  // re-fanned; the caller simply resubmits).

  /// Every live point within the closed ball of each query row.
  Result<RangeResult> RadiusSearch(const HostMatrix& queries, float radius);
  /// Every unordered live pair within `radius`, once per pair (a < b).
  Result<std::vector<SelfJoinPair>> SelfJoin(float radius);
  /// Exact kNN graph over the live set; output.query_ids pairs with
  /// output.graph rows, ascending stable-id order.
  Result<JobOutput> KnnGraph(int k);

  /// Adds a point; returns its stable id (same allocation sequence as
  /// KnnService::Insert). Applied to the shard's primary and replicas.
  Result<uint32_t> Insert(const std::vector<float>& point);
  /// Deletes a stable id. True if it was live, false if unknown or
  /// already removed.
  Result<bool> Remove(uint32_t id);

  /// Synchronously folds shard `shard`'s overlay into a fresh base on
  /// every host of the shard.
  Status CompactShard(int shard);
  Status CompactAll();

  /// Re-establishes missing replicas (after worker deaths) on surviving
  /// workers: the primary exports a snapshot into work_dir, the new host
  /// adopts it. No-op for shards already at full replication; error if
  /// a shard has fewer live hosts than possible candidates allow.
  Status RestoreReplication();

  /// Rejects new work, drains admitted requests, stops every worker
  /// (Shutdown RPC, then waitpid with a SIGKILL fallback), and removes
  /// the work directory if this router created it. Idempotent; also run
  /// by the destructor.
  void Shutdown();

  RouterStats stats() const;
  /// Cluster metrics: the per-worker health/latency series
  /// ("sweetknn_router_worker<w>_..." — RPC latency histogram, RPC and
  /// failure counters, liveness gauge) plus router-level counters and
  /// latency histograms, all through the PR-4 registry.
  const common::MetricsRegistry& metrics() const { return metrics_; }
  std::string ExportMetricsJson() const;

  int num_shards() const { return num_shards_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  size_t dims() const { return dims_; }
  size_t target_rows() const;
  /// False once the router has declared worker `w` dead.
  bool worker_alive(int w) const;
  /// The worker's process id — tests kill/SIGSTOP it to drive failover.
  pid_t worker_pid(int w) const;
  /// Asks worker `w` for the names of the indexes it hosts (the
  /// kListIndexes RPC) — the wire-level counterpart of
  /// KnnService::ListIndexes.
  Result<std::vector<std::string>> ListWorkerIndexes(int w);

 private:
  struct Request {
    std::vector<float> rows;
    size_t num_rows = 0;
    int k = 0;
    /// Normalized at admission, like KnnService's.
    ann::SearchMode mode;
    std::chrono::steady_clock::time_point admit_time;
    /// Unlike KnnService's, a group can fail here (every host of a shard
    /// dead), so the promise carries a Result.
    std::promise<Result<KnnResult>> promise;
  };
  using RequestPtr = std::unique_ptr<Request>;

  /// One in-flight RPC's resolution, pushed by the worker's IO thread.
  struct RpcReply {
    int worker = -1;
    net::Frame frame;
    Status status;  ///< Transport-level; the frame may still be kError.
  };
  using ReplyQueue = common::BlockingQueue<RpcReply>;

  /// One pending RPC in a worker's outbox.
  struct Call {
    uint32_t type = 0;
    std::string payload;
    std::chrono::milliseconds timeout{0};
    std::shared_ptr<ReplyQueue> reply_to;
  };

  /// One worker process: its pipe to the world. The IO thread drains the
  /// outbox strictly in order — the protocol is synchronous
  /// request/reply per connection, so the first transport failure (or
  /// timeout) poisons the channel: the connection closes and every later
  /// call fails fast. A poisoned channel never desynchronizes (a late
  /// reply to call N can never be taken for a reply to call N+1).
  class WorkerChannel {
   public:
    WorkerChannel(int index, pid_t pid, net::Connection conn,
                  common::Histogram* rpc_seconds, common::Counter* rpcs,
                  common::Counter* failures);
    ~WorkerChannel();

    /// Enqueues an RPC; the reply (or its failure) lands in
    /// `call.reply_to`. False once the channel is closed for shutdown.
    bool Submit(Call call);
    /// Poisons the channel from outside (failover): pending and future
    /// calls fail with Unavailable, the socket closes (unblocking any
    /// in-flight poll).
    void Poison();
    /// Stops accepting calls, drains the outbox (failing what's left),
    /// and joins the IO thread.
    void Join();

    int index() const { return index_; }
    pid_t pid() const { return pid_; }

   private:
    void IoLoop();

    const int index_;
    const pid_t pid_;
    net::Connection conn_;
    std::atomic<bool> poisoned_{false};
    common::BlockingQueue<Call> outbox_;
    common::Histogram* rpc_seconds_;
    common::Counter* rpcs_;
    common::Counter* failures_;
    std::thread io_;
  };

  Router(const RouterConfig& config, size_t dims, size_t rows);

  void InitMetrics();

  /// Spawn + connect + prepare, factored out of Start(). On error the
  /// caller tears the router down.
  Status Bootstrap(const HostMatrix& target);
  Result<pid_t> SpawnWorker(const std::string& socket_path) const;

  Result<std::future<Result<KnnResult>>> Submit(RequestPtr request);
  void DispatchLoop();
  void RunGroup(std::vector<RequestPtr> group);
  /// One fan-out attempt over the current placement. Fills `answers`
  /// (indexed by shard) on success; on failure records the workers to
  /// declare dead in `failed`. Caller holds mutex_.
  bool TryFanout(const HostMatrix& queries, int k,
                 const ann::SearchMode& mode,
                 std::vector<core::ShardAnswer>* answers,
                 std::vector<int>* failed);

  /// Sends one RPC to worker `w` and waits for its reply frame,
  /// expecting `expect_type` (or kError, decoded into the Status).
  /// Caller holds mutex_ for placement-dependent calls.
  Result<net::Frame> CallWorker(int w, net::MsgType type,
                                std::string payload,
                                std::chrono::milliseconds timeout,
                                net::MsgType expect_type);

  /// Declares a worker dead: poisons its channel, SIGKILLs the process,
  /// promotes replicas of its primaries, drops it from replica lists.
  /// Caller holds mutex_.
  void MarkWorkerDeadLocked(int w, const std::string& why);

  /// Bumps the RPC-timeout counter + stats. Called both when the
  /// router-side reply wait expires and when a channel IO thread
  /// reports DeadlineExceeded for an individual call (the channel
  /// enforces the same deadline and usually loses the race by less).
  void NoteRpcTimeout();

  /// Every live host of shard `s`, primary first. Caller holds mutex_.
  std::vector<int> ShardHostsLocked(int s) const;
  /// Deterministic owner of stable id `id` (initial rows by slice,
  /// inserted rows by modulo) — no broadcast needed. Caller holds mutex_.
  int OwningShardLocked(uint32_t id) const;

  /// Applies one mutation RPC to every live host of shard `s`, marking
  /// failed hosts dead. Returns the primary's reply, or Unavailable when
  /// no host is left. Caller holds mutex_.
  Result<net::Frame> MutateShardLocked(int s, net::MsgType type,
                                       const std::string& payload,
                                       net::MsgType expect_type);

  /// The job fan-out plan: (worker, its primary shards), ascending by
  /// worker, every shard covered exactly once. Unavailable when a shard
  /// has no live host. Caller holds mutex_.
  Result<std::vector<std::pair<int, std::vector<uint32_t>>>> JobPlanLocked()
      const;

  /// Runs one wire-level job over `plan` to completion: submit on every
  /// worker, poll rounds (each poll advances a worker by one chunk),
  /// result fetch. Fills `replies` in plan order. On any worker failure
  /// the job is cancelled on the survivors and the error returned (the
  /// failing worker is declared dead on transport-level errors). Caller
  /// holds mutex_.
  Status RunWireJobLocked(
      net::WireJobKind kind, float radius, uint32_t k,
      const HostMatrix& queries,
      const std::vector<std::pair<int, std::vector<uint32_t>>>& plan,
      std::vector<net::JobResultReply>* replies);

  /// The cluster's live points in globally ascending stable-id order
  /// (kExportLive per worker + merge) — the query source of SelfJoin
  /// and KnnGraph, mirroring KnnService::SnapshotLive. Caller holds
  /// mutex_.
  Status ExportLiveLocked(
      const std::vector<std::pair<int, std::vector<uint32_t>>>& plan,
      std::vector<uint32_t>* ids, HostMatrix* points);

  /// Bumps the completed-jobs counter + stats.
  void NoteJobDone();

  RouterConfig config_;
  size_t dims_ = 0;
  int num_shards_ = 0;
  /// First global row of each initial slice (Remove's owner lookup).
  std::vector<uint32_t> shard_offsets_;
  /// Rows the constructor's target held (ids 0..n0-1 are slice-owned).
  uint32_t initial_rows_ = 0;
  bool own_work_dir_ = false;

  /// Guards placement (primary_, replicas_, alive_), next_id_,
  /// target_rows_, and serializes query groups with mutations and
  /// failovers — the cluster's index_mutex_.
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<WorkerChannel>> workers_;
  std::vector<bool> alive_;
  std::vector<int> primary_;                ///< shard -> worker, -1 = lost
  std::vector<std::vector<int>> replicas_;  ///< shard -> replica workers
  uint32_t next_id_ = 0;
  size_t target_rows_ = 0;
  uint64_t catchup_counter_ = 0;  ///< names catch-up snapshot files
  uint64_t next_wire_job_id_ = 1;  ///< names cluster jobs on the wire

  common::BlockingQueue<RequestPtr> queue_;
  std::thread dispatcher_;
  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;

  mutable std::mutex stats_mutex_;
  RouterStats stats_;

  common::MetricsRegistry metrics_;
  common::Counter* m_requests_ = nullptr;
  common::Counter* m_queries_ = nullptr;
  common::Counter* m_rejected_ = nullptr;
  common::Counter* m_batches_ = nullptr;
  common::Counter* m_engine_groups_ = nullptr;
  common::Counter* m_batched_queries_ = nullptr;
  common::Counter* m_inserts_ = nullptr;
  common::Counter* m_removes_ = nullptr;
  common::Counter* m_remove_misses_ = nullptr;
  common::Counter* m_compactions_ = nullptr;
  common::Counter* m_worker_deaths_ = nullptr;
  common::Counter* m_rpc_timeouts_ = nullptr;
  common::Counter* m_retried_groups_ = nullptr;
  common::Counter* m_replicas_restored_ = nullptr;
  common::Counter* m_jobs_ = nullptr;
  common::Histogram* m_queue_wait_ = nullptr;
  common::Histogram* m_merge_ = nullptr;
  common::Histogram* m_request_latency_ = nullptr;
  common::Gauge* m_workers_alive_ = nullptr;
  // Per-worker series, indexed by worker ("sweetknn_router_worker<w>_...").
  std::vector<common::Histogram*> m_worker_rpc_seconds_;
  std::vector<common::Counter*> m_worker_rpcs_;
  std::vector<common::Counter*> m_worker_failures_;
  std::vector<common::Gauge*> m_worker_alive_;
};

}  // namespace sweetknn::serve

#endif  // SWEETKNN_SERVE_ROUTER_H_
