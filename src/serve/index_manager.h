#ifndef SWEETKNN_SERVE_INDEX_MANAGER_H_
#define SWEETKNN_SERVE_INDEX_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "serve/shard_backend.h"

namespace sweetknn::serve {

/// The tenant every legacy single-index call targets. Its snapshots
/// live at the snapshot-dir root (named tenants get
/// "<snapshot_dir>/<tenant>/"), so every pre-multi-tenant directory
/// layout keeps warm-starting unchanged.
inline constexpr const char* kDefaultTenant = "default";

/// One named, independently mutable index: the complete per-tenant
/// state of the multi-tenant service. Everything the single-tenant
/// KnnService used to guard with its one index_mutex_ lives here,
/// guarded by the tenant's own mutex — groups, mutations, compactions,
/// and swaps of different tenants never contend.
///
/// Lifetime: handed out as shared_ptr. A DropIndex removes the tenant
/// from the manager and sets `dropped`; queued requests still holding
/// the pointer drain and fail with NotFound, and the shards die with
/// the last reference.
struct TenantIndex {
  std::string name;
  size_t dims = 0;
  /// Fixed at build time (compactions and swaps replace shards, never
  /// their number), so it is readable without the mutex.
  int num_shards = 0;
  /// Scheduler weight (informational copy; the live value is inside
  /// the FairScheduler).
  double weight = 1.0;
  /// Per-tenant snapshot directory ("" = snapshots not configured).
  std::string snapshot_dir;

  /// Guards everything below it that is not atomic: shards (including
  /// their overlays), shard_offsets, target_rows, next_id. Same role —
  /// and same lock order against stats/compact/cache mutexes — as the
  /// old service-wide index_mutex_.
  mutable std::mutex mutex;
  size_t target_rows = 0;
  std::vector<std::unique_ptr<ShardHost>> shards;
  std::vector<uint32_t> shard_offsets;
  /// Next stable id Insert allocates; starts at the initial row count.
  uint32_t next_id = 0;

  /// Set by DropIndex. The dispatcher fails queued requests of a
  /// dropped tenant with NotFound instead of searching dead shards.
  std::atomic<bool> dropped{false};

  /// Overlay gauges mirrored out of the locked region, so export paths
  /// and cross-tenant sums never take another tenant's index mutex.
  std::atomic<uint64_t> delta_points{0};
  std::atomic<uint64_t> tombstones{0};
  std::atomic<uint64_t> live_rows{0};

  /// Per-tenant labeled series (TenantLabel(name)), registered by the
  /// service when the tenant is created; pointers stay valid for the
  /// registry's lifetime.
  common::Counter* m_requests = nullptr;
  common::Counter* m_queries = nullptr;
  common::Counter* m_shed = nullptr;
  common::Counter* m_deadline_exceeded = nullptr;
  common::Histogram* m_latency = nullptr;
  common::Gauge* m_live_rows = nullptr;
};

/// The registry of named indexes behind the multi-tenant KnnService:
/// a flat name -> TenantIndex map with validated names (tenant names
/// become snapshot path components and metric label values).
///
/// Thread-safe. The manager's mutex may be taken while holding a
/// tenant's index mutex (gauge sums iterate All()), never the reverse —
/// Install/Drop/Get touch only the map.
class IndexManager {
 public:
  IndexManager() = default;
  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Tenant names travel in snapshot paths, wire frames, and metric
  /// labels: 1-64 chars of [A-Za-z0-9_.-], not starting with a dot.
  static bool ValidName(const std::string& name);

  /// Registers a fully built tenant under its name. InvalidArgument on
  /// a malformed name or a duplicate — the caller built the index off
  /// to the side, so a losing race costs the build, never consistency.
  Status Install(std::shared_ptr<TenantIndex> tenant);

  /// The tenant, or nullptr when unknown (callers map that to NotFound).
  std::shared_ptr<TenantIndex> Get(const std::string& name) const;

  /// Unregisters and returns the tenant so the caller can mark it
  /// dropped and fail its queued work. NotFound when unknown.
  Result<std::shared_ptr<TenantIndex>> Drop(const std::string& name);

  /// Tenant names in lexicographic order.
  std::vector<std::string> List() const;

  /// Every live tenant, in name order.
  std::vector<std::shared_ptr<TenantIndex>> All() const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<TenantIndex>> tenants_;
};

}  // namespace sweetknn::serve

#endif  // SWEETKNN_SERVE_INDEX_MANAGER_H_
