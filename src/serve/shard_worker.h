#ifndef SWEETKNN_SERVE_SHARD_WORKER_H_
#define SWEETKNN_SERVE_SHARD_WORKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/knn_result.h"
#include "common/range_result.h"
#include "common/status.h"
#include "core/options.h"
#include "core/route_planner.h"
#include "gpusim/device_spec.h"
#include "net/frame.h"
#include "net/wire.h"
#include "serve/shard_backend.h"

namespace sweetknn::serve {

/// One worker process of the shard cluster: hosts a set of ShardHosts
/// (serve/shard_backend.h) and serves the router's framed RPCs over a
/// unix socket (net/wire.h, docs/distributed.md). The worker is the
/// remote counterpart of KnnService's in-process fan-out — both backends
/// run the identical ShardHost code against identical state, which is
/// what makes cluster answers bit-identical to local ones.
///
/// Thread model: strictly single-threaded. One connection (the router),
/// one request in flight at a time, replies in request order. The router
/// serializes all mutations and query groups on its own mutex anyway, so
/// per-worker concurrency would buy nothing and cost the determinism the
/// differential harness depends on. Shard engines run with sim_threads=1
/// like KnnService's (bit-identical at any worker count, but the
/// fan-out across workers is already the parallel axis).
///
/// Protocol errors split two ways: a malformed or inapplicable request
/// (bad payload, unknown shard) is answered with an Error frame and the
/// loop continues; a transport failure (peer gone, send timeout) ends
/// Run(). A clean EOF — the router closed the connection or died — is a
/// normal exit, not an error.
class ShardWorker {
 public:
  explicit ShardWorker(std::string socket_path);

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Binds the socket, accepts the router, and serves until a kShutdown
  /// request, peer EOF, or a transport error. Returns Ok on the first
  /// two.
  Status Run();

 private:
  /// Computes the reply frame for one request. Never fails: handler
  /// errors become Error frames.
  net::Frame Dispatch(const net::Frame& request, bool* shutdown);

  Status HandlePrepareCold(const std::string& payload);
  Status HandlePrepareSnapshot(const std::string& payload);
  Status HandleQuery(const std::string& payload, net::Frame* reply);
  Status HandleInsert(const std::string& payload);
  Status HandleRemove(const std::string& payload, net::Frame* reply);
  Status HandleCompact(const std::string& payload);
  Status HandleSaveShard(const std::string& payload);
  net::Frame HandleHealth() const;
  net::Frame HandleListIndexes() const;

  // Offline jobs (docs/modalities.md): the worker holds one job slot
  // that each poll advances by one chunk — bounded work per RPC, so the
  // serve loop stays responsive between polls.
  Status HandleJobSubmit(const std::string& payload);
  Status HandleJobPoll(const std::string& payload, net::Frame* reply);
  net::Frame HandleJobCancel(const std::string& payload);
  Status HandleJobResult(const std::string& payload, net::Frame* reply);
  Status HandleExportLive(const std::string& payload, net::Frame* reply);

  /// Adopts the config blocks that ride in every prepare (options,
  /// device, planner — the planner only on the first prepare, so its
  /// decision counter spans the worker's lifetime like KnnService's —
  /// and the ANN tier config, needed again at compaction installs).
  void AdoptConfig(const core::TiOptions& options,
                   const gpusim::DeviceSpec& device,
                   const core::PlannerConfig& planner, bool enable_ann,
                   const ann::GraphBuildParams& ann_params);

  /// The shard named by a request, or nullptr (callers answer NotFound).
  ShardHost* FindShard(uint32_t shard_index);

  /// The worker's single active job: the submit request plus the
  /// accumulated stable-id answer (range rows or knn rows, merged over
  /// this worker's shards chunk by chunk).
  struct WorkerJob {
    net::JobSubmitRequest spec;
    uint64_t done_rows = 0;
    bool failed = false;
    std::string error;
    RangeResult range;
    KnnResult knn;
  };

  /// Advances the active job by one chunk; a handler error marks the
  /// job failed instead of erroring the poll RPC.
  void AdvanceJob();

  std::string socket_path_;

  /// Service configuration, adopted from the prepare RPCs.
  core::TiOptions options_;
  gpusim::DeviceSpec device_;
  std::unique_ptr<core::RoutePlanner> planner_;
  bool configured_ = false;
  /// ANN tier config (docs/approx.md), adopted from the prepare RPCs.
  bool enable_ann_ = false;
  ann::GraphBuildParams ann_params_;
  /// The named index this worker's shards belong to, adopted from the
  /// first prepare. Every later prepare must name the same tenant, and
  /// queries naming a different one are rejected — the cluster serves
  /// one tenant per worker set today, and this pins that invariant on
  /// the wire instead of by convention.
  std::string tenant_ = "default";

  /// Hosted shards by global shard index (primaries and replicas look
  /// identical here; the role lives in the router's placement tables).
  std::map<uint32_t, std::unique_ptr<ShardHost>> shards_;
  size_t dims_ = 0;
  /// Source of shard epochs (ShardHost::epoch), worker-local.
  uint64_t epoch_counter_ = 0;
  uint64_t queries_served_ = 0;
  /// Active job, nullptr when idle (at most one per worker).
  std::unique_ptr<WorkerJob> job_;
};

}  // namespace sweetknn::serve

#endif  // SWEETKNN_SERVE_SHARD_WORKER_H_
