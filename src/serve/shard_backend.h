#ifndef SWEETKNN_SERVE_SHARD_BACKEND_H_
#define SWEETKNN_SERVE_SHARD_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "ann/ann_index.h"
#include "ann/search_mode.h"
#include "common/matrix.h"
#include "common/range_result.h"
#include "core/delta_overlay.h"
#include "core/range_search.h"
#include "core/options.h"
#include "core/route_planner.h"
#include "core/shard_merge.h"
#include "core/ti_knn_gpu.h"
#include "gpusim/device.h"
#include "simd/simd_kernels.h"
#include "store/snapshot.h"

namespace sweetknn::serve {

/// One target-set shard: a simulated device with a prepared TiKnnEngine
/// index, the pre-packed host-route copy of the same base, and the
/// mutation overlay. This is the transport-free unit both shard backends
/// host — KnnService's in-process threads and the shard-worker processes
/// hold the identical object, so a query group answered locally and one
/// answered over a socket run exactly the same code against exactly the
/// same state (the basis of the cluster-vs-local bit-identity harness).
///
/// Thread model: the host is externally synchronized. KnnService guards
/// every access with index_mutex_; a ShardWorker serves its requests
/// from one thread.
struct ShardHost {
  /// No active compaction on this shard (see compact_watermark).
  static constexpr size_t kNoCompaction = static_cast<size_t>(-1);

  explicit ShardHost(const gpusim::DeviceSpec& spec,
                     const core::TiOptions& options)
      : dev(spec), engine(&dev, options) {}

  gpusim::Device dev;
  core::TiKnnEngine engine;
  /// The frozen base pre-packed for the vectorized host route; holds
  /// exactly the bytes PrepareTarget/RestoreTarget uploaded. Replaced
  /// together with the engine (compaction installs, swaps).
  simd::PackedTargets packed_base;
  uint32_t offset = 0;  ///< First global target row of this slice.
  /// Base row -> stable id, strictly increasing; empty = identity
  /// shifted by `offset`.
  std::vector<uint32_t> id_map;
  /// Inserts since the base was clustered, plus tombstoned ids.
  core::DeltaBuffer delta;
  /// The approximate tier over the same frozen base (empty unless
  /// ConfigureAnn enabled it). Rebuilt wherever the base is: BuildCold,
  /// RestoreBase (adopting a snapshot's persisted graph when present),
  /// RebuildCompacted. Never covers the delta — SearchGroup's side scan
  /// and merge handle that exactly.
  ann::AnnIndex ann;
  /// Install ticket: bumped (from the owner's epoch counter) whenever
  /// the shard object is created or replaced. A compactor that captured
  /// an older epoch must abandon its install.
  uint64_t epoch = 0;
  /// While a compaction is in flight: how many delta entries the
  /// compactor captured. Removes of captured entries tombstone instead
  /// of erasing (the rebuild already contains them); the suffix past
  /// the watermark stays freely mutable.
  size_t compact_watermark = kNoCompaction;

  bool Pristine() const { return delta.Pristine() && id_map.empty(); }
  uint32_t BaseId(size_t i) const {
    return id_map.empty() ? offset + static_cast<uint32_t>(i) : id_map[i];
  }
  size_t base_rows() const { return base_rows_; }
  void set_base_rows(size_t n) { base_rows_ = n; }
  size_t live_rows() const {
    return base_rows_ - delta.tombstones.size() + delta.size();
  }

  /// Opts this shard into the ANN tier. Call before BuildCold /
  /// RestoreBase; the graph is built (or adopted) there. When
  /// `params.workers` is unset (<= 0), `fallback_workers` — the host's
  /// configured parallelism — fills it in, so graph builds stop silently
  /// falling back to the SWEETKNN_SIM_THREADS environment default.
  void ConfigureAnn(bool enabled, const ann::GraphBuildParams& params,
                    int fallback_workers = 0) {
    ann_enabled_ = enabled;
    ann_params_ = params;
    if (ann_params_.workers <= 0 && fallback_workers > 0) {
      ann_params_.workers = fallback_workers;
    }
  }
  bool ann_enabled() const { return ann_enabled_; }
  const ann::GraphBuildParams& ann_params() const { return ann_params_; }

  /// Cold build: PrepareTarget (upload + Step-1 landmark clustering)
  /// over this shard's slice, plus the packed host-route copy.
  void BuildCold(const HostMatrix& slice);

  /// Warm start: re-materializes the prepared index from a snapshot's
  /// bytes without re-clustering, plus the packed host-route copy.
  void RestoreBase(const HostMatrix& target,
                   const core::TargetClusteringHost& clustering);

  /// Adopts a snapshot's geometry and overlay fields (offset, id map,
  /// delta, tombstones). Does NOT restore the engine — call RestoreBase
  /// with the snapshot's target afterwards (KnnService batches the
  /// restores onto the host pool).
  void AdoptOverlay(const store::IndexSnapshot& snap);

  /// Answers one same-k query group from this shard: the complete,
  /// exact contribution the final MergeShardAnswers needs, whichever
  /// side of a socket this host lives on.
  ///
  /// A pristine shard runs its base at k and reports local indices
  /// (pristine answer, stable id = index + offset at merge time). A
  /// mutated shard over-queries its base at k + |tombstones| (masking
  /// can then never starve the top k), side-scans its delta, and merges
  /// the two locally through MergeMutableResults — reporting its exact
  /// live top-k with stable ids substituted. Either way the answer's
  /// pooled contribution is bit-identical to the flat single-process
  /// merge; see MergeShardAnswers.
  ///
  /// `route` picks the base-scan path (the caller's planner decides, so
  /// decision order stays deterministic); both routes answer
  /// bit-identically. Host-routed scans report no simulated-device
  /// stats (device_routed = false).
  ///
  /// `mode` selects the base-scan backend per group: an effectively
  /// approx mode (and a built graph) answers the base from the ANN tier
  /// under the mode's candidate budget — still over-queried for
  /// tombstones, still merged exactly with the delta scan — and reports
  /// the graph-search work counters on the answer. Exact modes (the
  /// default) are untouched.
  core::ShardAnswer SearchGroup(const HostMatrix& queries, int k,
                                core::QueryRoute route, core::Metric metric,
                                const ann::SearchMode& mode =
                                    ann::SearchMode::Exact());

  /// Answers one same-radius range group from this shard: every live
  /// point within the closed ball of each query row, as stable ids
  /// (tombstones masked, delta matches merged in — see
  /// core::RangeShardAnswer). `route` picks the TI-pruned scan
  /// (kDevice) or the exhaustive host scan (kHost); both answer
  /// bit-identically and neither touches the simulated device.
  core::RangeShardAnswer RangeGroup(const HostMatrix& queries, float radius,
                                    core::QueryRoute route,
                                    core::Metric metric);

  /// This shard's live points and their stable ids, ascending id order
  /// (base survivors then delta — every delta id postdates the base).
  /// The query source of the offline jobs; the caller merges shards.
  void ExportLive(std::vector<uint32_t>* ids, HostMatrix* points) const;

  /// True when stable id `id` lives in this shard (base row —
  /// tombstoned or not — or delta entry).
  bool Owns(uint32_t id) const;

  /// Removes stable id `id` from this shard: erases a free delta entry
  /// physically, tombstones a base row or a compaction-consumed delta
  /// entry (erasing a consumed entry would resurrect the point at
  /// install). Returns false — with no state change — when the id is
  /// not here or already removed.
  bool ApplyRemove(uint32_t id);

  /// Exports the prepared index as a snapshot, normalizing the overlay
  /// (delta entries tombstoned mid-compaction are dropped outright,
  /// restoring the file invariant that tombstones name base rows only).
  /// `next_id` is the owner's id-allocator watermark, recorded in
  /// mutated snapshots.
  store::IndexSnapshot Export(const std::string& dataset_name,
                              const std::string& builder,
                              uint32_t shard_index, uint32_t shard_count,
                              const std::string& options_fingerprint,
                              const std::string& device_fingerprint,
                              uint32_t next_id) const;

 private:
  /// The host image of the engine's Step-1 clustering, exported lazily
  /// for the TI range scans and cached until the base is replaced
  /// (BuildCold / RestoreBase; compaction installs a fresh ShardHost).
  const core::TargetClusteringHost& CachedClustering();

  size_t base_rows_ = 0;
  bool ann_enabled_ = false;
  ann::GraphBuildParams ann_params_;
  /// A snapshot's persisted graph, parked by AdoptOverlay until
  /// RestoreBase has the points to pair it with.
  ann::KnnGraph pending_graph_;
  std::unique_ptr<core::TargetClusteringHost> clustering_cache_;
};

/// Everything a compaction captures under the owner's lock before
/// rebuilding off-lock (docs/mutability.md).
struct CompactionPlan {
  int shard = -1;
  uint64_t epoch = 0;    ///< Shard epoch at capture.
  size_t watermark = 0;  ///< Delta entries consumed by the plan.
  HostMatrix points;     ///< Survivors + consumed delta, id order.
  std::vector<uint32_t> ids;  ///< Stable ids of `points` rows.
  /// Tombstones at capture (already excluded from `points`).
  std::unordered_set<uint32_t> captured_tombstones;
};

/// Capture step of the compaction protocol: snapshots the shard's live
/// points (base survivors, then consumed live delta entries — ascending
/// stable-id order) into `plan` and marks the watermark on the shard.
/// Caller must hold the lock that guards `shard` and must have checked
/// that the shard is compactable (no compaction in flight, non-pristine
/// overlay, live_rows > 0).
void CaptureCompaction(ShardHost* shard, int shard_index,
                       CompactionPlan* plan);

/// Rebuild step, safe to run off-lock: a fresh simulated device (so the
/// adaptive scheme sees the same free memory a cold build would) and a
/// full Step-1 clustering over the captured points. Captured ids that
/// are literally 0..n-1 restore pristine form (no id map); otherwise the
/// plan's ids become the new base's id map. `options` should carry the
/// owner's effective shard options (sim_threads = 1). When the owner
/// serves the ANN tier, pass its config so the fresh base gets a fresh
/// graph at install.
std::unique_ptr<ShardHost> RebuildCompacted(
    const CompactionPlan& plan, const gpusim::DeviceSpec& device,
    const core::TiOptions& options, size_t dims, bool ann_enabled = false,
    const ann::GraphBuildParams& ann_params = ann::GraphBuildParams{});

/// Install-time carry-over: mutations that landed on `old_shard` while
/// the rebuild ran move onto `fresh` — the delta suffix past the
/// watermark verbatim (its entries are never tombstoned; removes past
/// the watermark erase physically), and removes of captured rows as
/// tombstones of the new base. Caller holds the lock and has already
/// verified old_shard.epoch == plan.epoch.
void CarryOverlayForward(const ShardHost& old_shard,
                         const CompactionPlan& plan, ShardHost* fresh);

}  // namespace sweetknn::serve

#endif  // SWEETKNN_SERVE_SHARD_BACKEND_H_
