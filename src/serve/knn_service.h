#ifndef SWEETKNN_SERVE_KNN_SERVICE_H_
#define SWEETKNN_SERVE_KNN_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/metrics.h"
#include "common/range_result.h"
#include "common/status.h"
#include "core/delta_overlay.h"
#include "core/options.h"
#include "core/route_planner.h"
#include "core/shard_merge.h"
#include "core/ti_knn_gpu.h"
#include "gpusim/device.h"
#include "serve/index_manager.h"
#include "serve/scheduler.h"
#include "serve/shard_backend.h"
#include "simd/simd_kernels.h"
#include "store/snapshot.h"

namespace sweetknn::serve {

/// Knobs of the serving layer.
struct ServiceConfig {
  /// Target-set shards per index, each a simulated device with its own
  /// prepared TiKnnEngine index. Clamped per index to its target row
  /// count.
  int num_shards = 2;
  /// Micro-batching: the dispatcher coalesces admitted requests of one
  /// tenant until a batch holds this many query rows ...
  int max_batch_size = 64;
  /// ... or this much wall-clock has passed since the batch's first
  /// request, whichever comes first.
  std::chrono::microseconds max_batch_wait{500};
  /// LRU result-cache entries, keyed on (tenant, k, query row bytes).
  /// 0 = off. Serves single-row Search() requests only.
  size_t cache_capacity = 0;
  /// Load shedding: total admitted-but-undispatched requests, summed
  /// over every tenant, beyond which Search/JoinBatch are bounced with
  /// kUnavailable instead of growing the queue (and its tail latency)
  /// without limit. Shed requests are counted in stats().shed_requests
  /// and the sweetknn_shed_requests_total counter. 0 = unbounded (the
  /// legacy behavior).
  size_t max_queue_depth = 0;
  /// Cost units (query rows) a weight-1.0 tenant earns per round of the
  /// weighted-fair scheduler (see serve/scheduler.h). 0 = use
  /// max_batch_size, so one round roughly funds one micro-batch.
  size_t fair_quantum = 0;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::TeslaK20c();
  core::TiOptions options = core::TiOptions::Sweet();
  /// If non-empty, warm start: restore each shard's prepared index from
  /// "<snapshot_dir>/shard-<s>-of-<n>.sksnap" instead of running the
  /// Step-1 landmark clustering. The snapshots must match the service's
  /// options/device fingerprints, shard geometry, and the target bytes
  /// passed to the constructor (which also means they must be pristine —
  /// adopt mutated snapshots with FromSnapshots instead); on any
  /// mismatch or load failure the service logs a warning and cold-builds
  /// every shard (check stats().warm_started_shards to see which path
  /// ran). Named tenants created with CreateIndex warm-start from
  /// "<snapshot_dir>/<tenant>/" the same way.
  std::string snapshot_dir;
  /// Dataset name recorded as provenance in snapshots written by
  /// SaveSnapshots.
  std::string dataset_name;
  /// Mutability (docs/mutability.md): a shard is scheduled for
  /// compaction once its overlay (delta points + tombstones) exceeds
  /// this fraction of its frozen base rows. <= 0 disables the threshold
  /// (CompactShard/CompactAll stay available).
  double compact_delta_fraction = 0.25;
  /// Run the background compactor thread, which rebuilds over-threshold
  /// shards off the serving path. false = compaction happens only via
  /// explicit CompactShard/CompactAll calls (deterministic; tests use
  /// this).
  bool auto_compact = true;
  /// Cost-based routing of each query group's per-shard base scan
  /// between the shard's simulated-GPU TI engine and the vectorized
  /// host kernels (docs/performance.md). Both routes answer bit-
  /// identically; host-routed shard runs report no simulated-device
  /// stats (sim-time counters, filter/placement decisions), so tests
  /// asserting those pin mode = kForceDevice. SWEETKNN_PLANNER
  /// ("auto" | "device" | "host") overrides the mode at construction.
  core::PlannerConfig planner;
  /// Build the approximate kNN-graph tier on every shard (and rebuild it
  /// at each compaction install), enabling SearchMode::Approx requests
  /// (docs/approx.md). Exact traffic — and every service built without
  /// this — is completely unaffected.
  bool enable_ann = false;
  /// NN-descent build knobs for the ANN tier. When ann_params.workers
  /// is 0, graph builds use options.sim_threads (the service's
  /// configured parallelism) before falling back to SWEETKNN_SIM_THREADS.
  ann::GraphBuildParams ann_params;
  /// Recall self-measurement: every Nth approx group is also answered
  /// exactly (under the same lock, against the same index state) and the
  /// observed recall@k lands in the sweetknn_ann_recall_estimate
  /// histogram. 0 disables the probe; small N is for tests/benchmarks —
  /// each probe costs one exact group.
  int ann_recall_probe_interval = 0;
};

/// The three offline modalities KnnService runs as long-running jobs
/// (docs/modalities.md). Radius jobs carry their own query rows;
/// self-join and kNN-graph jobs run over the tenant's live set as
/// snapshotted at job start.
enum class JobKind { kRadiusSearch, kSelfJoin, kKnnGraph };

/// Job lifecycle: kPending (queued behind earlier jobs) -> kRunning ->
/// one of kDone / kCancelled / kFailed. CancelJob flips the cancel
/// flag; the job thread honors it between chunks, so a cancel lands
/// within one chunk's worth of work.
enum class JobState { kPending, kRunning, kDone, kCancelled, kFailed };

/// What SubmitJob takes. `chunk_rows` bounds how many query rows each
/// admitted chunk carries — chunks ride the same weighted-fair admission
/// queue as point lookups, so a job never monopolizes the dispatcher
/// and a mid-job CancelJob takes effect at the next chunk boundary.
struct JobSpec {
  JobKind kind = JobKind::kRadiusSearch;
  /// Closed-ball radius (kRadiusSearch / kSelfJoin).
  float radius = 0.0f;
  /// Neighbors per node (kKnnGraph).
  int k = 0;
  /// Query rows (kRadiusSearch only; the other kinds query the live set).
  HostMatrix queries;
  /// Query rows per admitted chunk (clamped to >= 1).
  size_t chunk_rows = 64;
  std::string tenant = kDefaultTenant;
};

/// PollJob's answer.
struct JobProgress {
  JobState state = JobState::kPending;
  uint64_t total_rows = 0;  ///< Query rows the job will run.
  uint64_t done_rows = 0;   ///< Query rows completed so far.
  std::string error;        ///< Set when state == kFailed.
};

/// A finished job's result (TakeJobResult). Which fields are populated
/// depends on the kind; `query_ids` gives the stable id behind each
/// result row for the live-set kinds.
struct JobOutput {
  JobKind kind = JobKind::kRadiusSearch;
  /// kSelfJoin / kKnnGraph: stable ids of the snapshot rows, ascending.
  std::vector<uint32_t> query_ids;
  /// kRadiusSearch: row q = matches of input query q.
  RangeResult range;
  /// kSelfJoin: each unordered live pair within the radius exactly once
  /// (a < b), ascending (a, distance, b).
  std::vector<SelfJoinPair> pairs;
  /// kKnnGraph: row i = exact k nearest live points of query_ids[i],
  /// excluding itself.
  KnnResult graph;
};

/// Per-call options of the tenant-qualified Search/JoinBatch/mutation
/// overloads. The zero-argument legacy overloads behave exactly like
/// CallOptions{} — default tenant, no deadline.
struct CallOptions {
  /// The named index the call targets (see CreateIndex). Unknown names
  /// fail with NotFound.
  std::string tenant = kDefaultTenant;
  /// Queries only: relative deadline, measured from admission. A
  /// request still queued when it expires completes with
  /// kDeadlineExceeded without ever touching the shards. 0 = none.
  std::chrono::microseconds timeout{0};
};

/// Service-level counters, all cumulative since construction. The
/// metrics registry (KnnService::metrics()) carries the richer view —
/// latency histograms, per-stage sim time, compaction timings, and the
/// per-tenant labeled series.
struct ServiceStats {
  uint64_t requests = 0;        ///< Search/JoinBatch calls admitted.
  uint64_t queries = 0;         ///< Query rows answered (incl. cache hits).
  /// Search/JoinBatch calls rejected because the service was shutting
  /// down (never admitted, not counted in requests).
  uint64_t rejected_requests = 0;
  /// Search/JoinBatch calls bounced with kUnavailable by the
  /// max_queue_depth admission bound (never admitted).
  uint64_t shed_requests = 0;
  /// Admitted requests whose deadline expired while queued; completed
  /// with kDeadlineExceeded without touching the shards.
  uint64_t deadline_exceeded = 0;
  /// Micro-batches dispatched by the batching loop (one per coalescing
  /// window, regardless of how many distinct k values it held).
  uint64_t batches = 0;
  /// Same-k groups run through the shard engines. A mixed-k micro-batch
  /// produces several engine groups, so engine_groups >= batches.
  uint64_t engine_groups = 0;
  uint64_t batched_queries = 0; ///< Query rows that went through engines.
  uint64_t cache_lookups = 0;
  uint64_t cache_hits = 0;
  /// Result-cache inserts dropped because an index swap, mutation, or
  /// compaction completed after the answer was computed (the
  /// stale-insert guard).
  uint64_t cache_stale_drops = 0;
  uint64_t peak_queue_depth = 0;  ///< Admission-queue high-water mark.
  /// Simulated device time summed over every shard of every batch (the
  /// throughput cost: total device-seconds consumed).
  double total_sim_time_s = 0.0;
  /// Per-batch max over shards, summed over batches (the latency cost:
  /// shards run concurrently, a batch completes with its slowest shard).
  double critical_sim_time_s = 0.0;
  /// Level-2 distance computations summed over shards.
  uint64_t distance_calcs = 0;
  /// Shards restored from snapshots at construction (0 = cold build).
  uint64_t warm_started_shards = 0;
  /// Completed SwapIndex calls.
  uint64_t index_swaps = 0;
  /// Points admitted through Insert/InsertBatch.
  uint64_t inserts = 0;
  /// Successful Remove calls.
  uint64_t removes = 0;
  /// Remove calls naming an id that was never live or already removed.
  uint64_t remove_misses = 0;
  /// Shard compactions installed (background or explicit).
  uint64_t compactions = 0;
  /// Compactions abandoned because a SwapIndex (or competing install)
  /// replaced the shard while the rebuild ran off-lock.
  uint64_t compaction_aborts = 0;
  /// Current overlay size, summed over every tenant's shards (gauges,
  /// not cumulative).
  uint64_t delta_points = 0;
  uint64_t tombstones = 0;
  /// Approximate tier: engine groups / query rows answered through the
  /// ANN graph search (a subset of engine_groups / batched_queries).
  uint64_t approx_groups = 0;
  uint64_t approx_queries = 0;
  /// Range modality: same-radius groups run through the shards, query
  /// rows in them, and in-ball matches returned.
  uint64_t range_groups = 0;
  uint64_t range_queries = 0;
  uint64_t range_matches = 0;
  /// Offline jobs by terminal state (submitted >= the other three +
  /// still-active jobs).
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t jobs_failed = 0;

  /// Mean fraction of max_batch_size filled per dispatched micro-batch
  /// (> 1 is possible when one JoinBatch request exceeds max_batch_size).
  double BatchOccupancy(int max_batch_size) const {
    if (batches == 0 || max_batch_size <= 0) return 0.0;
    return static_cast<double>(batched_queries) /
           (static_cast<double>(batches) *
            static_cast<double>(max_batch_size));
  }
  double MeanBatchSize() const {
    if (batches == 0) return 0.0;
    return static_cast<double>(batched_queries) /
           static_cast<double>(batches);
  }
  /// Critical-path device time amortized over every batched query row —
  /// the number micro-batching drives down.
  double AmortizedSimTimePerQuery() const {
    if (batched_queries == 0) return 0.0;
    return critical_sim_time_s / static_cast<double>(batched_queries);
  }
};

/// A concurrent batched KNN serving front-end over sharded
/// TiKnnEngine indexes — the "many users, many datasets" code path of
/// the ROADMAP's north star.
///
/// The service is multi-tenant: an IndexManager hosts any number of
/// named indexes (the constructor's target becomes the "default"
/// tenant; CreateIndex/DropIndex add and remove others at runtime),
/// each sharded, mutable, and snapshot-able independently. Client
/// threads call Search/JoinBatch concurrently — with a CallOptions
/// naming a tenant and optionally carrying a deadline — and requests
/// land in a weighted-fair admission scheduler (serve/scheduler.h):
/// per-tenant sub-queues drained in deficit-round-robin order, so a
/// flooding tenant cannot starve the others, and an optional
/// max_queue_depth bound sheds overload with kUnavailable instead of
/// letting tail latency grow without bound. The dispatcher thread
/// drains the scheduler with dynamic micro-batching (max_batch_size /
/// max_batch_wait, one tenant per batch); each micro-batch fans out
/// over the tenant's shards on the shared host thread pool and the
/// per-shard top-k lists are merged into the exact global top-k —
/// answers are bit-identical to a single-engine RunOnce over that
/// tenant's unsharded target set.
///
/// Every target set is mutable while serving: Insert/Remove buffer
/// changes in per-shard delta overlays (new points served by an exact
/// brute-force side scan merged through MergeMutableResults, deleted ids
/// tombstone-masked), and a background compactor folds over-threshold
/// overlays into freshly clustered bases off the serving path —
/// queries never block on a compaction, and every answer reflects one
/// consistent index state (mutations and swaps are serialized with
/// query groups on the tenant's index mutex). Rows are named by stable
/// ids per tenant: the initial rows get 0..rows-1 and Insert allocates
/// upward.
///
///   KnnService service(gallery, {.num_shards = 4});
///   service.CreateIndex("faces", faces_matrix, /*weight=*/4.0);
///   // from many threads:
///   std::vector<Neighbor> nn = service.Search(point, /*k=*/10).value();
///   auto fnn = service.Search({.tenant = "faces"}, point, 10);
///
/// Lock order (to keep the TSan suites meaningful): a tenant's index
/// mutex may be held while taking stats_mutex_, compact_mutex_, or the
/// manager's map mutex (never the reverse); two tenants' index mutexes
/// are never held together; cache_mutex_ never nests with any of them —
/// cache bookkeeping that needs stats releases the cache lock first.
class KnnService {
 public:
  explicit KnnService(const HostMatrix& target,
                      const ServiceConfig& config = {});
  ~KnnService();

  KnnService(const KnnService&) = delete;
  KnnService& operator=(const KnnService&) = delete;

  /// Adopts a complete shard snapshot set — including any mutation
  /// overlays (.sksnap v2) — as a new service's default tenant. The
  /// number of shards comes from the file set (config.num_shards is
  /// ignored); the fingerprints must match `config`. This is how a
  /// mutated service warm-starts exactly: SaveSnapshots + FromSnapshots
  /// round-trips every answer bit-identically.
  static Result<std::unique_ptr<KnnService>> FromSnapshots(
      const std::string& dir, const ServiceConfig& config = {});

  // -- Index management (multi-tenancy; see docs/serving.md) ----------

  /// Creates a named index over `target` with the given fair-share
  /// weight. The index is built off to the side (cold, or warm from
  /// "<snapshot_dir>/<name>/" when the bytes match) and published
  /// atomically: no query sees it half-built. InvalidArgument on a
  /// malformed or duplicate name; Unavailable when shutting down. Must
  /// not be called from a host-pool worker thread.
  Status CreateIndex(const std::string& name, const HostMatrix& target,
                     double weight = 1.0);

  /// Removes a named index. In-flight and queued requests naming it
  /// complete with NotFound; its shards die with the last reference.
  /// The default tenant cannot be dropped.
  Status DropIndex(const std::string& name);

  /// Live index names, lexicographic (always includes "default").
  std::vector<std::string> ListIndexes() const;

  /// Updates a tenant's fair-share weight (takes effect on the next
  /// scheduler round). NotFound when unknown.
  Status SetIndexWeight(const std::string& name, double weight);

  // -- Queries --------------------------------------------------------

  /// The k nearest target rows of one query point. Thread-safe; blocks
  /// until the request's micro-batch has been served (or a cache hit
  /// answers immediately). Returns Unavailable — without aborting and
  /// without side effects — if the request raced a concurrent
  /// Shutdown() (counted in stats().rejected_requests) or was shed by
  /// the max_queue_depth bound (counted in stats().shed_requests).
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query_point,
                                       int k);
  /// Mode-selected Search: exact (the default above) or approx under a
  /// recall SLA. Effectively exact modes (recall_target >= 1.0) batch,
  /// cache, and answer identically to plain Search.
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query_point,
                                       int k, const ann::SearchMode& mode);
  /// Tenant-qualified Search: targets opts.tenant, honors opts.timeout
  /// (kDeadlineExceeded when it expires in the queue). NotFound for
  /// unknown tenants.
  Result<std::vector<Neighbor>> Search(const CallOptions& opts,
                                       const std::vector<float>& query_point,
                                       int k);
  Result<std::vector<Neighbor>> Search(const CallOptions& opts,
                                       const std::vector<float>& query_point,
                                       int k, const ann::SearchMode& mode);

  /// The k nearest target rows for every row of `queries`, as one
  /// request (the rows always ride in the same micro-batch and the row
  /// order is preserved). Thread-safe; blocks until served. Returns
  /// Unavailable if the request raced a concurrent Shutdown() or was
  /// shed by the admission bound.
  Result<KnnResult> JoinBatch(const HostMatrix& queries, int k);
  /// Mode-selected JoinBatch; see the Search overload.
  Result<KnnResult> JoinBatch(const HostMatrix& queries, int k,
                              const ann::SearchMode& mode);
  /// Tenant-qualified JoinBatch; see the Search overload.
  Result<KnnResult> JoinBatch(const CallOptions& opts,
                              const HostMatrix& queries, int k);
  Result<KnnResult> JoinBatch(const CallOptions& opts,
                              const HostMatrix& queries, int k,
                              const ann::SearchMode& mode);

  /// Every live point within the closed ball of each query row, as one
  /// request through the admission queue (variable-cardinality rows;
  /// see common/range_result.h). Answers are bit-identical across
  /// planner routes, SIMD tiers, and shard counts. Thread-safe; blocks
  /// until served; Unavailable on shutdown/shed like JoinBatch.
  Result<RangeResult> RadiusSearch(const HostMatrix& queries, float radius);
  Result<RangeResult> RadiusSearch(const CallOptions& opts,
                                   const HostMatrix& queries, float radius);

  // -- Offline jobs (docs/modalities.md) ------------------------------

  /// Enqueues a long-running job; returns its id immediately. Jobs run
  /// one at a time on the job thread, chunked through the same
  /// weighted-fair admission queue as point lookups — lookups keep
  /// being served while a job runs. Unavailable when shutting down;
  /// NotFound for an unknown tenant; InvalidArgument on a malformed
  /// spec (kRadiusSearch without queries, kKnnGraph with k <= 0, ...).
  Result<uint64_t> SubmitJob(const JobSpec& spec);

  /// The job's state and progress. NotFound for an unknown (or already
  /// taken) id.
  Result<JobProgress> PollJob(uint64_t job_id) const;

  /// Requests cancellation. Takes effect at the next chunk boundary
  /// (kPending jobs cancel before running at all); terminal jobs are
  /// left as they ended. NotFound for an unknown id.
  Status CancelJob(uint64_t job_id);

  /// Moves a kDone job's output out and erases the job (poll/take of
  /// the id fail with NotFound afterwards). InvalidArgument while the
  /// job is pending/running/cancelled/failed.
  Result<JobOutput> TakeJobResult(uint64_t job_id);

  /// Synchronous self-join: submit + poll + take. Every unordered pair
  /// of live points within the closed radius, exactly once (a < b).
  Result<std::vector<SelfJoinPair>> SelfJoin(float radius);
  Result<std::vector<SelfJoinPair>> SelfJoin(const CallOptions& opts,
                                             float radius);

  /// Synchronous exact kNN graph over the live set: output.query_ids
  /// pairs with output.graph rows.
  Result<JobOutput> KnnGraph(int k);
  Result<JobOutput> KnnGraph(const CallOptions& opts, int k);

  // -- Mutations ------------------------------------------------------

  /// Adds a point to the serving set; returns its stable id. The point
  /// is served exactly from the next admitted query group on.
  /// Thread-safe; never blocks on a compaction. Returns Unavailable
  /// when racing a Shutdown().
  Result<uint32_t> Insert(const std::vector<float>& point);
  Result<uint32_t> Insert(const CallOptions& opts,
                          const std::vector<float>& point);

  /// Insert for many rows under one lock acquisition; returns their
  /// stable ids in row order.
  Result<std::vector<uint32_t>> InsertBatch(const HostMatrix& points);
  Result<std::vector<uint32_t>> InsertBatch(const CallOptions& opts,
                                            const HostMatrix& points);

  /// Deletes the point with this stable id. Returns true if it was
  /// live, false if unknown or already removed; Unavailable when racing
  /// a Shutdown(). Removing every point is allowed — queries then
  /// answer all padding.
  Result<bool> Remove(uint32_t id);
  Result<bool> Remove(const CallOptions& opts, uint32_t id);

  /// Synchronously folds one shard's overlay into a freshly clustered
  /// base (same protocol as the background compactor: capture under the
  /// lock, rebuild off-lock, install behind the in-flight group).
  /// Returns Unavailable if a competing compaction or swap superseded
  /// the rebuild; Ok when installed or when there was nothing to do.
  Status CompactShard(int shard);
  Status CompactShard(const std::string& tenant, int shard);
  /// CompactShard over every shard, stopping at the first error.
  Status CompactAll();
  Status CompactAll(const std::string& tenant);

  /// Rejects new requests and mutations, drains everything already
  /// admitted, and joins the dispatcher and the compactor. Idempotent;
  /// also run by the destructor. Every future admitted before the
  /// shutdown still resolves with its answer.
  void Shutdown();

  /// Persists every tenant's shards into `dir` (created if missing):
  /// the default tenant's as "shard-<s>-of-<n>.sksnap" at the root —
  /// byte-identical to the single-tenant layout — and each named
  /// tenant's under "<dir>/<tenant>/". Waits for in-flight micro-
  /// batches per tenant; safe to call while clients keep submitting.
  Status SaveSnapshots(const std::string& dir);
  /// Persists one tenant's shards into `dir` (at the root).
  Status SaveSnapshots(const std::string& tenant, const std::string& dir);

  /// Hot-swap: loads a complete shard set from `dir` (v1 or v2),
  /// re-materializes the replacement engines off to the side, then
  /// swaps them in behind the in-flight micro-batch, bumps the index
  /// generation, and clears the result cache. Every request is answered
  /// entirely by one index generation — never a mix — and answers
  /// computed against the old generation can never repopulate the cache
  /// after the swap. Pending (uncompacted) mutations of the old
  /// generation are replaced wholesale along with it. The set must have
  /// the tenant's shard count, dims, and the service's options/device
  /// fingerprints; on any failure the live index stays untouched and
  /// the error is returned. Must not be called from a host-pool worker
  /// thread (it runs its own fork-join region).
  Status SwapIndex(const std::string& dir);
  Status SwapIndex(const std::string& tenant, const std::string& dir);

  /// Consistent snapshot of the cumulative counters.
  ServiceStats stats() const;

  /// The service's metrics registry: latency histograms (queue wait,
  /// batch assembly, shard fan-out, merge, end-to-end), per-stage
  /// simulated-time counters, adaptive-decision counts,
  /// mutation/compaction counters, counter mirrors of ServiceStats,
  /// and the per-tenant labeled series (sweetknn_tenant_*{tenant="x"}).
  /// See docs/serving.md, "Metrics".
  const common::MetricsRegistry& metrics() const { return metrics_; }
  /// Registry exports with the queue-depth/peak/tenant-count gauges
  /// refreshed first. The queue-depth gauge is computed from the live
  /// scheduler size at export time only — it is never Set on the
  /// submit/dispatch paths, where two racing writers used to be able
  /// to publish a stale depth.
  std::string ExportMetricsJson() const;
  std::string ExportMetricsText() const;

  /// Test-only: invoked on the client thread after a cache-miss Search
  /// has computed its answer, immediately before the result-cache
  /// insert. Set it before any traffic; used to force the
  /// swap-vs-insert interleaving deterministically.
  void SetPreCacheInsertHookForTest(std::function<void()> hook) {
    pre_cache_insert_hook_ = std::move(hook);
  }

  /// Test-only: invoked on the dispatcher thread right after it dequeues
  /// the first request of each micro-batch, with no scheduler lock held.
  /// Lets tests park the dispatcher (submit a sentinel, block in the
  /// hook) to hold a known queue depth. Safe to set at any time.
  void SetPreDispatchHookForTest(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(hook_mutex_);
    pre_dispatch_hook_ = std::move(hook);
  }

  /// The batch router (live mode switch; route counters). Thread-safe.
  core::RoutePlanner& planner() { return planner_; }
  const core::RoutePlanner& planner() const { return planner_; }

  /// Shards of the default tenant (named tenants may clamp lower).
  int num_shards() const { return config_.num_shards; }
  /// Live rows of the default tenant: base minus tombstones plus delta.
  size_t target_rows() const;
  /// Live rows of a named tenant; NotFound when unknown.
  Result<size_t> target_rows(const std::string& tenant) const;
  size_t dims() const { return dims_; }
  const ServiceConfig& config() const { return config_; }

 private:
  /// No active compaction on this shard.
  static constexpr size_t kNoCompaction = ShardHost::kNoCompaction;

  /// The per-shard state lives in the transport-free ShardHost
  /// (serve/shard_backend.h) so the in-process backend here and the
  /// shard-worker processes (serve/shard_worker.h) host the identical
  /// object — queries answered locally and over a socket run the same
  /// code against the same state.
  using Shard = ShardHost;

  struct Request {
    /// The index this request targets; pinned so a concurrent DropIndex
    /// can never pull the shards out from under a queued request.
    std::shared_ptr<TenantIndex> tenant;
    std::vector<float> rows;  ///< num_rows * dims query coordinates.
    size_t num_rows = 0;
    int k = 0;
    /// Normalized at admission (Normalize()), so grouping and caching
    /// treat approx(recall 1.0) and exact as the same traffic.
    ann::SearchMode mode;
    /// Relative deadline copied from CallOptions; 0 = none. Submit
    /// turns it into the absolute `deadline` below at admit time.
    std::chrono::microseconds timeout{0};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point admit_time;
    std::promise<Result<KnnResult>> promise;
    /// Range requests (is_range) group on radius instead of (k, mode)
    /// and resolve range_promise; k/mode/promise are unused for them.
    bool is_range = false;
    float radius = 0.0f;
    std::promise<Result<RangeResult>> range_promise;
  };
  using RequestPtr = std::unique_ptr<Request>;

  /// One queued/running offline job (jobs_mutex_ guards everything but
  /// `cancel`, which PollJob-era readers never touch, and the job
  /// thread's private use of `output` while kRunning).
  struct Job {
    uint64_t id = 0;
    JobSpec spec;
    std::shared_ptr<TenantIndex> tenant;
    JobState state = JobState::kPending;
    uint64_t total_rows = 0;
    uint64_t done_rows = 0;
    std::string error;
    /// The chunk status that killed a kFailed job (sync wrappers
    /// propagate it verbatim).
    Status fail_status = Status::Ok();
    std::atomic<bool> cancel{false};
    std::chrono::steady_clock::time_point submit_time;
    JobOutput output;
  };

  /// Snapshot-set adoption (FromSnapshots).
  struct AdoptTag {};
  KnnService(AdoptTag, std::vector<store::IndexSnapshot> snapshots,
             const ServiceConfig& config);

  static FairScheduler<RequestPtr>::Options SchedOptions(
      const ServiceConfig& config);

  /// Registers every metric of the registry and caches the pointers.
  void InitMetrics();
  /// Registers the tenant's labeled series (TenantLabel(name)).
  void RegisterTenantMetrics(TenantIndex* tenant);
  /// Starts the dispatcher and (if configured) the compactor.
  void StartThreads();

  /// "<snapshot_dir>/<name>/" for named tenants, the root for the
  /// default tenant, "" when snapshots are not configured.
  std::string TenantSnapshotDir(const std::string& name) const;

  /// The tenant, or NotFound. Never nullptr on Ok.
  Result<std::shared_ptr<TenantIndex>> ResolveTenant(
      const std::string& name) const;

  /// Builds a complete tenant off to the side: contiguous slices,
  /// per-shard engines (warm from `snapshot_dir` when it matches, cold
  /// otherwise), id allocator, labeled metrics. Publishing it is the
  /// caller's job (IndexManager::Install + scheduler weight).
  std::shared_ptr<TenantIndex> BuildTenant(const std::string& name,
                                           double weight,
                                           const HostMatrix& target,
                                           const std::string& snapshot_dir);

  /// Admission. Fails with Unavailable — counting the rejection or the
  /// shed — when the scheduler is closed or the max_queue_depth bound
  /// bounces the request; a successful return guarantees the future
  /// resolves, because the dispatcher drains everything admitted
  /// before the close.
  Result<std::future<Result<KnnResult>>> Submit(RequestPtr request);
  /// Admission for range requests (the range twin of Submit; same
  /// shed/reject handling, resolves the range promise's future).
  Result<std::future<Result<RangeResult>>> SubmitRange(RequestPtr request);
  /// Shared admission tail: queue submit + accounting. On success the
  /// caller's pre-extracted future is valid.
  Status AdmitRequest(RequestPtr request);
  void DispatchLoop();
  /// Resolves whichever promise the request carries with `status`.
  static void FailRequest(Request* request, Status status);
  /// Completes a popped request without touching the shards when its
  /// tenant was dropped (NotFound) or its deadline expired while
  /// queued (DeadlineExceeded). True = the request was consumed.
  bool FailFast(RequestPtr* request);
  /// Runs one same-(k, mode) group of one tenant's coalesced requests
  /// through the tenant's shards and fulfills their promises. Holds the
  /// tenant's index mutex for the whole group, so a group never
  /// straddles a SwapIndex, mutation, or compaction install.
  void RunGroup(std::vector<RequestPtr> group);
  /// Runs one same-radius range group of one tenant's coalesced
  /// requests (the range twin of RunGroup; same index-mutex scope).
  void RunRangeGroup(std::vector<RequestPtr> group);
  /// Folds one range group into ServiceStats and the range metrics.
  /// Caller must NOT hold stats_mutex_.
  void RecordRangeGroupStats(size_t rows, size_t matches);
  /// Folds one engine group's shard answers into ServiceStats and the
  /// metrics registry. Host-routed shards contribute no simulated-device
  /// stats (no device ran for them) and are skipped for the adaptive-
  /// decision counters. Caller must NOT hold stats_mutex_.
  void RecordGroupStats(const std::vector<core::ShardAnswer>& answers,
                        size_t rows);

  /// The job thread: runs queued jobs one at a time, chunking each
  /// through the admission queue. See docs/modalities.md.
  void JobLoop();
  /// Executes one job end to end (chunk loop, cancel checks). Called by
  /// the job thread with no locks held; publishes progress and the
  /// terminal state under jobs_mutex_.
  void RunJob(Job* job);
  /// The tenant's live points and stable ids, globally ascending by id
  /// (per-shard ExportLive merged). Takes and releases the tenant's
  /// index mutex.
  void SnapshotLive(TenantIndex* tenant, std::vector<uint32_t>* ids,
                    HostMatrix* points) const;
  /// Blocking range scan of `queries` used by the job chunk loop:
  /// admission-queue submit + wait, like RadiusSearch.
  Result<RangeResult> RangeChunk(const std::shared_ptr<TenantIndex>& tenant,
                                 const HostMatrix& queries, float radius);
  /// Marks the job terminal and updates the job counters/gauge.
  void FinishJob(Job* job, JobState state, Status status = Status::Ok());
  /// Blocks until the job is terminal, then takes its output (kDone) or
  /// propagates the cancelled/failed status, erasing the job either way
  /// — the synchronous wrappers' tail.
  Result<JobOutput> WaitAndTake(uint64_t job_id);

  /// The background compactor: sleeps until a mutation pushes some shard
  /// over the threshold (or Shutdown), then rebuilds candidates one at a
  /// time across every tenant.
  void CompactorLoop();
  /// First over-threshold shard of this tenant with no compaction in
  /// flight, or -1.
  int PickCompactionCandidate(TenantIndex* tenant);
  /// Capture -> rebuild (off-lock) -> install for one shard. See
  /// docs/mutability.md for the protocol.
  Status CompactShardInternal(TenantIndex* tenant, int s);
  /// Overlay fraction check for one shard. Caller holds the tenant's
  /// index mutex.
  bool OverThreshold(const Shard& shard) const;
  /// Wakes the compactor if `shard` warrants it. Caller holds the
  /// owning tenant's index mutex.
  void MaybeScheduleCompaction(const Shard& shard);
  /// Shard of `tenant` owning stable id `id`, or -1. Caller holds the
  /// tenant's index mutex.
  int OwningShard(const TenantIndex& tenant, uint32_t id) const;
  /// Marks answers computed before now as stale for the cache; the
  /// clear runs separately (ClearCache) after the index lock drops.
  void BumpCacheEpoch();
  void ClearCache();
  /// Mirrors one tenant's overlay sizes into its atomics and per-tenant
  /// gauge. Caller holds the tenant's index mutex.
  void UpdateOverlayGaugesLocked(TenantIndex* tenant);
  /// Re-sums the cross-tenant overlay gauges from the atomics (no
  /// index mutex needed).
  void RefreshGlobalOverlayGauges();

  /// Loads and fully validates "<dir>/shard-<s>-of-<num_shards>.sksnap"
  /// for every shard (files read in parallel on the host pool): shard
  /// geometry, dims (0 = adopt the files' dims), and the options/device
  /// fingerprints of `config`. Pristine sets must tile the target
  /// contiguously; sets with mutation overlays (only accepted when
  /// `allow_overlay`) are instead checked for globally unique stable
  /// ids. Nothing about the live service changes.
  static Result<std::vector<store::IndexSnapshot>> LoadShardSet(
      const std::string& dir, int num_shards, const ServiceConfig& config,
      size_t dims, bool allow_overlay);

  /// A replacement shard set materialized off to the side, ready to
  /// install. Epochs are assigned at install time (under the tenant's
  /// index mutex).
  struct ShardSet {
    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<uint32_t> offsets;
    size_t live_rows = 0;
    uint32_t next_id = 0;
  };
  /// Materializes shards from validated snapshots (RestoreTarget in
  /// parallel on the host pool). Touches nothing of the live service.
  ShardSet BuildShardsFromSnapshots(
      std::vector<store::IndexSnapshot> snapshots) const;

  /// Exports one shard of `tenant`, normalizing the overlay (delta
  /// entries tombstoned mid-compaction are dropped outright). Caller
  /// holds the tenant's index mutex.
  store::IndexSnapshot ExportShard(const TenantIndex& tenant, int s) const;

  Status SaveTenantSnapshots(TenantIndex* tenant, const std::string& dir);
  Status SwapIndexInternal(TenantIndex* tenant, const std::string& dir);

  // LRU result cache (single-row Search results), guarded by cache_mutex_
  // and shared across tenants. Keys are tenant-prefixed, so two tenants'
  // answers for the same point bytes never collide; keys also include
  // the (normalized) mode, so exact and approx answers never collide.
  static std::string CacheKey(const std::string& tenant, const float* row,
                              size_t dims, int k,
                              const ann::SearchMode& mode);
  bool CacheLookup(const std::string& key, std::vector<Neighbor>* out);
  /// Inserts unless `epoch` (captured before the query ran) is no
  /// longer the live cache epoch — a swap, mutation, or compaction
  /// completed in between, and the value would resurrect stale
  /// neighbors into the fresh cache.
  void CacheInsert(const std::string& key, std::vector<Neighbor> value,
                   uint64_t epoch);

  ServiceConfig config_;
  size_t dims_ = 0;  ///< Default tenant's dims (legacy accessor).
  /// Routes each group's per-shard base scan; internally atomic (the
  /// dispatcher chooses while tests flip the mode).
  core::RoutePlanner planner_;

  /// The named indexes. Each TenantIndex carries its own index mutex
  /// (the per-tenant successor of the old service-wide index_mutex_).
  IndexManager manager_;
  /// The constructor's tenant; pinned so the legacy single-tenant API
  /// never pays a map lookup.
  std::shared_ptr<TenantIndex> default_tenant_;

  /// Source of shard epochs (see Shard::epoch), shared by every tenant.
  std::atomic<uint64_t> epoch_counter_{0};
  /// Bumped by every completed SwapIndex; surfaced as a gauge.
  std::atomic<uint64_t> index_generation_{0};
  /// Bumped by every index change that invalidates computed answers:
  /// swaps, mutations, compaction installs, drops. Cache inserts tagged
  /// with an older epoch are dropped (see CacheInsert).
  std::atomic<uint64_t> cache_epoch_{0};

  /// The weighted-fair admission scheduler (replaces the old single
  /// FIFO BlockingQueue).
  FairScheduler<RequestPtr> queue_;
  std::thread dispatcher_;

  /// Compactor wake-up state. compact_mutex_ may be taken while holding
  /// a tenant's index mutex (mutations scheduling work), never the
  /// reverse — the compactor drops it before touching any index.
  std::mutex compact_mutex_;
  std::condition_variable compact_cv_;
  bool compact_pending_ = false;
  bool compactor_stop_ = false;
  std::thread compactor_;
  /// Set by Shutdown before the queue closes; mutations check it.
  std::atomic<bool> stopping_{false};

  /// Offline-job state. jobs_mutex_ is a leaf lock: never held while
  /// taking a tenant's index mutex, the scheduler, or any other service
  /// lock (the job thread drops it before touching the index).
  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::unordered_map<uint64_t, std::unique_ptr<Job>> jobs_;
  std::vector<uint64_t> pending_jobs_;  // FIFO by submit order
  uint64_t next_job_id_ = 1;
  bool jobs_stop_ = false;
  std::thread job_thread_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;  // guarded by stats_mutex_ (except peak_queue_depth
                        // and the overlay gauges, read at snapshot time)

  common::MetricsRegistry metrics_;
  // Cached registry pointers (stable for the registry's lifetime).
  common::Counter* m_requests_ = nullptr;
  common::Counter* m_queries_ = nullptr;
  common::Counter* m_rejected_ = nullptr;
  common::Counter* m_shed_requests_ = nullptr;
  common::Counter* m_deadline_exceeded_ = nullptr;
  common::Counter* m_batches_ = nullptr;
  common::Counter* m_engine_groups_ = nullptr;
  common::Counter* m_batched_queries_ = nullptr;
  common::Counter* m_cache_lookups_ = nullptr;
  common::Counter* m_cache_hits_ = nullptr;
  common::Counter* m_cache_stale_drops_ = nullptr;
  common::Counter* m_index_swaps_ = nullptr;
  common::Counter* m_distance_calcs_ = nullptr;
  common::Counter* m_sim_level1_ = nullptr;
  common::Counter* m_sim_level2_ = nullptr;
  common::Counter* m_sim_transfer_ = nullptr;
  common::Counter* m_sim_preprocess_ = nullptr;
  common::Counter* m_sim_total_ = nullptr;
  common::Counter* m_sim_critical_ = nullptr;
  common::Counter* m_filter_full_ = nullptr;
  common::Counter* m_filter_partial_ = nullptr;
  common::Counter* m_placement_global_ = nullptr;
  common::Counter* m_placement_shared_ = nullptr;
  common::Counter* m_placement_registers_ = nullptr;
  common::Counter* m_inserts_ = nullptr;
  common::Counter* m_removes_ = nullptr;
  common::Counter* m_remove_misses_ = nullptr;
  common::Counter* m_compactions_ = nullptr;
  common::Counter* m_compaction_aborts_ = nullptr;
  common::Counter* m_compacted_rows_ = nullptr;
  common::Counter* m_planner_device_routes_ = nullptr;
  common::Counter* m_planner_host_routes_ = nullptr;
  common::Histogram* m_route_device_seconds_ = nullptr;
  common::Histogram* m_route_host_seconds_ = nullptr;
  common::Histogram* m_compaction_seconds_ = nullptr;
  common::Histogram* m_threads_per_query_ = nullptr;
  common::Histogram* m_queue_wait_ = nullptr;
  common::Histogram* m_batch_assembly_ = nullptr;
  common::Histogram* m_shard_fanout_ = nullptr;
  common::Histogram* m_merge_ = nullptr;
  common::Histogram* m_request_latency_ = nullptr;
  common::Histogram* m_batch_rows_ = nullptr;
  common::Counter* m_range_groups_ = nullptr;
  common::Counter* m_range_queries_ = nullptr;
  common::Counter* m_range_matches_ = nullptr;
  common::Counter* m_jobs_submitted_ = nullptr;
  common::Counter* m_jobs_completed_ = nullptr;
  common::Counter* m_jobs_cancelled_ = nullptr;
  common::Counter* m_jobs_failed_ = nullptr;
  common::Histogram* m_job_seconds_ = nullptr;
  common::Gauge* m_active_jobs_ = nullptr;
  common::Counter* m_approx_groups_ = nullptr;
  common::Counter* m_approx_queries_ = nullptr;
  common::Counter* m_ann_hops_ = nullptr;
  common::Counter* m_ann_candidates_ = nullptr;
  common::Counter* m_recall_probes_ = nullptr;
  common::Histogram* m_recall_estimate_ = nullptr;
  common::Gauge* m_queue_depth_ = nullptr;
  common::Gauge* m_peak_queue_depth_ = nullptr;
  common::Gauge* m_tenants_ = nullptr;
  common::Gauge* m_index_generation_ = nullptr;
  common::Gauge* m_delta_points_ = nullptr;
  common::Gauge* m_tombstones_ = nullptr;
  common::Gauge* m_live_rows_ = nullptr;

  /// Approx groups seen by the dispatcher (recall-probe cadence).
  /// Dispatcher-thread only.
  uint64_t approx_group_counter_ = 0;

  std::function<void()> pre_cache_insert_hook_;
  /// Guarded by hook_mutex_ (the dispatcher copies it per batch, so a
  /// test may install it while traffic is flowing).
  mutable std::mutex hook_mutex_;
  std::function<void()> pre_dispatch_hook_;

  std::mutex cache_mutex_;
  std::list<std::string> lru_;  // front = most recent
  struct CacheEntry {
    std::list<std::string>::iterator lru_pos;
    std::vector<Neighbor> neighbors;
  };
  std::unordered_map<std::string, CacheEntry> cache_;
};

}  // namespace sweetknn::serve

#endif  // SWEETKNN_SERVE_KNN_SERVICE_H_
