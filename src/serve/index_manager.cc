#include "serve/index_manager.h"

#include <utility>

namespace sweetknn::serve {

bool IndexManager::ValidName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  if (name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

Status IndexManager::Install(std::shared_ptr<TenantIndex> tenant) {
  if (!ValidName(tenant->name)) {
    return Status::InvalidArgument(
        "'" + tenant->name +
        "' is not a valid index name (1-64 chars of [A-Za-z0-9_.-], "
        "not starting with a dot)");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string name = tenant->name;
  if (!tenants_.emplace(name, std::move(tenant)).second) {
    return Status::InvalidArgument("an index named '" + name +
                                   "' already exists");
  }
  return Status::Ok();
}

std::shared_ptr<TenantIndex> IndexManager::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

Result<std::shared_ptr<TenantIndex>> IndexManager::Drop(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("no index named '" + name + "'");
  }
  std::shared_ptr<TenantIndex> tenant = std::move(it->second);
  tenants_.erase(it);
  return tenant;
}

std::vector<std::string> IndexManager::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

std::vector<std::shared_ptr<TenantIndex>> IndexManager::All() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<TenantIndex>> all;
  all.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) all.push_back(tenant);
  return all;
}

size_t IndexManager::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

}  // namespace sweetknn::serve
