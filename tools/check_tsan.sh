#!/usr/bin/env bash
# Builds the project with ThreadSanitizer (-DSWEETKNN_TSAN=ON) and runs
# the gpusim + core + serve test suites under it. parallel_launch_test
# drives the execution engine at 2 and 8 workers, so the pool, the
# striped atomic locks, and the trace-replay pipeline are all exercised
# under TSan; blocking_queue_test and knn_service_test exercise the
# serving layer's admission queue, dispatcher, shard fan-out, and LRU
# cache under concurrent clients; hot_swap_test swaps index generations
# behind live traffic; metrics_test hammers the lock-free counters and
# histograms from many threads; shutdown_storm_test races Submit against
# Shutdown; swap_staleness_test races cache inserts against SwapIndex;
# compaction_race_test races mutations, forced compactions, and hot
# swaps against live clients; route_planner_test flips the hybrid
# planner's mode and feeds its selectivity EMA from many threads while
# Choose() races the lock-free route counters; shard_backend_test covers
# the transport-free shard dispatch/merge core both serving backends
# share; router_timeout_test drives the cluster router's channel IO
# threads, reply queues, and worker-death path (it spawns shard-worker
# processes through the CLI binary); scheduler_test hammers the
# deficit-round-robin admission scheduler's pops against concurrent
# submits; multitenant_test parks the dispatcher to race metric exports
# and drops against queued requests; tenant_storm_test floods two
# weighted tenants past capacity and runs a compaction storm on one
# tenant while another serves; job_test runs the offline-job engine —
# submit/poll/cancel from client threads racing the job thread and the
# batch scheduler, including a mid-job cancel under live point lookups —
# and range_query_test covers the range modalities' boundary cases on
# the same service paths.
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DSWEETKNN_TSAN=ON >/dev/null

TESTS=(
  warp_test
  coalescing_test
  memory_test
  atomics_test
  device_test
  parallel_launch_test
  clustering_test
  route_planner_test
  level1_test
  level2_test
  ti_knn_gpu_test
  blocking_queue_test
  metrics_test
  knn_service_test
  hot_swap_test
  shutdown_storm_test
  swap_staleness_test
  compaction_race_test
  shard_backend_test
  router_timeout_test
  scheduler_test
  multitenant_test
  tenant_storm_test
  range_query_test
  job_test
)

# router_timeout_test spawns shard-worker processes from the CLI binary.
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}" sweetknn_cli
export SWEETKNN_CLI="$PWD/$BUILD_DIR/tools/sweetknn_cli"

status=0
for t in "${TESTS[@]}"; do
  echo "=== TSan: $t ==="
  if ! "$BUILD_DIR/tests/$t"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "TSan check passed: ${#TESTS[@]} suites clean."
else
  echo "TSan check FAILED." >&2
fi
exit "$status"
