// Command-line KNN join over CSV files.
//
//   sweetknn_cli --target=points.csv [--query=queries.csv] [--k=10]
//                [--engine=sweet|basic|brute] [--out=neighbors.csv]
//                [--profile]
//
// Reads headerless numeric CSVs (one point per row), runs the KNN join on
// the simulated device, and writes one output row per query:
//   idx0,dist0,idx1,dist1,...
// With no --query, runs a self-join of the target set. --profile prints
// the per-kernel simulated-time breakdown.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "baseline/brute_force_gpu.h"
#include "core/sweet_knn.h"
#include "dataset/io.h"
#include "gpusim/profile_report.h"

namespace {

struct CliArgs {
  std::string target_path;
  std::string query_path;
  std::string out_path;
  std::string engine = "sweet";
  int k = 10;
  bool profile = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --target=FILE [--query=FILE] [--k=N]\n"
               "          [--engine=sweet|basic|brute] [--out=FILE]"
               " [--profile]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--target=")) {
      out->target_path = v;
    } else if (const char* v = value("--query=")) {
      out->query_path = v;
    } else if (const char* v = value("--out=")) {
      out->out_path = v;
    } else if (const char* v = value("--engine=")) {
      out->engine = v;
    } else if (const char* v = value("--k=")) {
      out->k = std::atoi(v);
    } else if (arg == "--profile") {
      out->profile = true;
    } else {
      return false;
    }
  }
  return !out->target_path.empty() && out->k > 0 &&
         (out->engine == "sweet" || out->engine == "basic" ||
          out->engine == "brute");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sweetknn;
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  const auto target = dataset::LoadCsv("target", args.target_path);
  if (!target.ok()) {
    std::fprintf(stderr, "error: %s\n", target.status().ToString().c_str());
    return 1;
  }
  Result<dataset::Dataset> query = args.query_path.empty()
                                       ? target
                                       : dataset::LoadCsv(
                                             "query", args.query_path);
  if (!query.ok()) {
    std::fprintf(stderr, "error: %s\n", query.status().ToString().c_str());
    return 1;
  }

  const HostMatrix& query_points = args.query_path.empty()
                                       ? target.value().points
                                       : query.value().points;
  std::fprintf(stderr, "target: %zu x %zu, query: %zu x %zu, k=%d (%s)\n",
               target.value().n(), target.value().dims(),
               query_points.rows(), query_points.cols(), args.k,
               args.engine.c_str());

  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  KnnResult result;
  if (args.engine == "brute") {
    baseline::BruteForceOptions options;
    baseline::BruteForceStats stats;
    result = baseline::BruteForceGpu(&dev, query_points,
                                     target.value().points, args.k, options,
                                     &stats);
    std::fprintf(stderr, "simulated time: %.3f ms\n",
                 stats.sim_time_s * 1e3);
    if (args.profile) {
      std::fputs(gpusim::FormatProfileReport(stats.profile).c_str(),
                 stderr);
    }
  } else {
    const core::TiOptions options = args.engine == "basic"
                                        ? core::TiOptions::BasicTi()
                                        : core::TiOptions::Sweet();
    core::KnnRunStats stats;
    result = core::TiKnnEngine::RunOnce(&dev, query_points,
                                        target.value().points, args.k,
                                        options, &stats);
    std::fprintf(stderr,
                 "simulated time: %.3f ms, saved computations: %.1f%%, "
                 "level-2 warp efficiency: %.1f%%\n",
                 stats.sim_time_s * 1e3, stats.SavedFraction() * 100.0,
                 stats.level2_warp_efficiency * 100.0);
    if (args.profile) {
      std::fputs(gpusim::FormatProfileReport(stats.profile).c_str(),
                 stderr);
    }
  }

  std::ofstream out_file;
  std::FILE* out = stdout;
  if (!args.out_path.empty()) {
    out = std::fopen(args.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.out_path.c_str());
      return 1;
    }
  }
  for (size_t q = 0; q < result.num_queries(); ++q) {
    for (int i = 0; i < result.k(); ++i) {
      const Neighbor& n = result.row(q)[i];
      std::fprintf(out, i == 0 ? "%u,%g" : ",%u,%g", n.index, n.distance);
    }
    std::fputc('\n', out);
  }
  if (out != stdout) std::fclose(out);
  return 0;
}
