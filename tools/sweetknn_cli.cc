// Command-line KNN join over CSV files.
//
//   sweetknn_cli --target=points.csv [--query=queries.csv] [--k=10]
//                [--engine=sweet|basic|brute] [--out=neighbors.csv]
//                [--profile]
//
// Reads headerless numeric CSVs (one point per row), runs the KNN join on
// the simulated device, and writes one output row per query:
//   idx0,dist0,idx1,dist1,...
// With no --query, runs a self-join of the target set. --profile prints
// the per-kernel simulated-time breakdown.
//
// A second mode drives the concurrent serving layer (docs/serving.md):
//
//   sweetknn_cli serve-bench --target=points.csv [--k=10] [--shards=2]
//                [--clients=4] [--requests=32] [--rows=4]
//                [--max-batch=64] [--wait-us=500] [--cache=0]
//                [--metrics-out=FILE] [--tenants=N [--weights=4,1,..]]
//                [--max-queue-depth=N]
//
// It builds a sharded KnnService over the target set, fires `clients`
// host threads each issuing `requests` JoinBatch calls of `rows` query
// rows (drawn cyclically from the target set), and prints the service
// counters: batches, mean batch size, occupancy, amortized simulated
// time per query, latency percentiles, and host throughput. With
// --snapshot-dir=DIR the service warm-starts from persisted shard
// snapshots (--require-warm turns a cold-build fallback into an error).
// With --cluster=N the same workload instead runs against the
// multi-process router/worker cluster (docs/distributed.md): N worker
// processes (this binary, re-exec'd as `shard-worker`), optionally
// --replicas=R copies of each shard; answers are verified bit-identical
// against an in-process KnnService over the same target before the
// counters print. The run's socket/work directory is removed on every
// exit path, including SIGINT/SIGTERM. With --tenants=N (in-process
// mode only) the bench hosts N named indexes over the same target set,
// round-robins the client threads across them, applies the --weights
// list to the weighted-fair scheduler, and prints a per-tenant
// served/shed/latency breakdown; --max-queue-depth bounds admission so
// overload sheds instead of queueing without limit (docs/serving.md,
// "Multi-tenant serving"). --metrics-out=FILE dumps the full metrics registry as
// JSON (see docs/serving.md, "Metrics"); render such a dump later with:
//
//   sweetknn_cli stats --metrics=FILE
//
// which auto-detects the JSON or Prometheus text format and prints a
// fixed-width table of every metric (histograms with
// count/mean/p50/p90/p99/max).
//
// Index persistence (docs/persistence.md):
//
//   sweetknn_cli index-build --target=points.csv --out-dir=DIR
//                [--shards=N] [--dataset=NAME] [--ann [--ann-degree=N]]
//   sweetknn_cli index-inspect --snapshot=FILE
//   sweetknn_cli index-verify --snapshot=FILE | --snapshot-dir=DIR
//
// index-build prepares the sharded index (Step-1 landmark clustering)
// and persists one snapshot per shard; with --ann it also builds the
// approximate tier's kNN graph per shard (docs/approx.md), persisted as
// the snapshot's v3 ANN section. index-inspect prints a snapshot's
// sections and provenance, including the ANN graph block (build params,
// entry points, degree histogram) when present; index-verify re-reads
// and fully validates snapshots (checksums + structural consistency +
// recomputed distances, including ANN graph edge ordering), exiting
// non-zero on the first bad file.
//
// Finally, `shard-worker --socket=PATH` is the cluster worker entry
// point (docs/distributed.md): it binds the unix socket and serves one
// router connection. Routers (serve-bench --cluster, the integration
// tests) spawn it themselves; it is not meant for interactive use.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "baseline/brute_force_gpu.h"
#include "common/stopwatch.h"
#include "core/sweet_knn.h"
#include "dataset/io.h"
#include "gpusim/profile_report.h"
#include "serve/knn_service.h"
#include "serve/router.h"
#include "serve/scheduler.h"
#include "serve/shard_worker.h"
#include "store/snapshot.h"

namespace {

struct CliArgs {
  std::string target_path;
  std::string query_path;
  std::string out_path;
  std::string engine = "sweet";
  int k = 10;
  bool profile = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --target=FILE [--query=FILE] [--k=N]\n"
               "          [--engine=sweet|basic|brute] [--out=FILE]"
               " [--profile]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--target=")) {
      out->target_path = v;
    } else if (const char* v = value("--query=")) {
      out->query_path = v;
    } else if (const char* v = value("--out=")) {
      out->out_path = v;
    } else if (const char* v = value("--engine=")) {
      out->engine = v;
    } else if (const char* v = value("--k=")) {
      out->k = std::atoi(v);
    } else if (arg == "--profile") {
      out->profile = true;
    } else {
      return false;
    }
  }
  return !out->target_path.empty() && out->k > 0 &&
         (out->engine == "sweet" || out->engine == "basic" ||
          out->engine == "brute");
}

struct ServeBenchArgs {
  std::string target_path;
  int k = 10;
  int shards = 2;
  int clients = 4;
  int requests = 32;  // per client
  int rows = 4;       // query rows per JoinBatch request
  int max_batch = 64;
  int wait_us = 500;
  size_t cache = 0;
  std::string snapshot_dir;  // warm-start source, empty = cold build
  bool require_warm = false;
  std::string metrics_out;  // JSON metrics dump target, empty = none
  int cluster = 0;   // worker processes; 0 = in-process KnnService
  int replicas = 0;  // shard copies beyond the primary (cluster mode)
  int tenants = 1;   // named indexes; clients round-robin across them
  std::string weights;  // per-tenant weights "4,1,..." (default all 1.0)
  int max_queue_depth = 0;  // admission bound; 0 = unbounded
};

int ServeBenchUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s serve-bench --target=FILE [--k=N] [--shards=N]\n"
               "          [--clients=N] [--requests=N] [--rows=N]\n"
               "          [--max-batch=N] [--wait-us=N] [--cache=N]\n"
               "          [--snapshot-dir=DIR] [--require-warm]\n"
               "          [--cluster=N [--replicas=R]] [--metrics-out=FILE]\n"
               "          [--tenants=N [--weights=W1,..,WN]]\n"
               "          [--max-queue-depth=N]\n",
               argv0);
  return 2;
}

bool ParseServeBenchArgs(int argc, char** argv, ServeBenchArgs* out) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--target=")) {
      out->target_path = v;
    } else if (const char* v = value("--k=")) {
      out->k = std::atoi(v);
    } else if (const char* v = value("--shards=")) {
      out->shards = std::atoi(v);
    } else if (const char* v = value("--clients=")) {
      out->clients = std::atoi(v);
    } else if (const char* v = value("--requests=")) {
      out->requests = std::atoi(v);
    } else if (const char* v = value("--rows=")) {
      out->rows = std::atoi(v);
    } else if (const char* v = value("--max-batch=")) {
      out->max_batch = std::atoi(v);
    } else if (const char* v = value("--wait-us=")) {
      out->wait_us = std::atoi(v);
    } else if (const char* v = value("--cache=")) {
      out->cache = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--snapshot-dir=")) {
      out->snapshot_dir = v;
    } else if (arg == "--require-warm") {
      out->require_warm = true;
    } else if (const char* v = value("--metrics-out=")) {
      out->metrics_out = v;
    } else if (const char* v = value("--cluster=")) {
      out->cluster = std::atoi(v);
    } else if (const char* v = value("--replicas=")) {
      out->replicas = std::atoi(v);
    } else if (const char* v = value("--tenants=")) {
      out->tenants = std::atoi(v);
    } else if (const char* v = value("--weights=")) {
      out->weights = v;
    } else if (const char* v = value("--max-queue-depth=")) {
      out->max_queue_depth = std::atoi(v);
    } else {
      return false;
    }
  }
  return !out->target_path.empty() && out->k > 0 && out->shards > 0 &&
         out->clients > 0 && out->requests > 0 && out->rows > 0 &&
         out->max_batch > 0 && out->wait_us >= 0 && out->cluster >= 0 &&
         out->replicas >= 0 && out->tenants >= 1 &&
         out->max_queue_depth >= 0;
}

// The binary to re-exec as `shard-worker` for --cluster runs: this very
// executable, resolved through /proc/self/exe so a relative argv[0]
// keeps working after the router chdir-free spawn.
std::string WorkerBinaryPath(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !self.empty()) return self.string();
  return argv0;
}

// The --cluster run's scratch directory (worker sockets, catch-up
// snapshots). Written once before the signal handlers install, cleared
// when the run owns no directory; the handler removes it so a Ctrl-C'd
// bench does not leak /tmp/sweetknn-bench-* trees full of socket nodes.
char g_cluster_work_dir[512] = {0};

extern "C" void ClusterSignalExit(int /*sig*/) {
  if (g_cluster_work_dir[0] != '\0') {
    std::error_code ec;
    std::filesystem::remove_all(g_cluster_work_dir, ec);
  }
  std::_Exit(130);
}

int ClusterServeBench(const sweetknn::HostMatrix& points,
                      const ServeBenchArgs& args, const char* argv0) {
  using namespace sweetknn;
  if (!args.snapshot_dir.empty() || args.require_warm) {
    std::fprintf(stderr,
                 "error: --snapshot-dir/--require-warm are not supported "
                 "with --cluster (workers cold-build their slices)\n");
    return 2;
  }
  if (args.tenants > 1) {
    std::fprintf(stderr,
                 "error: --tenants is not supported with --cluster (a "
                 "worker set hosts one index; see docs/serving.md)\n");
    return 2;
  }

  // Own the cluster's work dir instead of letting the router mkdtemp its
  // own: a signal (or any early return) must remove the sockets, and the
  // router's cleanup only runs on an orderly Shutdown.
  std::string work_dir;
  {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "sweetknn-bench-XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
      std::fprintf(stderr, "error: cannot create work dir under %s\n",
                   tmpl.c_str());
      return 1;
    }
    work_dir = buf.data();
  }
  std::snprintf(g_cluster_work_dir, sizeof(g_cluster_work_dir), "%s",
                work_dir.c_str());
  std::signal(SIGINT, ClusterSignalExit);
  std::signal(SIGTERM, ClusterSignalExit);
  // Declared before the router, so the router's destructor (worker
  // teardown, socket close) runs first on every exit path.
  struct WorkDirGuard {
    std::string dir;
    ~WorkDirGuard() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      g_cluster_work_dir[0] = '\0';
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
    }
  } guard{work_dir};

  serve::RouterConfig config;
  config.work_dir = work_dir;
  config.service.num_shards = args.shards;
  config.service.max_batch_size = args.max_batch;
  config.service.max_batch_wait = std::chrono::microseconds(args.wait_us);
  config.num_workers = args.cluster;
  config.replicas = args.replicas;
  config.worker_binary = WorkerBinaryPath(argv0);

  const Stopwatch start_watch;
  Result<std::unique_ptr<serve::Router>> started =
      serve::Router::Start(points, config);
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.status().ToString().c_str());
    return 1;
  }
  serve::Router& router = *started.value();
  const double start_s = start_watch.ElapsedSeconds();
  std::fprintf(stderr,
               "serve-bench: target %zu x %zu, k=%d, shards=%d over "
               "%d workers (+%d replicas, started in %.3f s), "
               "clients=%d x %d requests x %d rows\n",
               points.rows(), points.cols(), args.k, router.num_shards(),
               router.num_workers(), args.replicas, start_s, args.clients,
               args.requests, args.rows);

  // Bit-identity probe before the timed run: one batch through the
  // cluster must match an in-process KnnService byte for byte
  // (docs/distributed.md; the full proof lives in
  // tests/integration/cluster_differential_test.cc).
  {
    const size_t probe_rows =
        std::min<size_t>(static_cast<size_t>(args.rows), points.rows());
    HostMatrix probe(probe_rows, points.cols());
    for (size_t row = 0; row < probe_rows; ++row) {
      std::memcpy(probe.mutable_row(row), points.row(row),
                  points.cols() * sizeof(float));
    }
    serve::KnnService reference(points, config.service);
    const Result<KnnResult> want = reference.JoinBatch(probe, args.k);
    const Result<KnnResult> got = router.JoinBatch(probe, args.k);
    if (!want.ok() || !got.ok()) {
      std::fprintf(stderr, "error: bit-identity probe failed: %s\n",
                   (!want.ok() ? want.status() : got.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    const size_t bytes = want.value().num_queries() *
                         static_cast<size_t>(want.value().k()) *
                         sizeof(Neighbor);
    if (got.value().num_queries() != want.value().num_queries() ||
        got.value().k() != want.value().k() ||
        std::memcmp(got.value().row(0), want.value().row(0), bytes) != 0) {
      std::fprintf(stderr,
                   "error: cluster answers diverge from the in-process "
                   "service on the probe batch\n");
      return 1;
    }
    std::fprintf(stderr, "bit-identity probe: cluster == local (%zu x k=%d)\n",
                 probe_rows, args.k);

    // Job-mode probe (docs/modalities.md): a radius scan, a self-join,
    // and a kNN graph through the cluster's wire-job pipeline must also
    // match the in-process service byte for byte. The radius is the
    // first probe row's kth-neighbor distance, so it tracks the data
    // scale whatever the dataset.
    float probe_radius = 1.0f;
    for (int i = args.k - 1; i >= 0; --i) {
      if (want.value().row(0)[i].index != kInvalidNeighbor) {
        probe_radius = want.value().row(0)[i].distance;
        break;
      }
    }
    const Result<RangeResult> range_want =
        reference.RadiusSearch(probe, probe_radius);
    const Result<RangeResult> range_got =
        router.RadiusSearch(probe, probe_radius);
    const Result<std::vector<SelfJoinPair>> join_want =
        reference.SelfJoin(probe_radius);
    const Result<std::vector<SelfJoinPair>> join_got =
        router.SelfJoin(probe_radius);
    const Result<serve::JobOutput> graph_want = reference.KnnGraph(args.k);
    const Result<serve::JobOutput> graph_got = router.KnnGraph(args.k);
    reference.Shutdown();
    for (const auto* status :
         {&range_want, &range_got}) {
      if (!status->ok()) {
        std::fprintf(stderr, "error: job probe failed: %s\n",
                     status->status().ToString().c_str());
        return 1;
      }
    }
    if (!join_want.ok() || !join_got.ok() || !graph_want.ok() ||
        !graph_got.ok()) {
      std::fprintf(stderr, "error: job probe failed: %s\n",
                   (!join_want.ok()   ? join_want.status()
                    : !join_got.ok()  ? join_got.status()
                    : !graph_want.ok() ? graph_want.status()
                                       : graph_got.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    if (!BitIdentical(range_want.value(), range_got.value())) {
      std::fprintf(stderr,
                   "error: cluster RadiusSearch diverges from the "
                   "in-process service\n");
      return 1;
    }
    if (join_want.value().size() != join_got.value().size() ||
        !std::equal(join_want.value().begin(), join_want.value().end(),
                    join_got.value().begin())) {
      std::fprintf(stderr,
                   "error: cluster SelfJoin diverges from the in-process "
                   "service\n");
      return 1;
    }
    const KnnResult& graph_a = graph_want.value().graph;
    const KnnResult& graph_b = graph_got.value().graph;
    const size_t graph_bytes = graph_a.num_queries() *
                               static_cast<size_t>(graph_a.k()) *
                               sizeof(Neighbor);
    if (graph_want.value().query_ids != graph_got.value().query_ids ||
        graph_a.num_queries() != graph_b.num_queries() ||
        graph_a.k() != graph_b.k() ||
        (graph_bytes != 0 &&
         std::memcmp(graph_a.row(0), graph_b.row(0), graph_bytes) != 0)) {
      std::fprintf(stderr,
                   "error: cluster KnnGraph diverges from the in-process "
                   "service\n");
      return 1;
    }
    std::fprintf(stderr,
                 "job probe: cluster == local (radius %.3g: %llu matches, "
                 "%zu pairs; graph %zu x k=%d)\n",
                 static_cast<double>(probe_radius),
                 static_cast<unsigned long long>(
                     range_want.value().total_matches()),
                 join_want.value().size(), graph_a.num_queries(),
                 graph_a.k());
  }

  const Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < args.requests; ++r) {
        HostMatrix batch(static_cast<size_t>(args.rows), points.cols());
        const size_t base = static_cast<size_t>(c * args.requests + r) *
                            static_cast<size_t>(args.rows);
        for (int row = 0; row < args.rows; ++row) {
          const size_t src = (base + static_cast<size_t>(row)) %
                             points.rows();
          std::memcpy(batch.mutable_row(static_cast<size_t>(row)),
                      points.row(src), points.cols() * sizeof(float));
        }
        if (!router.JoinBatch(batch, args.k).ok()) return;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s = wall.ElapsedSeconds();

  const serve::RouterStats stats = router.stats();
  std::printf("requests %llu queries %llu batches %llu groups %llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.engine_groups));
  std::printf("worker deaths %llu rpc timeouts %llu retried groups %llu\n",
              static_cast<unsigned long long>(stats.worker_deaths),
              static_cast<unsigned long long>(stats.rpc_timeouts),
              static_cast<unsigned long long>(stats.retried_groups));
  const common::HistogramSnapshot latency = router.metrics().SnapshotHistogram(
      "sweetknn_router_request_latency_seconds");
  const common::HistogramSnapshot queue_wait =
      router.metrics().SnapshotHistogram("sweetknn_router_queue_wait_seconds");
  std::printf("request latency p50 %.1f us p90 %.1f us p99 %.1f us "
              "(queue wait p99 %.1f us)\n",
              latency.Percentile(0.50) * 1e6, latency.Percentile(0.90) * 1e6,
              latency.Percentile(0.99) * 1e6,
              queue_wait.Percentile(0.99) * 1e6);
  std::printf("wall %.3f s (%.0f queries/s)\n", wall_s,
              static_cast<double>(stats.queries) / wall_s);
  if (!args.metrics_out.empty()) {
    std::ofstream out(args.metrics_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    out << router.ExportMetricsJson();
    std::fprintf(stderr, "metrics written to %s\n", args.metrics_out.c_str());
  }
  router.Shutdown();
  return 0;
}

int ServeBench(int argc, char** argv) {
  using namespace sweetknn;
  ServeBenchArgs args;
  if (!ParseServeBenchArgs(argc, argv, &args)) return ServeBenchUsage(argv[0]);

  const auto target = dataset::LoadCsv("target", args.target_path);
  if (!target.ok()) {
    std::fprintf(stderr, "error: %s\n", target.status().ToString().c_str());
    return 1;
  }
  const HostMatrix& points = target.value().points;
  if (args.cluster > 0) return ClusterServeBench(points, args, argv[0]);

  const Result<std::vector<double>> weights =
      serve::ParseWeightList(args.weights);
  if (!weights.ok()) {
    std::fprintf(stderr, "error: --weights: %s\n",
                 weights.status().ToString().c_str());
    return 2;
  }
  if (!weights.value().empty() &&
      weights.value().size() != static_cast<size_t>(args.tenants)) {
    std::fprintf(stderr, "error: --weights lists %zu entries for %d tenants\n",
                 weights.value().size(), args.tenants);
    return 2;
  }
  auto tenant_weight = [&](int t) {
    return weights.value().empty() ? 1.0
                                   : weights.value()[static_cast<size_t>(t)];
  };

  serve::ServiceConfig config;
  config.num_shards = args.shards;
  config.max_batch_size = args.max_batch;
  config.max_batch_wait = std::chrono::microseconds(args.wait_us);
  config.cache_capacity = args.cache;
  config.snapshot_dir = args.snapshot_dir;
  config.max_queue_depth = static_cast<size_t>(args.max_queue_depth);
  serve::KnnService service(points, config);

  // Tenant 0 is the default index the service was built with; the rest
  // are named indexes over the same target set, so every tenant answers
  // identically and the bench measures scheduling, not index luck.
  std::vector<std::string> tenant_names = {serve::kDefaultTenant};
  if (tenant_weight(0) != 1.0) {
    (void)service.SetIndexWeight(serve::kDefaultTenant, tenant_weight(0));
  }
  for (int t = 1; t < args.tenants; ++t) {
    const std::string name = "tenant-" + std::to_string(t);
    const sweetknn::Status created =
        service.CreateIndex(name, points, tenant_weight(t));
    if (!created.ok()) {
      std::fprintf(stderr, "error: CreateIndex(%s): %s\n", name.c_str(),
                   created.ToString().c_str());
      return 1;
    }
    tenant_names.push_back(name);
  }
  const uint64_t warm_shards = service.stats().warm_started_shards;
  if (args.require_warm && warm_shards == 0) {
    std::fprintf(stderr,
                 "error: --require-warm, but the service cold-built its "
                 "shards (snapshot dir '%s' unusable)\n",
                 args.snapshot_dir.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serve-bench: target %zu x %zu, k=%d, shards=%d (%s), "
               "clients=%d x %d requests x %d rows\n",
               points.rows(), points.cols(), args.k, service.num_shards(),
               warm_shards > 0 ? "warm-started" : "cold-built",
               args.clients, args.requests, args.rows);

  const Stopwatch wall;
  std::vector<std::atomic<uint64_t>> tenant_served(tenant_names.size());
  std::vector<std::atomic<uint64_t>> tenant_shed(tenant_names.size());
  std::vector<std::thread> clients;
  for (int c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      // Clients round-robin across tenants: client c drives tenant
      // c mod N for its whole run, so every tenant sees sustained load.
      const size_t tenant_idx =
          static_cast<size_t>(c) % tenant_names.size();
      serve::CallOptions opts;
      opts.tenant = tenant_names[tenant_idx];
      for (int r = 0; r < args.requests; ++r) {
        HostMatrix batch(static_cast<size_t>(args.rows), points.cols());
        // Query rows cycle through the target set, staggered per client.
        const size_t base = static_cast<size_t>(c * args.requests + r) *
                            static_cast<size_t>(args.rows);
        for (int row = 0; row < args.rows; ++row) {
          const size_t src = (base + static_cast<size_t>(row)) %
                             points.rows();
          std::memcpy(batch.mutable_row(static_cast<size_t>(row)),
                      points.row(src), points.cols() * sizeof(float));
        }
        const Result<KnnResult> answer =
            service.JoinBatch(opts, batch, args.k);
        if (answer.ok()) {
          tenant_served[tenant_idx].fetch_add(1, std::memory_order_relaxed);
        } else if (answer.status().code() == StatusCode::kUnavailable) {
          // Overload shed: counted, not retried — the bench reports the
          // shed rate the chosen --max-queue-depth produced.
          tenant_shed[tenant_idx].fetch_add(1, std::memory_order_relaxed);
        } else {
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s = wall.ElapsedSeconds();
  service.Shutdown();

  const serve::ServiceStats stats = service.stats();
  std::printf("requests %llu queries %llu batches %llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.batches));
  std::printf("mean batch size %.2f, batch occupancy %.1f%%, "
              "peak queue depth %llu\n",
              stats.MeanBatchSize(),
              stats.BatchOccupancy(config.max_batch_size) * 100.0,
              static_cast<unsigned long long>(stats.peak_queue_depth));
  std::printf("amortized sim time per query %.3f us "
              "(critical %.6f s, total %.6f s over %d shards)\n",
              stats.AmortizedSimTimePerQuery() * 1e6,
              stats.critical_sim_time_s, stats.total_sim_time_s,
              service.num_shards());
  if (config.cache_capacity > 0) {
    std::printf("cache lookups %llu hits %llu\n",
                static_cast<unsigned long long>(stats.cache_lookups),
                static_cast<unsigned long long>(stats.cache_hits));
  }
  const common::HistogramSnapshot latency =
      service.metrics().SnapshotHistogram("sweetknn_request_latency_seconds");
  const common::HistogramSnapshot queue_wait =
      service.metrics().SnapshotHistogram("sweetknn_queue_wait_seconds");
  std::printf("request latency p50 %.1f us p90 %.1f us p99 %.1f us "
              "(queue wait p99 %.1f us)\n",
              latency.Percentile(0.50) * 1e6, latency.Percentile(0.90) * 1e6,
              latency.Percentile(0.99) * 1e6,
              queue_wait.Percentile(0.99) * 1e6);
  if (args.tenants > 1) {
    for (size_t t = 0; t < tenant_names.size(); ++t) {
      const common::HistogramSnapshot tenant_latency =
          service.metrics().SnapshotHistogram(
              "sweetknn_tenant_request_latency_seconds{" +
              common::TenantLabel(tenant_names[t]) + "}");
      std::printf("tenant %-12s weight %.2f served %llu shed %llu "
                  "p50 %.1f us p99 %.1f us\n",
                  tenant_names[t].c_str(), tenant_weight(static_cast<int>(t)),
                  static_cast<unsigned long long>(tenant_served[t].load()),
                  static_cast<unsigned long long>(tenant_shed[t].load()),
                  tenant_latency.Percentile(0.50) * 1e6,
                  tenant_latency.Percentile(0.99) * 1e6);
    }
    std::printf("shed total %llu of %llu offered\n",
                static_cast<unsigned long long>(stats.shed_requests),
                static_cast<unsigned long long>(stats.shed_requests +
                                                stats.requests));
  }
  std::printf("wall %.3f s (%.0f queries/s)\n", wall_s,
              static_cast<double>(stats.queries) / wall_s);
  if (!args.metrics_out.empty()) {
    std::ofstream out(args.metrics_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    out << service.ExportMetricsJson();
    std::fprintf(stderr, "metrics written to %s\n", args.metrics_out.c_str());
  }
  return 0;
}

// --- stats: render a metrics dump ------------------------------------------

int Stats(int argc, char** argv) {
  using namespace sweetknn;
  std::string path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0) {
      path = arg.substr(std::strlen("--metrics="));
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s stats --metrics=FILE\n", argv[0]);
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Both exporter formats are accepted: a JSON document opens with '{',
  // Prometheus text with a '#' comment or a bare sample name.
  const size_t first = text.find_first_not_of(" \t\r\n");
  const bool json = first != std::string::npos && text[first] == '{';
  common::MetricsRegistry registry;
  const Status parsed =
      json ? common::ParseMetricsJson(text, &registry)
           : common::ParseMetricsPrometheusText(text, &registry);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 parsed.ToString().c_str());
    return 1;
  }
  std::fputs(registry.FormatTable().c_str(), stdout);
  return 0;
}

// --- index-build / index-inspect / index-verify ----------------------------

int IndexBuild(int argc, char** argv) {
  using namespace sweetknn;
  std::string target_path;
  std::string out_dir;
  std::string dataset_name;
  int shards = 2;
  bool ann = false;
  int ann_degree = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--target=")) {
      target_path = v;
    } else if (const char* v = value("--out-dir=")) {
      out_dir = v;
    } else if (const char* v = value("--dataset=")) {
      dataset_name = v;
    } else if (const char* v = value("--shards=")) {
      shards = std::atoi(v);
    } else if (arg == "--ann") {
      ann = true;
    } else if (const char* v = value("--ann-degree=")) {
      ann = true;  // an explicit degree implies the tier
      ann_degree = std::atoi(v);
    } else {
      target_path.clear();
      break;
    }
  }
  if (target_path.empty() || out_dir.empty() || shards <= 0 ||
      ann_degree < 0) {
    std::fprintf(stderr,
                 "usage: %s index-build --target=FILE --out-dir=DIR"
                 " [--shards=N] [--dataset=NAME] [--ann [--ann-degree=N]]\n",
                 argv[0]);
    return 2;
  }

  const auto target = dataset::LoadCsv(
      dataset_name.empty() ? "target" : dataset_name, target_path);
  if (!target.ok()) {
    std::fprintf(stderr, "error: %s\n", target.status().ToString().c_str());
    return 1;
  }
  const HostMatrix& points = target.value().points;

  serve::ServiceConfig config;
  config.num_shards = shards;
  config.dataset_name = target.value().name;
  config.enable_ann = ann;
  if (ann_degree > 0) {
    config.ann_params.degree = static_cast<uint32_t>(ann_degree);
  }
  const Stopwatch build;
  serve::KnnService service(points, config);
  const double build_s = build.ElapsedSeconds();
  const Status saved = service.SaveSnapshots(out_dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  service.Shutdown();

  std::fprintf(stderr, "index-build: %zu x %zu rows, %d shards, %.3f s\n",
               points.rows(), points.cols(), service.num_shards(), build_s);
  uintmax_t total_bytes = 0;
  for (int s = 0; s < service.num_shards(); ++s) {
    const std::string path =
        store::ShardSnapshotPath(out_dir, s, service.num_shards());
    std::error_code ec;
    const uintmax_t bytes = std::filesystem::file_size(path, ec);
    total_bytes += ec ? 0 : bytes;
    std::printf("%s %ju bytes\n", path.c_str(),
                static_cast<uintmax_t>(ec ? 0 : bytes));
  }
  std::printf("total %ju bytes in %d snapshots\n", total_bytes,
              service.num_shards());
  return 0;
}

const char* SectionName(uint32_t id) {
  switch (id) {
    case sweetknn::store::kSectionMeta: return "meta";
    case sweetknn::store::kSectionFingerprint: return "fingerprint";
    case sweetknn::store::kSectionTarget: return "target";
    case sweetknn::store::kSectionClustering: return "clustering";
    case sweetknn::store::kSectionMutation: return "mutation";
    case sweetknn::store::kSectionAnnGraph: return "ann-graph";
    default: return "?";
  }
}

int IndexInspect(int argc, char** argv) {
  using namespace sweetknn;
  std::string path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--snapshot=", 0) == 0) {
      path = arg.substr(std::strlen("--snapshot="));
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s index-inspect --snapshot=FILE\n",
                 argv[0]);
    return 2;
  }

  Result<store::SnapshotReader> reader = store::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s\n", reader.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: format version %u, %llu bytes\n", path.c_str(),
              reader.value().format_version(),
              static_cast<unsigned long long>(reader.value().file_size()));
  for (const store::SnapshotReader::SectionInfo& s :
       reader.value().sections()) {
    std::printf("  section %u (%s): %llu bytes, crc32 %08x\n", s.id,
                SectionName(s.id), static_cast<unsigned long long>(s.size),
                s.crc);
  }

  Result<store::IndexSnapshot> snap = store::LoadIndexSnapshot(path);
  if (!snap.ok()) {
    std::fprintf(stderr, "error: %s\n", snap.status().ToString().c_str());
    return 1;
  }
  const store::IndexSnapshot& index = snap.value();
  std::printf("dataset '%s' built by '%s'\n", index.dataset_name.c_str(),
              index.builder.c_str());
  std::printf("shard %u of %u, global rows [%llu, %llu)\n",
              index.shard_index, index.shard_count,
              static_cast<unsigned long long>(index.shard_offset),
              static_cast<unsigned long long>(index.shard_offset +
                                              index.target.rows()));
  std::printf("target %zu x %zu, %d landmark clusters\n",
              index.target.rows(), index.target.cols(),
              index.clustering.num_clusters);
  std::printf("options [%s]\n", index.options_fingerprint.c_str());
  std::printf("device [%s]\n", index.device_fingerprint.c_str());
  if (index.HasOverlay()) {
    std::printf("mutation overlay: %zu delta points, %zu tombstones, "
                "next id %u\n",
                index.delta_ids.size(), index.tombstones.size(),
                index.next_id);
  }
  if (index.HasAnnGraph()) {
    const ann::KnnGraph& g = index.ann_graph;
    std::printf("ann graph: %u nodes x degree %u, built in %u rounds "
                "(seed %llu)\n",
                g.num_nodes, g.degree, g.build_iters,
                static_cast<unsigned long long>(g.build_seed));
    std::printf("  entry points (%zu):", g.entry_points.size());
    const size_t show = std::min<size_t>(g.entry_points.size(), 8);
    for (size_t i = 0; i < show; ++i) {
      std::printf(" %u", g.entry_points[i]);
    }
    if (show < g.entry_points.size()) std::printf(" ...");
    std::printf("\n");
    const std::vector<size_t> hist = g.DegreeHistogram();
    std::printf("  degree histogram:");
    for (size_t d = 0; d < hist.size(); ++d) {
      if (hist[d] != 0) std::printf(" %zu:%zu", d, hist[d]);
    }
    std::printf("\n");
  }
  return 0;
}

int IndexVerify(int argc, char** argv) {
  using namespace sweetknn;
  std::vector<std::string> paths;
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--snapshot=", 0) == 0) {
      paths.push_back(arg.substr(std::strlen("--snapshot=")));
    } else if (arg.rfind("--snapshot-dir=", 0) == 0) {
      dir = arg.substr(std::strlen("--snapshot-dir="));
    }
  }
  if (!dir.empty()) {
    Result<std::vector<std::string>> listed = store::ListShardSnapshots(dir);
    if (!listed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   listed.status().ToString().c_str());
      return 1;
    }
    for (const std::string& p : listed.value()) paths.push_back(p);
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s index-verify --snapshot=FILE ..."
                 " | --snapshot-dir=DIR\n",
                 argv[0]);
    return 2;
  }

  for (const std::string& p : paths) {
    Result<store::IndexSnapshot> snap = store::LoadIndexSnapshot(p);
    if (!snap.ok()) {
      std::printf("FAIL %s: %s\n", p.c_str(),
                  snap.status().ToString().c_str());
      return 1;
    }
    // Beyond Load's structural checks: recompute every member distance
    // with the batch kernels and demand byte equality with the file.
    const Status deep = store::VerifySnapshotDistances(snap.value());
    if (!deep.ok()) {
      std::printf("FAIL %s: %s\n", p.c_str(), deep.ToString().c_str());
      return 1;
    }
    std::printf("OK %s (shard %u of %u, %zu x %zu, %d clusters%s, "
                "distances verified)\n",
                p.c_str(), snap.value().shard_index,
                snap.value().shard_count, snap.value().target.rows(),
                snap.value().target.cols(),
                snap.value().clustering.num_clusters,
                snap.value().HasAnnGraph() ? ", ann graph" : "");
  }
  return 0;
}

// --- shard-worker: cluster worker process entry point -----------------------

int ShardWorkerMain(int argc, char** argv) {
  using namespace sweetknn;
  std::string socket_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(std::strlen("--socket="));
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: %s shard-worker --socket=PATH\n", argv[0]);
    return 2;
  }
  serve::ShardWorker worker(socket_path);
  const Status status = worker.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "shard-worker: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sweetknn;
  if (argc > 1 && std::strcmp(argv[1], "shard-worker") == 0) {
    return ShardWorkerMain(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "serve-bench") == 0) {
    return ServeBench(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "stats") == 0) {
    return Stats(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "index-build") == 0) {
    return IndexBuild(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "index-inspect") == 0) {
    return IndexInspect(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "index-verify") == 0) {
    return IndexVerify(argc, argv);
  }
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  const auto target = dataset::LoadCsv("target", args.target_path);
  if (!target.ok()) {
    std::fprintf(stderr, "error: %s\n", target.status().ToString().c_str());
    return 1;
  }
  Result<dataset::Dataset> query = args.query_path.empty()
                                       ? target
                                       : dataset::LoadCsv(
                                             "query", args.query_path);
  if (!query.ok()) {
    std::fprintf(stderr, "error: %s\n", query.status().ToString().c_str());
    return 1;
  }

  const HostMatrix& query_points = args.query_path.empty()
                                       ? target.value().points
                                       : query.value().points;
  std::fprintf(stderr, "target: %zu x %zu, query: %zu x %zu, k=%d (%s)\n",
               target.value().n(), target.value().dims(),
               query_points.rows(), query_points.cols(), args.k,
               args.engine.c_str());

  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  KnnResult result;
  if (args.engine == "brute") {
    baseline::BruteForceOptions options;
    baseline::BruteForceStats stats;
    result = baseline::BruteForceGpu(&dev, query_points,
                                     target.value().points, args.k, options,
                                     &stats);
    std::fprintf(stderr, "simulated time: %.3f ms\n",
                 stats.sim_time_s * 1e3);
    if (args.profile) {
      std::fputs(gpusim::FormatProfileReport(stats.profile).c_str(),
                 stderr);
    }
  } else {
    const core::TiOptions options = args.engine == "basic"
                                        ? core::TiOptions::BasicTi()
                                        : core::TiOptions::Sweet();
    core::KnnRunStats stats;
    result = core::TiKnnEngine::RunOnce(&dev, query_points,
                                        target.value().points, args.k,
                                        options, &stats);
    std::fprintf(stderr,
                 "simulated time: %.3f ms, saved computations: %.1f%%, "
                 "level-2 warp efficiency: %.1f%%\n",
                 stats.sim_time_s * 1e3, stats.SavedFraction() * 100.0,
                 stats.level2_warp_efficiency * 100.0);
    if (args.profile) {
      std::fputs(gpusim::FormatProfileReport(stats.profile).c_str(),
                 stderr);
    }
  }

  std::ofstream out_file;
  std::FILE* out = stdout;
  if (!args.out_path.empty()) {
    out = std::fopen(args.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.out_path.c_str());
      return 1;
    }
  }
  for (size_t q = 0; q < result.num_queries(); ++q) {
    for (int i = 0; i < result.k(); ++i) {
      const Neighbor& n = result.row(q)[i];
      std::fprintf(out, i == 0 ? "%u,%g" : ",%u,%g", n.index, n.distance);
    }
    std::fputc('\n', out);
  }
  if (out != stdout) std::fclose(out);
  return 0;
}
