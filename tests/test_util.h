#ifndef SWEETKNN_TESTS_TEST_UTIL_H_
#define SWEETKNN_TESTS_TEST_UTIL_H_

#include <string>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "dataset/generators.h"
#include "gtest/gtest.h"

namespace sweetknn::testing {

/// Small clustered dataset for correctness tests.
inline HostMatrix ClusteredPoints(size_t n, size_t dims, int clusters,
                                  uint64_t seed, float spread = 0.05f) {
  dataset::MixtureConfig cfg;
  cfg.n = n;
  cfg.dims = dims;
  cfg.clusters = clusters;
  cfg.spread = spread;
  cfg.seed = seed;
  return dataset::MakeGaussianMixture("test", cfg).points;
}

/// Uniform random points.
inline HostMatrix UniformPoints(size_t n, size_t dims, uint64_t seed) {
  return dataset::MakeUniform("test", n, dims, seed).points;
}

/// Asserts two results agree on every neighbor distance (indices may
/// differ on exact ties).
inline void ExpectResultsMatch(const KnnResult& expected,
                               const KnnResult& actual,
                               float tolerance = 2e-4f) {
  std::string mismatch;
  const size_t bad =
      CountResultMismatches(expected, actual, tolerance, &mismatch);
  EXPECT_EQ(bad, 0u) << "first mismatch: " << mismatch;
}

}  // namespace sweetknn::testing

#endif  // SWEETKNN_TESTS_TEST_UTIL_H_
