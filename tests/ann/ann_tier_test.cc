// The approximate tier's unit and edge-case suite (docs/approx.md):
// SearchMode semantics, graph-build determinism, and the corners where
// the approx path must collapse to (or merge with) the exact one —
// k >= live points, empty graphs, all-tombstoned shards, and
// recall_target = 1.0.

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "ann/ann_index.h"
#include "ann/knn_graph.h"
#include "ann/search_mode.h"
#include "baseline/brute_force_cpu.h"
#include "core/sweet_knn.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;
using testing::UniformPoints;

void ExpectBitIdentical(const KnnResult& a, const KnnResult& b) {
  ASSERT_EQ(a.num_queries(), b.num_queries());
  ASSERT_EQ(a.k(), b.k());
  const size_t bytes =
      a.num_queries() * static_cast<size_t>(a.k()) * sizeof(Neighbor);
  EXPECT_EQ(std::memcmp(a.row(0), b.row(0), bytes), 0);
}

double RecallAt(const KnnResult& truth, const KnnResult& got, size_t q,
                int k) {
  std::set<uint32_t> want;
  for (int j = 0; j < k; ++j) {
    if (truth.row(q)[j].index == kInvalidNeighbor) break;
    want.insert(truth.row(q)[j].index);
  }
  if (want.empty()) return 1.0;
  size_t hits = 0;
  for (int j = 0; j < k; ++j) {
    if (want.count(got.row(q)[j].index) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(want.size());
}

// --- SearchMode semantics ---------------------------------------------------

TEST(SearchModeTest, NormalizeCollapsesEffectivelyExactModes) {
  EXPECT_EQ(ann::Normalize(ann::SearchMode::Exact()),
            ann::SearchMode::Exact());
  EXPECT_EQ(ann::Normalize(ann::SearchMode::Approx(1.0)),
            ann::SearchMode::Exact());
  EXPECT_EQ(ann::Normalize(ann::SearchMode::Approx(1.5, 128)),
            ann::SearchMode::Exact());
  const ann::SearchMode approx = ann::SearchMode::Approx(0.95, 64);
  EXPECT_EQ(ann::Normalize(approx), approx);
}

TEST(SearchModeTest, EffectiveEfHonorsExplicitBudgetAndKFloor) {
  EXPECT_EQ(ann::EffectiveEf(ann::SearchMode::Approx(0.9, 200), 10), 200);
  // The queue must hold a full answer: explicit ef is clamped up to k.
  EXPECT_EQ(ann::EffectiveEf(ann::SearchMode::Approx(0.9, 5), 50), 50);
  // Derived budgets grow as the allowed miss rate shrinks.
  const int ef_90 = ann::EffectiveEf(ann::SearchMode::Approx(0.9), 10);
  const int ef_99 = ann::EffectiveEf(ann::SearchMode::Approx(0.99), 10);
  EXPECT_GE(ef_90, 64);
  EXPECT_GT(ef_99, ef_90);
}

TEST(SearchModeTest, OrderingIsStrictWeakAndExactFirst) {
  const ann::SearchMode exact = ann::SearchMode::Exact();
  const ann::SearchMode a = ann::SearchMode::Approx(0.9);
  const ann::SearchMode b = ann::SearchMode::Approx(0.95);
  EXPECT_TRUE(ann::SearchModeLess(exact, a));
  EXPECT_TRUE(ann::SearchModeLess(a, b));
  EXPECT_FALSE(ann::SearchModeLess(a, a));
  EXPECT_FALSE(ann::SearchModeLess(b, a));
}

// --- Graph build ------------------------------------------------------------

TEST(KnnGraphTest, BuildIsBitIdenticalAcrossWorkerCounts) {
  const HostMatrix points = ClusteredPoints(300, 6, 5, 0xa11);
  ann::GraphBuildParams params;
  params.degree = 8;
  params.workers = 1;
  const ann::KnnGraph one = ann::BuildKnnGraph(
      points.row(0), points.rows(), points.cols(), simd::Dist::kEuclidean,
      params, {});
  params.workers = 4;
  const ann::KnnGraph four = ann::BuildKnnGraph(
      points.row(0), points.rows(), points.cols(), simd::Dist::kEuclidean,
      params, {});
  EXPECT_EQ(one.neighbors, four.neighbors);
  EXPECT_EQ(one.entry_points, four.entry_points);
  EXPECT_EQ(one.build_iters, four.build_iters);
}

TEST(KnnGraphTest, DegreeClampsToRowsMinusOne) {
  const HostMatrix points = UniformPoints(5, 3, 0xbee);
  ann::GraphBuildParams params;
  params.degree = 16;
  const ann::KnnGraph g = ann::BuildKnnGraph(
      points.row(0), points.rows(), points.cols(), simd::Dist::kEuclidean,
      params, {});
  ASSERT_EQ(g.num_nodes, 5u);
  // With 5 points every node can name at most 4 neighbors; with only 4
  // candidates NN-descent must have found them all (the graph is exact).
  for (uint32_t node = 0; node < g.num_nodes; ++node) {
    size_t live = 0;
    for (uint32_t e = 0; e < g.degree; ++e) {
      if (g.row(node)[e] != kInvalidNeighbor) ++live;
    }
    EXPECT_EQ(live, 4u) << "node " << node;
  }
}

TEST(AnnIndexTest, EmptyBaseSearchesNothing) {
  HostMatrix empty(0, 4);
  const ann::AnnIndex index = ann::AnnIndex::Build(
      empty, simd::Dist::kEuclidean, ann::GraphBuildParams{}, {});
  EXPECT_TRUE(index.empty());
  const HostMatrix queries = UniformPoints(3, 4, 0xeee);
  ann::AnnSearchStats stats;
  const KnnResult result = index.Search(queries, 5, 64, 1, &stats);
  ASSERT_EQ(result.num_queries(), 3u);
  for (size_t q = 0; q < 3; ++q) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(result.row(q)[j].index, kInvalidNeighbor);
    }
  }
}

// --- SweetKnnIndex edge cases ----------------------------------------------

SweetKnn::Config AnnConfig() {
  SweetKnn::Config config;
  config.enable_ann = true;
  config.ann_params.degree = 8;
  return config;
}

TEST(AnnIndexEdgeTest, RecallTargetOneRunsTheExactPathBitIdentically) {
  const HostMatrix points = ClusteredPoints(400, 8, 6, 0xc0de);
  const HostMatrix queries = UniformPoints(16, 8, 0xd0d0);
  SweetKnnIndex index(points, AnnConfig());
  const KnnResult exact = index.Query(queries, 10);
  const KnnResult approx_sla1 =
      index.Query(queries, 10, ann::SearchMode::Approx(1.0));
  ExpectBitIdentical(exact, approx_sla1);
}

TEST(AnnIndexEdgeTest, ApproxWithoutGraphFallsBackToExact) {
  const HostMatrix points = ClusteredPoints(300, 6, 5, 0xfeed);
  const HostMatrix queries = UniformPoints(8, 6, 0xbeef);
  SweetKnn::Config config;  // enable_ann = false: no graph exists
  SweetKnnIndex index(points, config);
  const KnnResult exact = index.Query(queries, 7);
  const KnnResult approx =
      index.Query(queries, 7, ann::SearchMode::Approx(0.9));
  ExpectBitIdentical(exact, approx);
}

TEST(AnnIndexEdgeTest, KAtLeastLivePointsReturnsEveryPoint) {
  const HostMatrix points = UniformPoints(30, 5, 0x777);
  const HostMatrix queries = UniformPoints(4, 5, 0x778);
  SweetKnnIndex index(points, AnnConfig());
  // k == rows and k > rows: the answer must hold every live point (the
  // budget escape hatch makes this exact), padded past the live count.
  for (const int k : {30, 45}) {
    const KnnResult exact = index.Query(queries, k);
    const KnnResult approx =
        index.Query(queries, k, ann::SearchMode::Approx(0.9));
    ExpectBitIdentical(exact, approx);
    for (size_t q = 0; q < queries.rows(); ++q) {
      std::set<uint32_t> seen;
      for (int j = 0; j < k; ++j) {
        const Neighbor& nb = approx.row(q)[j];
        if (j < 30) {
          EXPECT_NE(nb.index, kInvalidNeighbor);
          seen.insert(nb.index);
        } else {
          EXPECT_EQ(nb.index, kInvalidNeighbor);
        }
      }
      EXPECT_EQ(seen.size(), 30u);
    }
  }
}

TEST(AnnIndexEdgeTest, AllTombstonedIndexAnswersAllPadding) {
  const HostMatrix points = UniformPoints(40, 4, 0x999);
  SweetKnn::Config config = AnnConfig();
  config.compact_delta_fraction = 0.0;  // keep tombstones, no auto-compact
  SweetKnnIndex index(points, config);
  for (uint32_t id = 0; id < 40; ++id) {
    ASSERT_TRUE(index.Remove(id));
  }
  ASSERT_EQ(index.size(), 0u);
  const HostMatrix queries = UniformPoints(3, 4, 0x99a);
  const KnnResult exact = index.Query(queries, 5);
  const KnnResult approx =
      index.Query(queries, 5, ann::SearchMode::Approx(0.9));
  ExpectBitIdentical(exact, approx);
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(approx.row(q)[j].index, kInvalidNeighbor);
    }
  }
}

TEST(AnnIndexEdgeTest, MutationsAreServedExactlyUnderApprox) {
  const HostMatrix points = ClusteredPoints(200, 5, 4, 0x1234);
  SweetKnn::Config config = AnnConfig();
  config.compact_delta_fraction = 0.0;
  SweetKnnIndex index(points, config);
  // Insert a point right on top of the first query: the delta side scan
  // is exact, so approx must surface it as the nearest neighbor.
  const HostMatrix queries = UniformPoints(4, 5, 0x4321);
  std::vector<float> dup(queries.row(0), queries.row(0) + 5);
  const uint32_t id = index.Insert(dup);
  // And tombstone a base row; it must never appear again.
  ASSERT_TRUE(index.Remove(7));
  const KnnResult approx =
      index.Query(queries, 6, ann::SearchMode::Approx(0.9, 4096));
  EXPECT_EQ(approx.row(0)[0].index, id);
  EXPECT_EQ(approx.row(0)[0].distance, 0.0f);
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_NE(approx.row(q)[j].index, 7u);
    }
  }
}

TEST(AnnIndexEdgeTest, LargeEfBudgetIsExact) {
  const HostMatrix points = ClusteredPoints(250, 6, 5, 0x555);
  const HostMatrix queries = UniformPoints(10, 6, 0x556);
  SweetKnnIndex index(points, AnnConfig());
  const KnnResult exact = index.Query(queries, 9);
  // ef >= rows triggers the full-scan escape hatch: bit-identical.
  ann::AnnSearchStats stats;
  const KnnResult approx = index.Query(
      queries, 9, ann::SearchMode::Approx(0.9, 250), nullptr, &stats);
  ExpectBitIdentical(exact, approx);
  EXPECT_EQ(stats.full_scans, queries.rows());
}

TEST(AnnIndexEdgeTest, ApproxMeetsItsRecallTarget) {
  const HostMatrix points = ClusteredPoints(1200, 8, 10, 0xace);
  const HostMatrix queries = UniformPoints(32, 8, 0xacf);
  SweetKnnIndex index(points, AnnConfig());
  const int k = 10;
  const KnnResult truth = baseline::BruteForceCpu(queries, points, k);
  ann::AnnSearchStats stats;
  const KnnResult approx = index.Query(
      queries, k, ann::SearchMode::Approx(0.9), nullptr, &stats);
  double recall_sum = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    recall_sum += RecallAt(truth, approx, q, k);
  }
  EXPECT_GE(recall_sum / static_cast<double>(queries.rows()), 0.9);
  // And it genuinely ran the graph, not the escape hatch.
  EXPECT_EQ(stats.full_scans, 0u);
  EXPECT_GT(stats.hops, 0u);
}

// --- KnnService edge cases --------------------------------------------------

serve::ServiceConfig AnnServiceConfig() {
  serve::ServiceConfig config;
  config.num_shards = 2;
  config.auto_compact = false;
  config.enable_ann = true;  // default build params (degree 16)
  return config;
}

TEST(AnnServiceEdgeTest, EffectivelyExactModesAnswerLikePlainSearch) {
  const HostMatrix points = ClusteredPoints(300, 6, 5, 0xbed);
  const HostMatrix queries = UniformPoints(6, 6, 0xbee);
  serve::KnnService service(points, AnnServiceConfig());
  const Result<KnnResult> exact = service.JoinBatch(queries, 8);
  const Result<KnnResult> sla1 =
      service.JoinBatch(queries, 8, ann::SearchMode::Approx(1.0));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sla1.ok());
  ExpectBitIdentical(exact.value(), sla1.value());
  // Effectively exact traffic never counts as approx.
  EXPECT_EQ(service.stats().approx_groups, 0u);
  service.Shutdown();
}

TEST(AnnServiceEdgeTest, AllTombstonedServiceAnswersAllPadding) {
  const HostMatrix points = UniformPoints(60, 4, 0xdead);
  serve::ServiceConfig config = AnnServiceConfig();
  config.compact_delta_fraction = 0.0;
  serve::KnnService service(points, config);
  for (uint32_t id = 0; id < 60; ++id) {
    const Result<bool> removed = service.Remove(id);
    ASSERT_TRUE(removed.ok());
    ASSERT_TRUE(removed.value());
  }
  const HostMatrix queries = UniformPoints(4, 4, 0xdeae);
  const Result<KnnResult> approx =
      service.JoinBatch(queries, 5, ann::SearchMode::Approx(0.9));
  ASSERT_TRUE(approx.ok());
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(approx.value().row(q)[j].index, kInvalidNeighbor);
    }
  }
  service.Shutdown();
}

TEST(AnnServiceEdgeTest, ApproxSurvivesCompactionAndStaysAccurate) {
  const HostMatrix points = ClusteredPoints(500, 6, 6, 0xf00);
  serve::ServiceConfig config = AnnServiceConfig();
  serve::KnnService service(points, config);
  // Mutate enough to matter, then compact: the install must rebuild the
  // graphs over the new bases.
  for (uint32_t id = 0; id < 40; ++id) {
    ASSERT_TRUE(service.Remove(id).ok());
  }
  const HostMatrix extra = UniformPoints(40, 6, 0xf01);
  ASSERT_TRUE(service.InsertBatch(extra).ok());
  ASSERT_TRUE(service.CompactAll().ok());

  const HostMatrix queries = UniformPoints(12, 6, 0xf02);
  const int k = 8;
  const Result<KnnResult> exact = service.JoinBatch(queries, k);
  const Result<KnnResult> approx =
      service.JoinBatch(queries, k, ann::SearchMode::Approx(0.9));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  double recall_sum = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    recall_sum += RecallAt(exact.value(), approx.value(), q, k);
  }
  EXPECT_GE(recall_sum / static_cast<double>(queries.rows()), 0.9);
  EXPECT_GT(service.stats().approx_queries, 0u);
  service.Shutdown();
}

TEST(AnnServiceEdgeTest, RecallProbeObservesEstimates) {
  const HostMatrix points = ClusteredPoints(400, 6, 5, 0xaaa);
  serve::ServiceConfig config = AnnServiceConfig();
  config.ann_recall_probe_interval = 1;  // probe every approx group
  serve::KnnService service(points, config);
  const HostMatrix queries = UniformPoints(8, 6, 0xaab);
  ASSERT_TRUE(
      service.JoinBatch(queries, 6, ann::SearchMode::Approx(0.9)).ok());
  const common::HistogramSnapshot estimate =
      service.metrics().SnapshotHistogram("sweetknn_ann_recall_estimate");
  EXPECT_EQ(estimate.count, 1u);
  EXPECT_GE(estimate.sum, 0.0);
  EXPECT_LE(estimate.sum, 1.0 + 1e-9);
  service.Shutdown();
}

}  // namespace
}  // namespace sweetknn
