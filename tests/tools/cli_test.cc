// Smoke tests of the sweetknn_cli binary: spawn it against generated CSVs
// and validate the output against the in-process oracle.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "baseline/brute_force_cpu.h"
#include "dataset/generators.h"
#include "dataset/io.h"
#include "gtest/gtest.h"

namespace sweetknn {
namespace {

std::string CliPath() {
  // The test binary lives in build/tests/, the CLI in build/tools/.
  const char* env = std::getenv("SWEETKNN_CLI");
  return env != nullptr ? env : "../tools/sweetknn_cli";
}

/// Runs a command and captures stdout.
int RunCommand(const std::string& cmd, std::string* output) {
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  std::array<char, 4096> chunk;
  output->clear();
  while (std::fgets(chunk.data(), chunk.size(), pipe) != nullptr) {
    *output += chunk.data();
  }
  return pclose(pipe);
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset::MixtureConfig cfg;
    cfg.n = 150;
    cfg.dims = 4;
    cfg.clusters = 3;
    cfg.seed = 17;
    data_ = dataset::MakeGaussianMixture("cli", cfg);
    // Unique per test process: ctest runs the suite's cases in parallel,
    // and a shared path would let one case's TearDown delete the CSV
    // while another case's CLI is reading it.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    csv_path_ = ::testing::TempDir() + "/cli_points_" +
                std::string(info->name()) + "_" +
                std::to_string(::getpid()) + ".csv";
    ASSERT_TRUE(dataset::SaveCsv(data_, csv_path_).ok());
  }
  void TearDown() override { std::remove(csv_path_.c_str()); }

  dataset::Dataset data_;
  std::string csv_path_;
};

TEST_F(CliTest, SelfJoinMatchesOracle) {
  std::string output;
  const int status = RunCommand(
      CliPath() + " --target=" + csv_path_ + " --k=3 2>/dev/null", &output);
  ASSERT_EQ(status, 0) << "is the CLI built? " << CliPath();

  const KnnResult oracle =
      baseline::BruteForceCpu(data_.points, data_.points, 3);
  std::stringstream lines(output);
  std::string line;
  size_t q = 0;
  while (std::getline(lines, line)) {
    std::stringstream cells(line);
    std::string cell;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(std::getline(cells, cell, ','));
      const uint32_t idx = static_cast<uint32_t>(std::stoul(cell));
      ASSERT_TRUE(std::getline(cells, cell, ','));
      const float dist = std::stof(cell);
      EXPECT_NEAR(dist, oracle.row(q)[i].distance, 2e-4f)
          << "query " << q << " rank " << i << " idx " << idx;
    }
    ++q;
  }
  EXPECT_EQ(q, 150u);
}

TEST_F(CliTest, EngineVariantsAgree) {
  std::string sweet;
  std::string basic;
  ASSERT_EQ(RunCommand(CliPath() + " --target=" + csv_path_ +
                           " --k=2 --engine=sweet 2>/dev/null",
                       &sweet),
            0);
  ASSERT_EQ(RunCommand(CliPath() + " --target=" + csv_path_ +
                           " --k=2 --engine=basic 2>/dev/null",
                       &basic),
            0);
  EXPECT_EQ(sweet, basic);
}

TEST_F(CliTest, BadUsageFails) {
  std::string output;
  EXPECT_NE(RunCommand(CliPath() + " --bogus 2>/dev/null", &output), 0);
  EXPECT_NE(RunCommand(CliPath() + " --target=/does/not/exist.csv --k=2"
                                   " 2>/dev/null",
                       &output),
            0);
}

TEST_F(CliTest, ServeBenchReportsServiceCounters) {
  std::string output;
  ASSERT_EQ(RunCommand(CliPath() + " serve-bench --target=" + csv_path_ +
                           " --k=3 --shards=2 --clients=3 --requests=4"
                           " --rows=2 --max-batch=8 --cache=4 2>/dev/null",
                       &output),
            0);
  // 3 clients x 4 requests x 2 rows = 24 queries through the service.
  EXPECT_NE(output.find("requests 12 queries 24"), std::string::npos)
      << output;
  EXPECT_NE(output.find("batch occupancy"), std::string::npos) << output;
  EXPECT_NE(output.find("amortized sim time per query"), std::string::npos)
      << output;
  EXPECT_NE(output.find("cache lookups"), std::string::npos) << output;
}

TEST_F(CliTest, ServeBenchWritesMetricsJsonAndStatsRendersIt) {
  const std::string metrics_path = ::testing::TempDir() + "/cli_metrics.json";
  std::remove(metrics_path.c_str());

  std::string output;
  ASSERT_EQ(RunCommand(CliPath() + " serve-bench --target=" + csv_path_ +
                           " --k=3 --shards=2 --clients=2 --requests=4"
                           " --rows=2 --metrics-out=" + metrics_path +
                           " 2>/dev/null",
                       &output),
            0);
  EXPECT_NE(output.find("request latency p50"), std::string::npos) << output;
  EXPECT_NE(output.find("queue wait p99"), std::string::npos) << output;

  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << metrics_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("sweetknn_requests_total"), std::string::npos);
  EXPECT_NE(json.find("sweetknn_request_latency_seconds"), std::string::npos);
  EXPECT_NE(json.find("sweetknn_sim_level1_seconds_total"),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);

  // `stats` reads the file back and renders every metric as a table.
  ASSERT_EQ(RunCommand(CliPath() + " stats --metrics=" + metrics_path +
                           " 2>/dev/null",
                       &output),
            0);
  EXPECT_NE(output.find("sweetknn_requests_total"), std::string::npos)
      << output;
  EXPECT_NE(output.find("sweetknn_queue_wait_seconds"), std::string::npos)
      << output;
  EXPECT_NE(output.find("p99"), std::string::npos) << output;
  std::remove(metrics_path.c_str());
}

TEST_F(CliTest, StatsBadUsageFails) {
  std::string output;
  EXPECT_NE(RunCommand(CliPath() + " stats 2>/dev/null", &output), 0);
  EXPECT_NE(RunCommand(CliPath() + " stats --metrics=/does/not/exist.json"
                                   " 2>/dev/null",
                       &output),
            0);
}

TEST_F(CliTest, ServeBenchBadUsageFails) {
  std::string output;
  EXPECT_NE(RunCommand(CliPath() + " serve-bench --k=3 2>/dev/null",
                       &output),
            0);
  EXPECT_NE(RunCommand(CliPath() + " serve-bench --target=" + csv_path_ +
                           " --shards=0 2>/dev/null",
                       &output),
            0);
}

TEST_F(CliTest, IndexBuildInspectVerifyRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/cli_index";
  std::filesystem::remove_all(dir);

  std::string output;
  ASSERT_EQ(RunCommand(CliPath() + " index-build --target=" + csv_path_ +
                           " --out-dir=" + dir +
                           " --shards=2 --dataset=cli 2>/dev/null",
                       &output),
            0);
  EXPECT_NE(output.find("total"), std::string::npos) << output;
  EXPECT_NE(output.find("2 snapshots"), std::string::npos) << output;

  const std::string shard0 = dir + "/shard-0-of-2.sksnap";
  ASSERT_EQ(RunCommand(CliPath() + " index-inspect --snapshot=" + shard0 +
                           " 2>/dev/null",
                       &output),
            0);
  EXPECT_NE(output.find("format version 1"), std::string::npos) << output;
  EXPECT_NE(output.find("section 3 (target)"), std::string::npos) << output;
  EXPECT_NE(output.find("dataset 'cli'"), std::string::npos) << output;
  EXPECT_NE(output.find("shard 0 of 2"), std::string::npos) << output;

  ASSERT_EQ(RunCommand(CliPath() + " index-verify --snapshot-dir=" + dir +
                           " 2>/dev/null",
                       &output),
            0);
  EXPECT_NE(output.find("OK"), std::string::npos) << output;
  EXPECT_EQ(output.find("FAIL"), std::string::npos) << output;

  // Corrupt one byte of shard 0: verify must fail with a nonzero exit.
  {
    std::fstream f(shard0, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(32);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(32);
    f.write(&byte, 1);
  }
  EXPECT_NE(RunCommand(CliPath() + " index-verify --snapshot=" + shard0 +
                           " 2>/dev/null",
                       &output),
            0);
  EXPECT_NE(output.find("FAIL"), std::string::npos) << output;
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, ServeBenchWarmStartsFromSnapshots) {
  const std::string dir = ::testing::TempDir() + "/cli_warm";
  std::filesystem::remove_all(dir);

  std::string output;
  ASSERT_EQ(RunCommand(CliPath() + " index-build --target=" + csv_path_ +
                           " --out-dir=" + dir + " --shards=2 2>/dev/null",
                       &output),
            0);
  ASSERT_EQ(RunCommand(CliPath() + " serve-bench --target=" + csv_path_ +
                           " --k=3 --shards=2 --clients=2 --requests=2"
                           " --snapshot-dir=" + dir +
                           " --require-warm 2>&1",
                       &output),
            0)
      << output;
  EXPECT_NE(output.find("warm-started"), std::string::npos) << output;

  // --require-warm against an empty directory must fail loudly (the
  // service falls back to a cold build, which the flag forbids).
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  EXPECT_NE(RunCommand(CliPath() + " serve-bench --target=" + csv_path_ +
                           " --k=3 --shards=2 --clients=2 --requests=2"
                           " --snapshot-dir=" + dir +
                           " --require-warm 2>/dev/null",
                       &output),
            0);
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, ProfileFlagPrintsReport) {
  std::string output;
  ASSERT_EQ(RunCommand(CliPath() + " --target=" + csv_path_ +
                           " --k=2 --profile 2>&1 >/dev/null",
                       &output),
            0);
  EXPECT_NE(output.find("level2_full_filter"), std::string::npos);
  EXPECT_NE(output.find("saved computations"), std::string::npos);
}

}  // namespace
}  // namespace sweetknn
