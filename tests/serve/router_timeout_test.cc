// Regression tests for the cluster's timed-wait paths: a worker that
// accepts but never replies, a peer that answers garbage, and a
// SIGSTOPped (wedged, not dead) worker process. Every one must surface
// as a clean Status within the configured deadline — never a wedged
// router thread (the BlockingQueue::WaitPopUntil and poll()-deadline
// fixes this suite pins).
//
// The cluster legs need the worker binary; they skip unless SWEETKNN_CLI
// points at the sweetknn_cli executable (ctest exports it).

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "net/frame.h"
#include "net/socket.h"
#include "serve/router.h"
#include "test_util.h"

namespace sweetknn::serve {
namespace {

using std::chrono::steady_clock;
using std::chrono::milliseconds;

std::string TempSocketPath(const char* tag) {
  return ::testing::TempDir() + "/sweetknn_timeout_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

// A server that accepts and then never replies must yield
// DeadlineExceeded from RecvFrame at the deadline, not a blocked thread.
TEST(RouterTimeoutTest, SilentPeerHitsRecvDeadline) {
  const std::string path = TempSocketPath("silent");
  Result<net::Listener> listener = net::Listener::Bind(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  std::thread server([&] {
    Result<net::Connection> peer =
        listener.value().Accept(steady_clock::now() + milliseconds(2000));
    ASSERT_TRUE(peer.ok()) << peer.status().ToString();
    // Hold the connection open, send nothing, until the client is done.
    std::this_thread::sleep_for(milliseconds(400));
  });

  Result<net::Connection> conn =
      net::Connection::Connect(path, steady_clock::now() + milliseconds(2000));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const auto start = steady_clock::now();
  Result<net::Frame> reply =
      net::RecvFrame(conn.value(), start + milliseconds(150));
  const auto elapsed = steady_clock::now() - start;
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
  EXPECT_LT(elapsed, milliseconds(2000)) << "recv did not honor its deadline";
  server.join();
}

// A peer that answers with garbage bytes must produce a clean IoError,
// never a crash or a giant allocation.
TEST(RouterTimeoutTest, GarbageReplyRejectedCleanly) {
  const std::string path = TempSocketPath("garbage");
  Result<net::Listener> listener = net::Listener::Bind(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  std::thread server([&] {
    Result<net::Connection> peer =
        listener.value().Accept(steady_clock::now() + milliseconds(2000));
    ASSERT_TRUE(peer.ok()) << peer.status().ToString();
    std::string junk(64, '\0');
    for (size_t i = 0; i < junk.size(); ++i) {
      junk[i] = static_cast<char>(0xa5 ^ (i * 29));
    }
    ASSERT_TRUE(peer.value()
                    .SendAll(junk.data(), junk.size(),
                             steady_clock::now() + milliseconds(2000))
                    .ok());
  });

  Result<net::Connection> conn =
      net::Connection::Connect(path, steady_clock::now() + milliseconds(2000));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  Result<net::Frame> reply =
      net::RecvFrame(conn.value(), steady_clock::now() + milliseconds(2000));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kIoError)
      << reply.status().ToString();
  server.join();
}

// A SIGSTOPped worker is alive to the kernel but answers nothing; the
// router must declare it dead at rpc_timeout and fail the request with
// a clean Status (no replicas here, so the shard is lost, not wedged).
TEST(RouterTimeoutTest, WedgedWorkerTimesOutAndDies) {
  const char* cli = std::getenv("SWEETKNN_CLI");
  if (cli == nullptr) {
    GTEST_SKIP() << "SWEETKNN_CLI not set; cluster leg needs the CLI binary";
  }
  const HostMatrix target = testing::ClusteredPoints(48, 3, 2, 515, 0.08f);

  RouterConfig config;
  config.service.num_shards = 2;
  config.service.max_batch_size = 8;
  config.service.max_batch_wait = std::chrono::microseconds(200);
  config.num_workers = 1;
  config.replicas = 0;
  config.rpc_timeout = milliseconds(300);
  config.worker_binary = cli;

  Result<std::unique_ptr<Router>> started = Router::Start(target, config);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  Router& router = *started.value();

  // Sanity: the cluster answers before the wedge.
  const HostMatrix queries = testing::UniformPoints(2, 3, 9);
  ASSERT_TRUE(router.JoinBatch(queries, 3).ok());
  ASSERT_TRUE(router.worker_alive(0));

  ASSERT_EQ(::kill(router.worker_pid(0), SIGSTOP), 0);
  const auto start = steady_clock::now();
  Result<KnnResult> wedged = router.JoinBatch(queries, 3);
  const auto elapsed = steady_clock::now() - start;
  ASSERT_FALSE(wedged.ok());
  EXPECT_EQ(wedged.status().code(), StatusCode::kUnavailable)
      << wedged.status().ToString();
  // rpc_timeout (300ms) plus generous slack, way under the worker's own
  // multi-second budgets: the router's deadline did the work.
  EXPECT_LT(elapsed, milliseconds(5000));
  EXPECT_FALSE(router.worker_alive(0));

  const RouterStats stats = router.stats();
  EXPECT_GE(stats.rpc_timeouts, 1u);
  EXPECT_EQ(stats.worker_deaths, 1u);

  // Everything after the death fails fast with a clean Status.
  EXPECT_EQ(router.JoinBatch(queries, 3).status().code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(router.Insert({0.1f, 0.2f, 0.3f}).ok());
  router.Shutdown();
}

// The named tenant rides every prepare/query frame: a cluster started
// with config.tenant = "faces" must answer queries (the workers adopted
// that index name at prepare) and report it from ListWorkerIndexes. And
// the reply queue's tri-state matters after Shutdown: a closed channel
// is kUnavailable — shutdown, not sickness — and must never be charged
// as an RPC timeout (the old boolean pop conflated the two).
TEST(RouterTimeoutTest, TenantRidesTheWireAndShutdownIsNotATimeout) {
  const char* cli = std::getenv("SWEETKNN_CLI");
  if (cli == nullptr) {
    GTEST_SKIP() << "SWEETKNN_CLI not set; cluster leg needs the CLI binary";
  }
  const HostMatrix target = testing::ClusteredPoints(48, 3, 2, 616, 0.08f);

  RouterConfig config;
  config.service.num_shards = 2;
  config.service.max_batch_size = 8;
  config.service.max_batch_wait = std::chrono::microseconds(200);
  config.num_workers = 1;
  config.replicas = 0;
  config.tenant = "faces";
  config.worker_binary = cli;

  Result<std::unique_ptr<Router>> started = Router::Start(target, config);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  Router& router = *started.value();

  const HostMatrix queries = testing::UniformPoints(2, 3, 10);
  ASSERT_TRUE(router.JoinBatch(queries, 3).ok());

  const Result<std::vector<std::string>> hosted = router.ListWorkerIndexes(0);
  ASSERT_TRUE(hosted.ok()) << hosted.status().ToString();
  EXPECT_EQ(hosted.value(), std::vector<std::string>{"faces"});
  EXPECT_EQ(router.ListWorkerIndexes(5).status().code(),
            StatusCode::kInvalidArgument);

  router.Shutdown();
  const Result<std::vector<std::string>> after = router.ListWorkerIndexes(0);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable)
      << after.status().ToString();
  EXPECT_EQ(router.stats().rpc_timeouts, 0u)
      << "a closed channel was charged as an RPC timeout";
}

}  // namespace
}  // namespace sweetknn::serve
