// KnnService: sharded, micro-batched, concurrently driven — and still
// bit-identical to a single-engine run over the unsharded target set.

#include "serve/knn_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "baseline/brute_force_cpu.h"
#include "core/ti_knn_gpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;

/// Exact (bit-level) equality of one service answer row against the
/// reference row: same neighbor ids AND same float distances.
void ExpectRowBitIdentical(const Neighbor* expected, const Neighbor* actual,
                           int k, size_t global_query) {
  for (int i = 0; i < k; ++i) {
    ASSERT_EQ(expected[i].index, actual[i].index)
        << "query " << global_query << " rank " << i;
    ASSERT_EQ(expected[i].distance, actual[i].distance)
        << "query " << global_query << " rank " << i;
  }
}

KnnResult SingleEngineReference(const HostMatrix& queries,
                                const HostMatrix& target, int k,
                                const core::TiOptions& options) {
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  return core::TiKnnEngine::RunOnce(&dev, queries, target, k, options,
                                    nullptr);
}

TEST(KnnServiceTest, ConcurrentClientsBitIdenticalToSingleEngine) {
  const HostMatrix target = ClusteredPoints(420, 6, 5, 401);
  const HostMatrix queries = ClusteredPoints(96, 6, 3, 402);
  constexpr int kNeighbors = 7;
  const KnnResult reference =
      SingleEngineReference(queries, target, kNeighbors,
                            core::TiOptions::Sweet());

  serve::ServiceConfig config;
  config.num_shards = 3;
  config.max_batch_size = 16;
  config.max_batch_wait = std::chrono::microseconds(1500);
  serve::KnnService service(target, config);
  ASSERT_EQ(service.num_shards(), 3);

  // Six client threads, each serving one 16-row slice via JoinBatch.
  constexpr int kClients = 6;
  constexpr size_t kRowsPerClient = 16;
  std::vector<KnnResult> answers(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HostMatrix slice(kRowsPerClient, queries.cols());
      for (size_t r = 0; r < kRowsPerClient; ++r) {
        for (size_t j = 0; j < queries.cols(); ++j) {
          slice.at(r, j) = queries.at(c * kRowsPerClient + r, j);
        }
      }
      answers[c] = service.JoinBatch(slice, kNeighbors).value();
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(answers[c].num_queries(), kRowsPerClient);
    for (size_t r = 0; r < kRowsPerClient; ++r) {
      const size_t global = c * kRowsPerClient + r;
      ExpectRowBitIdentical(reference.row(global), answers[c].row(r),
                            kNeighbors, global);
    }
  }

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.queries, kClients * kRowsPerClient);
  EXPECT_EQ(stats.batched_queries, kClients * kRowsPerClient);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.BatchOccupancy(config.max_batch_size), 0.0);
  EXPECT_GT(stats.AmortizedSimTimePerQuery(), 0.0);
  EXPECT_GE(stats.total_sim_time_s, stats.critical_sim_time_s);
}

TEST(KnnServiceTest, ConcurrentSearchesMatchSingleEngine) {
  const HostMatrix target = ClusteredPoints(300, 4, 4, 403);
  const HostMatrix queries = ClusteredPoints(24, 4, 2, 404);
  constexpr int kNeighbors = 5;
  const KnnResult reference =
      SingleEngineReference(queries, target, kNeighbors,
                            core::TiOptions::Sweet());

  serve::ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 8;
  serve::KnnService service(target, config);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::vector<Neighbor>> answers(queries.rows());
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t q = static_cast<size_t>(c); q < queries.rows();
           q += kClients) {
        std::vector<float> point(queries.row(q),
                                 queries.row(q) + queries.cols());
        answers[q] = service.Search(point, kNeighbors).value();
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t q = 0; q < queries.rows(); ++q) {
    ASSERT_EQ(answers[q].size(), static_cast<size_t>(kNeighbors));
    ExpectRowBitIdentical(reference.row(q), answers[q].data(), kNeighbors,
                          q);
  }
}

TEST(KnnServiceTest, MixedKRequestsEachMatchOracle) {
  const HostMatrix target = ClusteredPoints(260, 5, 4, 405);
  const HostMatrix queries = ClusteredPoints(30, 5, 2, 406);
  serve::ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 64;  // force mixed-k requests into one pop
  config.max_batch_wait = std::chrono::microseconds(4000);
  serve::KnnService service(target, config);

  const std::vector<int> ks = {1, 3, 9, 30};
  std::vector<KnnResult> answers(ks.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < ks.size(); ++i) {
    clients.emplace_back(
        [&, i] { answers[i] = service.JoinBatch(queries, ks[i]).value(); });
  }
  for (std::thread& t : clients) t.join();

  for (size_t i = 0; i < ks.size(); ++i) {
    const KnnResult reference = SingleEngineReference(
        queries, target, ks[i], core::TiOptions::Sweet());
    for (size_t q = 0; q < queries.rows(); ++q) {
      ExpectRowBitIdentical(reference.row(q), answers[i].row(q), ks[i], q);
    }
  }
}

TEST(KnnServiceTest, KLargerThanShardSliceAndTargetPads) {
  // 10 target rows over 4 shards: slices of 3/3/2/2 rows, all smaller
  // than k. The merge must still produce the exact global top-k, and pad
  // exactly like the single engine when k exceeds the whole target.
  HostMatrix target(10, 2);
  for (size_t i = 0; i < 10; ++i) {
    target.at(i, 0) = static_cast<float>(i);
  }
  HostMatrix queries(3, 2);
  queries.at(0, 0) = 0.2f;
  queries.at(1, 0) = 4.6f;
  queries.at(2, 0) = 9.9f;

  for (int k : {7, 15}) {
    const KnnResult reference = SingleEngineReference(
        queries, target, k, core::TiOptions::Sweet());
    serve::ServiceConfig config;
    config.num_shards = 4;
    serve::KnnService service(target, config);
    const KnnResult answer = service.JoinBatch(queries, k).value();
    for (size_t q = 0; q < queries.rows(); ++q) {
      ExpectRowBitIdentical(reference.row(q), answer.row(q), k, q);
    }
  }
}

TEST(KnnServiceTest, MoreShardsThanTargetRowsClamps) {
  HostMatrix target(3, 2);
  for (size_t i = 0; i < 3; ++i) target.at(i, 0) = static_cast<float>(i);
  serve::ServiceConfig config;
  config.num_shards = 8;
  serve::KnnService service(target, config);
  EXPECT_EQ(service.num_shards(), 3);
  const auto neighbors = service.Search({1.1f, 0.0f}, 2).value();
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].index, 1u);
  EXPECT_EQ(neighbors[1].index, 2u);
}

TEST(KnnServiceTest, CacheServesRepeatedSearches) {
  const HostMatrix target = ClusteredPoints(200, 3, 3, 407);
  serve::ServiceConfig config;
  config.num_shards = 2;
  config.cache_capacity = 8;
  serve::KnnService service(target, config);

  const std::vector<float> point = {0.25f, 0.5f, 0.75f};
  const auto first = service.Search(point, 4).value();
  const auto second = service.Search(point, 4).value();
  const auto third = service.Search(point, 4).value();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
  // A different k is a different cache key.
  const auto other_k = service.Search(point, 2).value();
  EXPECT_EQ(other_k.size(), 2u);
  EXPECT_EQ(other_k[0], first[0]);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_lookups, 4u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.batched_queries, 2u);  // two misses reached the engines
}

TEST(KnnServiceTest, LruEvictsLeastRecentlyUsed) {
  const HostMatrix target = ClusteredPoints(150, 2, 3, 408);
  serve::ServiceConfig config;
  config.num_shards = 2;
  config.cache_capacity = 1;
  serve::KnnService service(target, config);

  const std::vector<float> a = {0.1f, 0.1f};
  const std::vector<float> b = {0.9f, 0.9f};
  ASSERT_TRUE(service.Search(a, 3).ok());  // miss, cached
  ASSERT_TRUE(service.Search(b, 3).ok());  // miss, evicts a
  ASSERT_TRUE(service.Search(a, 3).ok());  // miss again
  ASSERT_TRUE(service.Search(a, 3).ok());  // hit
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_lookups, 4u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(KnnServiceTest, ShutdownIsIdempotent) {
  const HostMatrix target = ClusteredPoints(120, 3, 3, 409);
  serve::KnnService service(target);
  EXPECT_EQ(service.JoinBatch(target, 3).value().num_queries(), 120u);
  service.Shutdown();
  service.Shutdown();
}

TEST(KnnServiceTest, RequestAfterShutdownIsRejectedGracefully) {
  const HostMatrix target = ClusteredPoints(60, 2, 2, 410);
  serve::KnnService service(target);
  service.Shutdown();
  const auto search = service.Search({0.5f, 0.5f}, 2);
  ASSERT_FALSE(search.ok());
  EXPECT_EQ(search.status().code(), StatusCode::kUnavailable);
  const auto batch = service.JoinBatch(target, 2);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kUnavailable);
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_requests, 2u);
  EXPECT_EQ(stats.requests, 0u);
}

TEST(KnnServiceTest, BatchAccountingCountsMicroBatchesNotKGroups) {
  const HostMatrix target = ClusteredPoints(200, 3, 3, 413);
  serve::ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 3;
  config.max_batch_wait = std::chrono::microseconds(2'000'000);
  serve::KnnService service(target, config);

  // Three single-row requests with two distinct k values coalesce into
  // one micro-batch (the batch seals the moment the third row lands,
  // well inside the 2 s window): one batch, two engine groups. Counting
  // a "batch" per k-group would report occupancy 0.5 here instead of 1.
  const std::vector<int> ks = {3, 3, 5};
  std::vector<std::thread> clients;
  for (const int k : ks) {
    clients.emplace_back([&service, &target, k] {
      HostMatrix one(1, target.cols());
      for (size_t j = 0; j < target.cols(); ++j) {
        one.at(0, j) = target.at(0, j);
      }
      EXPECT_TRUE(service.JoinBatch(one, k).ok());
    });
  }
  for (std::thread& t : clients) t.join();

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.engine_groups, 2u);
  EXPECT_EQ(stats.batched_queries, 3u);
  EXPECT_DOUBLE_EQ(stats.MeanBatchSize(), 3.0);
  EXPECT_DOUBLE_EQ(stats.BatchOccupancy(config.max_batch_size), 1.0);
}

TEST(KnnServiceTest, MetricsMirrorStatsAndCarryStageBreakdown) {
  const HostMatrix target = ClusteredPoints(240, 4, 3, 414);
  const HostMatrix queries = ClusteredPoints(12, 4, 2, 415);
  serve::ServiceConfig config;
  config.num_shards = 2;
  // This test asserts per-shard simulated-device stats, so pin every
  // shard onto the device route (host-routed shards report none).
  config.planner.mode = core::PlannerMode::kForceDevice;
  serve::KnnService service(target, config);
  ASSERT_TRUE(service.JoinBatch(queries, 4).ok());
  const serve::ServiceStats stats = service.stats();

  // Every wall-clock histogram saw this one request/batch.
  for (const char* name :
       {"sweetknn_request_latency_seconds", "sweetknn_queue_wait_seconds",
        "sweetknn_batch_assembly_seconds", "sweetknn_shard_fanout_seconds",
        "sweetknn_merge_seconds"}) {
    const common::HistogramSnapshot snap =
        service.metrics().SnapshotHistogram(name);
    EXPECT_EQ(snap.count, 1u) << name;
    EXPECT_GE(snap.max, 0.0) << name;
    EXPECT_GE(snap.Percentile(0.99), snap.Percentile(0.50)) << name;
  }
  const common::HistogramSnapshot rows =
      service.metrics().SnapshotHistogram("sweetknn_batch_size_rows");
  EXPECT_EQ(rows.count, 1u);
  EXPECT_DOUBLE_EQ(rows.sum, 12.0);
  // One adaptive decision per shard run.
  const common::HistogramSnapshot tpq = service.metrics().SnapshotHistogram(
      "sweetknn_adaptive_threads_per_query");
  EXPECT_EQ(tpq.count, 2u);

  // Counters mirror ServiceStats, and the per-stage simulated times
  // partition the device total exactly (modulo summation order).
  const std::string json = service.ExportMetricsJson();
  common::MetricsRegistry parsed;
  ASSERT_TRUE(common::ParseMetricsJson(json, &parsed).ok());
  auto counter = [&parsed](const char* name) {
    return parsed.GetCounter(name, "")->value();
  };
  EXPECT_EQ(counter("sweetknn_requests_total"),
            static_cast<double>(stats.requests));
  EXPECT_EQ(counter("sweetknn_batches_total"),
            static_cast<double>(stats.batches));
  EXPECT_EQ(counter("sweetknn_engine_groups_total"),
            static_cast<double>(stats.engine_groups));
  EXPECT_EQ(counter("sweetknn_batched_queries_total"),
            static_cast<double>(stats.batched_queries));
  EXPECT_EQ(counter("sweetknn_distance_calcs_total"),
            static_cast<double>(stats.distance_calcs));
  EXPECT_EQ(counter("sweetknn_sim_device_seconds_total"),
            stats.total_sim_time_s);
  EXPECT_EQ(counter("sweetknn_sim_critical_seconds_total"),
            stats.critical_sim_time_s);
  const double staged = counter("sweetknn_sim_level1_seconds_total") +
                        counter("sweetknn_sim_level2_seconds_total") +
                        counter("sweetknn_sim_transfer_seconds_total") +
                        counter("sweetknn_sim_preprocess_seconds_total");
  EXPECT_GT(counter("sweetknn_sim_level1_seconds_total"), 0.0);
  EXPECT_GT(counter("sweetknn_sim_level2_seconds_total"), 0.0);
  EXPECT_GT(counter("sweetknn_sim_preprocess_seconds_total"), 0.0);
  EXPECT_NEAR(staged, stats.total_sim_time_s,
              1e-9 * std::max(1.0, stats.total_sim_time_s));
  EXPECT_EQ(counter("sweetknn_adaptive_filter_full_total") +
                counter("sweetknn_adaptive_filter_partial_total"),
            static_cast<double>(stats.engine_groups * 2));  // 2 shards

  // Both exports round-trip bit-identically through their parsers.
  EXPECT_EQ(parsed.ExportJson(), json);
  const std::string text = service.ExportMetricsText();
  common::MetricsRegistry parsed_text;
  ASSERT_TRUE(common::ParseMetricsPrometheusText(text, &parsed_text).ok());
  EXPECT_EQ(parsed_text.ExportPrometheusText(), text);
}

TEST(KnnServiceTest, SweepShardCountsStayExact) {
  const HostMatrix target = ClusteredPoints(330, 4, 4, 411);
  const HostMatrix queries = ClusteredPoints(20, 4, 2, 412);
  const KnnResult oracle = baseline::BruteForceCpu(queries, target, 6);
  for (int shards : {1, 2, 5}) {
    serve::ServiceConfig config;
    config.num_shards = shards;
    serve::KnnService service(target, config);
    const KnnResult answer = service.JoinBatch(queries, 6).value();
    testing::ExpectResultsMatch(oracle, answer);
  }
}

}  // namespace
}  // namespace sweetknn
