// ShardHost (serve/shard_backend.h) is the transport-free unit both
// serving backends host — KnnService's in-process threads and the
// shard-worker processes. These tests pin its contract directly:
// SearchGroup answers merged with core::MergeShardAnswers are
// bit-identical to a single-engine run over the whole target (pristine)
// and to a brute-force oracle over the live point set (mutated), on
// either query route. The cluster differential harness
// (tests/integration/cluster_differential_test.cc) then only has to
// prove the transport moves these answers faithfully.

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "baseline/brute_force_cpu.h"
#include "core/shard_merge.h"
#include "core/ti_knn_gpu.h"
#include "gtest/gtest.h"
#include "serve/shard_backend.h"
#include "test_util.h"

namespace sweetknn::serve {
namespace {

core::TiOptions ShardOptions(core::Metric metric) {
  core::TiOptions options = core::TiOptions::Sweet();
  options.metric = metric;
  options.sim_threads = 1;  // what both serving backends run per shard
  return options;
}

/// Cold-builds `num_shards` hosts over the same contiguous slices
/// KnnService and the Router carve: rows / S each, the remainder spread
/// over the first shards.
std::vector<std::unique_ptr<ShardHost>> BuildShards(
    const HostMatrix& target, int num_shards,
    const core::TiOptions& options) {
  const gpusim::DeviceSpec spec = gpusim::DeviceSpec::TeslaK20c();
  std::vector<std::unique_ptr<ShardHost>> shards;
  const size_t per = target.rows() / static_cast<size_t>(num_shards);
  const size_t rem = target.rows() % static_cast<size_t>(num_shards);
  size_t offset = 0;
  for (int s = 0; s < num_shards; ++s) {
    const size_t rows = per + (static_cast<size_t>(s) < rem ? 1 : 0);
    HostMatrix slice(rows, target.cols());
    std::memcpy(slice.mutable_row(0), target.row(offset),
                rows * target.cols() * sizeof(float));
    auto shard = std::make_unique<ShardHost>(spec, options);
    shard->offset = static_cast<uint32_t>(offset);
    shard->BuildCold(slice);
    shards.push_back(std::move(shard));
    offset += rows;
  }
  return shards;
}

KnnResult MergedAnswer(const std::vector<std::unique_ptr<ShardHost>>& shards,
                       const HostMatrix& queries, int k,
                       core::QueryRoute route, core::Metric metric) {
  std::vector<core::ShardAnswer> answers;
  answers.reserve(shards.size());
  for (const auto& shard : shards) {
    answers.push_back(shard->SearchGroup(queries, k, route, metric));
  }
  return core::MergeShardAnswers(answers, k);
}

void ExpectBitIdentical(const KnnResult& want, const KnnResult& got,
                        const char* what) {
  ASSERT_EQ(want.num_queries(), got.num_queries()) << what;
  ASSERT_EQ(want.k(), got.k()) << what;
  for (size_t q = 0; q < want.num_queries(); ++q) {
    for (int i = 0; i < want.k(); ++i) {
      const Neighbor& w = want.row(q)[i];
      const Neighbor& g = got.row(q)[i];
      ASSERT_TRUE(w.index == g.index &&
                  std::memcmp(&w.distance, &g.distance, sizeof(float)) == 0)
          << what << ": query " << q << " rank " << i << " want ("
          << w.index << ", " << w.distance << ") got (" << g.index << ", "
          << g.distance << ")";
    }
  }
}

/// Live point set keyed by stable id, for the mutated-oracle checks.
using Model = std::map<uint32_t, std::vector<float>>;

KnnResult OracleTopK(const Model& model, size_t dims,
                     const HostMatrix& queries, int k, core::Metric metric) {
  HostMatrix points(model.size(), dims);
  std::vector<uint32_t> ids;
  size_t row = 0;
  for (const auto& [id, coords] : model) {
    std::memcpy(points.mutable_row(row++), coords.data(),
                dims * sizeof(float));
    ids.push_back(id);
  }
  KnnResult expected = baseline::BruteForceCpu(queries, points, k, metric);
  for (size_t q = 0; q < expected.num_queries(); ++q) {
    Neighbor* out = expected.mutable_row(q);
    for (int i = 0; i < k; ++i) {
      if (out[i].index != kInvalidNeighbor) {
        out[i] = {ids[out[i].index], out[i].distance};
      }
    }
  }
  return expected;
}

TEST(ShardBackendTest, PristineMergeMatchesSingleEngine) {
  for (const core::Metric metric :
       {core::Metric::kEuclidean, core::Metric::kManhattan}) {
    const core::TiOptions options = ShardOptions(metric);
    const HostMatrix target =
        testing::ClusteredPoints(120, 5, 3, /*seed=*/1001, 0.08f);
    const HostMatrix queries = testing::UniformPoints(7, 5, /*seed=*/77);
    const int k = 6;

    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    core::KnnRunStats stats;
    const KnnResult single =
        core::TiKnnEngine::RunOnce(&dev, queries, target, k, options, &stats);

    for (const int num_shards : {1, 2, 3}) {
      const auto shards = BuildShards(target, num_shards, options);
      const KnnResult merged = MergedAnswer(
          shards, queries, k, core::QueryRoute::kDevice, metric);
      ExpectBitIdentical(single, merged, "pristine device route");
      const KnnResult merged_host = MergedAnswer(
          shards, queries, k, core::QueryRoute::kHost, metric);
      ExpectBitIdentical(single, merged_host, "pristine host route");
    }
  }
}

TEST(ShardBackendTest, MutatedMergeMatchesOracle) {
  const core::Metric metric = core::Metric::kEuclidean;
  const core::TiOptions options = ShardOptions(metric);
  const size_t n0 = 60;
  const size_t dims = 4;
  const int num_shards = 3;
  const HostMatrix target =
      testing::ClusteredPoints(n0, dims, 2, /*seed=*/2002, 0.08f);
  auto shards = BuildShards(target, num_shards, options);

  Model model;
  for (size_t i = 0; i < n0; ++i) {
    model[static_cast<uint32_t>(i)] =
        std::vector<float>(target.row(i), target.row(i) + dims);
  }

  // Inserts land on shard id % S with router-allocated ascending ids,
  // removes resolve through Owns/ApplyRemove — the same deterministic
  // placement both serving backends use.
  Rng rng(4242);
  uint32_t next_id = static_cast<uint32_t>(n0);
  for (int i = 0; i < 12; ++i) {
    std::vector<float> point(dims);
    for (float& x : point) x = rng.NextFloat();
    const uint32_t id = next_id++;
    shards[id % num_shards]->delta.Append(id, point.data());
    model[id] = point;
  }
  for (int i = 0; i < 15; ++i) {
    const uint32_t id = static_cast<uint32_t>(rng.NextBounded(next_id));
    bool found = false;
    for (auto& shard : shards) {
      if (shard->Owns(id)) {
        found = shard->ApplyRemove(id);
        break;
      }
    }
    EXPECT_EQ(found, model.erase(id) > 0) << "remove of id " << id;
  }

  const HostMatrix queries = testing::UniformPoints(6, dims, /*seed=*/99);
  // k beyond one shard's live count exercises the padding path too.
  for (const int k : {1, 5, 12}) {
    const KnnResult want = OracleTopK(model, dims, queries, k, metric);
    const KnnResult device = MergedAnswer(
        shards, queries, k, core::QueryRoute::kDevice, metric);
    ExpectBitIdentical(want, device, "mutated device route");
    const KnnResult host = MergedAnswer(
        shards, queries, k, core::QueryRoute::kHost, metric);
    ExpectBitIdentical(want, host, "mutated host route");
  }
}

TEST(ShardBackendTest, CompactionRoundTripKeepsAnswers) {
  const core::Metric metric = core::Metric::kEuclidean;
  const core::TiOptions options = ShardOptions(metric);
  const size_t dims = 3;
  const HostMatrix target =
      testing::ClusteredPoints(40, dims, 2, /*seed=*/3003, 0.08f);
  auto shards = BuildShards(target, 2, options);

  Rng rng(7);
  uint32_t next_id = 40;
  for (int i = 0; i < 8; ++i) {
    std::vector<float> point(dims);
    for (float& x : point) x = rng.NextFloat();
    const uint32_t id = next_id++;
    shards[id % 2]->delta.Append(id, point.data());
  }
  ASSERT_TRUE(shards[0]->ApplyRemove(4));
  ASSERT_TRUE(shards[1]->ApplyRemove(21));

  const HostMatrix queries = testing::UniformPoints(5, dims, /*seed=*/5);
  const int k = 7;
  const KnnResult before =
      MergedAnswer(shards, queries, k, core::QueryRoute::kDevice, metric);

  // The worker's compaction protocol: capture, rebuild, carry forward.
  for (size_t s = 0; s < shards.size(); ++s) {
    core::TiOptions shard_options = options;
    CompactionPlan plan;
    CaptureCompaction(shards[s].get(), static_cast<int>(s), &plan);
    auto fresh = RebuildCompacted(plan, gpusim::DeviceSpec::TeslaK20c(),
                                  shard_options, dims);
    CarryOverlayForward(*shards[s], plan, fresh.get());
    shards[s] = std::move(fresh);
  }

  const KnnResult after =
      MergedAnswer(shards, queries, k, core::QueryRoute::kDevice, metric);
  ExpectBitIdentical(before, after, "post-compaction");
}

}  // namespace
}  // namespace sweetknn::serve
