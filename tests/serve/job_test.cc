// Offline jobs on KnnService (ISSUE 10): radius search, similarity
// self-join, and exact kNN-graph construction as long-running jobs with
// progress, cancellation, and chunked execution through the same
// admission queue the point lookups use. Every modality is checked
// against an O(n^2) oracle over the service's live set; the lifecycle
// tests pin down the poll/cancel/take state machine docs/modalities.md
// documents.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/range_result.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "simd/simd_kernels.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;

/// O(n^2) closed-ball oracle through the canonical distance kernel.
std::vector<Neighbor> OracleRange(const float* query,
                                  const std::vector<uint32_t>& ids,
                                  const HostMatrix& points, float radius) {
  std::vector<float> dists(points.rows());
  if (points.rows() > 0) {
    simd::QueryBlockDistances(query, points.data(), points.rows(),
                              points.cols(), simd::Dist::kEuclidean,
                              dists.data());
  }
  std::vector<Neighbor> out;
  for (size_t i = 0; i < points.rows(); ++i) {
    if (dists[i] <= radius) out.push_back(Neighbor{ids[i], dists[i]});
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

void ExpectRowEquals(const RangeResult& result, size_t q,
                     const std::vector<Neighbor>& expected) {
  ASSERT_EQ(result.count(q), expected.size()) << "q=" << q;
  const Neighbor* row = result.begin(q);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(row[i].index, expected[i].index) << "q=" << q << " i=" << i;
    EXPECT_EQ(row[i].distance, expected[i].distance)
        << "q=" << q << " i=" << i;
  }
}

serve::ServiceConfig SmallConfig(int shards) {
  serve::ServiceConfig config;
  config.num_shards = shards;
  config.max_batch_wait = std::chrono::microseconds(200);
  return config;
}

TEST(JobTest, RadiusSearchMatchesOracle) {
  const HostMatrix target = ClusteredPoints(300, 6, 5, 9001);
  const HostMatrix queries = ClusteredPoints(40, 6, 3, 9002);
  serve::KnnService service(target, SmallConfig(3));
  std::vector<uint32_t> ids(target.rows());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);

  for (const float radius : {0.0f, 0.4f, 1.5f, 100.0f}) {
    const RangeResult got = service.RadiusSearch(queries, radius).value();
    ASSERT_EQ(got.num_queries(), queries.rows());
    for (size_t q = 0; q < queries.rows(); ++q) {
      ExpectRowEquals(got, q, OracleRange(queries.row(q), ids, target,
                                          radius));
    }
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_GT(stats.range_groups, 0u);
  EXPECT_EQ(stats.range_queries, 4 * queries.rows());
}

TEST(JobTest, RadiusSearchSeesMutations) {
  const HostMatrix target = ClusteredPoints(200, 5, 4, 9003);
  const HostMatrix queries = ClusteredPoints(16, 5, 2, 9004);
  serve::KnnService service(target, SmallConfig(2));

  // Live set = base minus a few removes plus a few inserts.
  std::vector<uint32_t> ids;
  HostMatrix extra = ClusteredPoints(10, 5, 2, 9005);
  std::vector<uint32_t> fresh =
      service.InsertBatch(extra).value();
  ASSERT_TRUE(service.Remove(3).value());
  ASSERT_TRUE(service.Remove(77).value());
  ASSERT_TRUE(service.Remove(fresh[4]).value());

  std::vector<std::vector<float>> live_rows;
  for (size_t i = 0; i < target.rows(); ++i) {
    if (i == 3 || i == 77) continue;
    ids.push_back(static_cast<uint32_t>(i));
    live_rows.emplace_back(target.row(i), target.row(i) + target.cols());
  }
  for (size_t i = 0; i < extra.rows(); ++i) {
    if (fresh[i] == fresh[4]) continue;
    ids.push_back(fresh[i]);
    live_rows.emplace_back(extra.row(i), extra.row(i) + extra.cols());
  }
  HostMatrix live(live_rows.size(), target.cols());
  for (size_t i = 0; i < live_rows.size(); ++i) {
    std::copy(live_rows[i].begin(), live_rows[i].end(), live.mutable_row(i));
  }

  const float radius = 1.2f;
  const RangeResult got = service.RadiusSearch(queries, radius).value();
  for (size_t q = 0; q < queries.rows(); ++q) {
    ExpectRowEquals(got, q, OracleRange(queries.row(q), ids, live, radius));
  }
}

TEST(JobTest, SelfJoinMatchesOracle) {
  const HostMatrix target = ClusteredPoints(180, 4, 4, 9006);
  serve::KnnService service(target, SmallConfig(3));
  ASSERT_TRUE(service.Remove(10).value());
  std::vector<float> extra_point(target.row(5), target.row(5) + 4);
  const uint32_t dup_id = service.Insert(extra_point).value();

  const float radius = 0.9f;
  const std::vector<SelfJoinPair> got = service.SelfJoin(radius).value();

  // Oracle: every unordered live pair within the closed ball, once.
  std::vector<uint32_t> ids;
  std::vector<const float*> rows;
  for (size_t i = 0; i < target.rows(); ++i) {
    if (i == 10) continue;
    ids.push_back(static_cast<uint32_t>(i));
    rows.push_back(target.row(i));
  }
  ids.push_back(dup_id);
  rows.push_back(extra_point.data());
  std::vector<SelfJoinPair> expected;
  for (size_t a = 0; a < ids.size(); ++a) {
    std::vector<float> buf(4);
    for (size_t b = 0; b < ids.size(); ++b) {
      if (ids[b] <= ids[a]) continue;
      float d = 0.0f;
      simd::QueryBlockDistances(rows[a], rows[b], 1, 4,
                                simd::Dist::kEuclidean, &d);
      if (d <= radius) expected.push_back(SelfJoinPair{ids[a], ids[b], d});
    }
  }
  auto pair_less = [](const SelfJoinPair& x, const SelfJoinPair& y) {
    if (x.a != y.a) return x.a < y.a;
    return NeighborLess(Neighbor{x.b, x.distance},
                        Neighbor{y.b, y.distance});
  };
  std::sort(expected.begin(), expected.end(), pair_less);
  std::vector<SelfJoinPair> sorted_got = got;
  std::sort(sorted_got.begin(), sorted_got.end(), pair_less);
  ASSERT_EQ(sorted_got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(sorted_got[i] == expected[i]) << "pair " << i;
  }
  // The duplicate of row 5 must appear at distance 0 against it.
  const bool has_dup = std::any_of(
      sorted_got.begin(), sorted_got.end(), [&](const SelfJoinPair& p) {
        return p.a == 5 && p.b == dup_id && p.distance == 0.0f;
      });
  EXPECT_TRUE(has_dup);
}

TEST(JobTest, KnnGraphMatchesOracle) {
  const HostMatrix target = ClusteredPoints(150, 6, 4, 9007);
  serve::KnnService service(target, SmallConfig(2));
  ASSERT_TRUE(service.Remove(42).value());
  constexpr int kNeighbors = 5;

  const serve::JobOutput out = service.KnnGraph(kNeighbors).value();
  ASSERT_EQ(out.kind, serve::JobKind::kKnnGraph);
  ASSERT_EQ(out.query_ids.size(), target.rows() - 1);
  ASSERT_EQ(out.graph.num_queries(), target.rows() - 1);

  std::vector<uint32_t> ids;
  std::vector<const float*> rows;
  for (size_t i = 0; i < target.rows(); ++i) {
    if (i == 42) continue;
    ids.push_back(static_cast<uint32_t>(i));
    rows.push_back(target.row(i));
  }
  for (size_t q = 0; q < ids.size(); ++q) {
    ASSERT_EQ(out.query_ids[q], ids[q]);  // ascending id order
    std::vector<Neighbor> all;
    for (size_t b = 0; b < ids.size(); ++b) {
      if (b == q) continue;  // the graph excludes the point itself
      float d = 0.0f;
      simd::QueryBlockDistances(rows[q], rows[b], 1, target.cols(),
                                simd::Dist::kEuclidean, &d);
      all.push_back(Neighbor{ids[b], d});
    }
    std::sort(all.begin(), all.end(), NeighborLess);
    const Neighbor* row = out.graph.row(q);
    for (int i = 0; i < kNeighbors; ++i) {
      ASSERT_EQ(row[i].index, all[i].index) << "q=" << q << " i=" << i;
      ASSERT_EQ(row[i].distance, all[i].distance)
          << "q=" << q << " i=" << i;
    }
  }
}

TEST(JobTest, JobLifecyclePollAndTake) {
  const HostMatrix target = ClusteredPoints(120, 4, 3, 9008);
  serve::KnnService service(target, SmallConfig(2));

  serve::JobSpec spec;
  spec.kind = serve::JobKind::kRadiusSearch;
  spec.radius = 1.0f;
  spec.queries = ClusteredPoints(30, 4, 2, 9009);
  spec.chunk_rows = 4;
  const uint64_t id = service.SubmitJob(spec).value();

  // Poll to completion: progress is monotone and lands on total_rows.
  uint64_t last_done = 0;
  serve::JobProgress progress;
  for (;;) {
    progress = service.PollJob(id).value();
    EXPECT_GE(progress.done_rows, last_done);
    last_done = progress.done_rows;
    if (progress.state == serve::JobState::kDone) break;
    ASSERT_TRUE(progress.state == serve::JobState::kPending ||
                progress.state == serve::JobState::kRunning);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(progress.total_rows, 30u);
  EXPECT_EQ(progress.done_rows, 30u);

  const serve::JobOutput out = service.TakeJobResult(id).value();
  EXPECT_EQ(out.kind, serve::JobKind::kRadiusSearch);
  EXPECT_EQ(out.range.num_queries(), 30u);
  // The job's chunked answer is bit-identical to the one-shot call.
  const RangeResult direct =
      service.RadiusSearch(spec.queries, spec.radius).value();
  EXPECT_TRUE(BitIdentical(out.range, direct));

  // Taking released the slot: the id is gone.
  EXPECT_EQ(service.TakeJobResult(id).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.PollJob(id).status().code(), StatusCode::kNotFound);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
}

TEST(JobTest, CancelMidJobKeepsServingLookups) {
  const HostMatrix target = ClusteredPoints(400, 6, 5, 9010);
  serve::KnnService service(target, SmallConfig(2));

  serve::JobSpec spec;
  spec.kind = serve::JobKind::kSelfJoin;
  spec.radius = 2.0f;
  spec.chunk_rows = 1;  // 400 chunk boundaries to cancel at
  const uint64_t id = service.SubmitJob(spec).value();

  // Point lookups keep flowing while the job runs and after the cancel.
  std::atomic<bool> stop{false};
  std::atomic<int> lookups{0};
  std::thread client([&] {
    const HostMatrix probe = ClusteredPoints(4, 6, 2, 9011);
    while (!stop.load()) {
      ASSERT_TRUE(service.JoinBatch(probe, 3).ok());
      lookups.fetch_add(1);
    }
  });

  // Wait for real progress, then cancel mid-job.
  for (;;) {
    const serve::JobProgress p = service.PollJob(id).value();
    if (p.done_rows >= 2 || p.state != serve::JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(service.CancelJob(id).ok());
  serve::JobProgress progress;
  for (;;) {
    progress = service.PollJob(id).value();
    if (progress.state != serve::JobState::kPending &&
        progress.state != serve::JobState::kRunning) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(progress.state, serve::JobState::kCancelled);
  EXPECT_LT(progress.done_rows, 400u);

  // The service still answers lookups after the cancellation.
  const HostMatrix probe = ClusteredPoints(4, 6, 2, 9012);
  EXPECT_TRUE(service.JoinBatch(probe, 3).ok());
  stop.store(true);
  client.join();
  EXPECT_GT(lookups.load(), 0);

  // Reaping a cancelled job reports why and releases its state.
  EXPECT_EQ(service.TakeJobResult(id).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service.PollJob(id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.stats().jobs_cancelled, 1u);
}

TEST(JobTest, ShutdownFailsPendingJobs) {
  const HostMatrix target = ClusteredPoints(100, 4, 3, 9013);
  auto service = std::make_unique<serve::KnnService>(target, SmallConfig(2));

  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    serve::JobSpec spec;
    spec.kind = serve::JobKind::kSelfJoin;
    spec.radius = 1.0f;
    spec.chunk_rows = 1;
    ids.push_back(service->SubmitJob(spec).value());
  }
  service->Shutdown();

  // Every job is terminal; none may be stuck pending/running.
  int failed = 0;
  for (const uint64_t id : ids) {
    const serve::JobProgress p = service->PollJob(id).value();
    EXPECT_TRUE(p.state == serve::JobState::kDone ||
                p.state == serve::JobState::kFailed ||
                p.state == serve::JobState::kCancelled)
        << "job " << id;
    if (p.state == serve::JobState::kFailed) ++failed;
  }
  EXPECT_GT(failed, 0);  // at least the never-started tail

  // New submissions are rejected after shutdown.
  serve::JobSpec late;
  late.kind = serve::JobKind::kKnnGraph;
  late.k = 3;
  EXPECT_EQ(service->SubmitJob(late).status().code(),
            StatusCode::kUnavailable);
}

TEST(JobTest, ValidationAndUnknownIds) {
  const HostMatrix target = ClusteredPoints(60, 4, 2, 9014);
  serve::KnnService service(target, SmallConfig(1));

  serve::JobSpec spec;
  spec.kind = serve::JobKind::kRadiusSearch;
  spec.radius = 1.0f;
  // No query rows.
  EXPECT_EQ(service.SubmitJob(spec).status().code(),
            StatusCode::kInvalidArgument);
  // Wrong dims.
  spec.queries = ClusteredPoints(4, 7, 2, 9015);
  EXPECT_EQ(service.SubmitJob(spec).status().code(),
            StatusCode::kInvalidArgument);
  // Negative radius.
  spec.queries = ClusteredPoints(4, 4, 2, 9016);
  spec.radius = -1.0f;
  EXPECT_EQ(service.SubmitJob(spec).status().code(),
            StatusCode::kInvalidArgument);
  // k <= 0 for a graph job.
  serve::JobSpec graph;
  graph.kind = serve::JobKind::kKnnGraph;
  graph.k = 0;
  EXPECT_EQ(service.SubmitJob(graph).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(service.PollJob(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.CancelJob(999).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.TakeJobResult(999).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace sweetknn
