// FairScheduler (serve/scheduler.h): deficit-round-robin ratios, the
// admission bound, close-then-drain, Forget semantics, and the
// tenant-targeted pops the micro-batcher uses. T = int keeps the
// accounting visible: the item IS its submission order.
#include "serve/scheduler.h"

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sweetknn::serve {
namespace {

using Sched = FairScheduler<int>;
using common::PopResult;

Sched::Options Opts(size_t depth, size_t quantum) {
  Sched::Options opts;
  opts.max_queue_depth = depth;
  opts.quantum = quantum;
  return opts;
}

TEST(ParseWeightListTest, ParsesPositiveWeights) {
  const Result<std::vector<double>> parsed = ParseWeightList("4,1,2.5");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.value()[0], 4.0);
  EXPECT_DOUBLE_EQ(parsed.value()[1], 1.0);
  EXPECT_DOUBLE_EQ(parsed.value()[2], 2.5);
}

TEST(ParseWeightListTest, EmptySpecIsAnEmptyList) {
  const Result<std::vector<double>> parsed = ParseWeightList("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(ParseWeightListTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseWeightList("4,").ok());
  EXPECT_FALSE(ParseWeightList("4,,1").ok());
  EXPECT_FALSE(ParseWeightList("abc").ok());
  EXPECT_FALSE(ParseWeightList("4,0").ok());
  EXPECT_FALSE(ParseWeightList("-1").ok());
  EXPECT_FALSE(ParseWeightList("1,nan").ok());
}

TEST(FairSchedulerTest, SingleTenantIsFifo) {
  Sched sched(Opts(0, 8));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sched.Submit("default", i, 1), Sched::Admit::kAdmitted);
  }
  EXPECT_EQ(sched.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    int item = -1;
    std::string tenant;
    ASSERT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
    EXPECT_EQ(item, i);
    EXPECT_EQ(tenant, "default");
  }
  EXPECT_EQ(sched.size(), 0u);
  EXPECT_EQ(sched.peak_depth(), 5u);
}

// Under saturation a 4:1 weighted pair is served 4:1 in cost units.
// Both sub-queues stay non-empty throughout the measured window, so the
// DRR ratio must land within 25% of the configured one (the storm test
// asserts the same bound end-to-end through the service).
TEST(FairSchedulerTest, DrrFollowsWeightsUnderSaturation) {
  Sched sched(Opts(0, 4));
  sched.SetWeight("heavy", 4.0);
  sched.SetWeight("light", 1.0);
  for (int i = 0; i < 600; ++i) {
    ASSERT_EQ(sched.Submit("heavy", i, 1), Sched::Admit::kAdmitted);
    ASSERT_EQ(sched.Submit("light", i, 1), Sched::Admit::kAdmitted);
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 500; ++i) {
    int item = -1;
    std::string tenant;
    ASSERT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
    ++served[tenant];
  }
  ASSERT_GT(served["light"], 0);
  const double ratio =
      static_cast<double>(served["heavy"]) / served["light"];
  EXPECT_GT(ratio, 4.0 * 0.75) << "heavy=" << served["heavy"]
                               << " light=" << served["light"];
  EXPECT_LT(ratio, 4.0 * 1.25) << "heavy=" << served["heavy"]
                               << " light=" << served["light"];
}

// Costs weigh into the deficit: items of cost 4 on one side and cost 1
// on the other, equal weights -- item counts settle near 1:4.
TEST(FairSchedulerTest, DrrChargesCostNotItemCount) {
  Sched sched(Opts(0, 8));
  sched.SetWeight("wide", 1.0);
  sched.SetWeight("narrow", 1.0);
  for (int i = 0; i < 400; ++i) {
    ASSERT_EQ(sched.Submit("wide", i, 4), Sched::Admit::kAdmitted);
    ASSERT_EQ(sched.Submit("narrow", i, 1), Sched::Admit::kAdmitted);
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 300; ++i) {
    int item = -1;
    std::string tenant;
    ASSERT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
    ++served[tenant];
  }
  ASSERT_GT(served["wide"], 0);
  const double ratio =
      static_cast<double>(served["narrow"]) / served["wide"];
  EXPECT_GT(ratio, 4.0 * 0.75) << "narrow=" << served["narrow"]
                               << " wide=" << served["wide"];
  EXPECT_LT(ratio, 4.0 * 1.25) << "narrow=" << served["narrow"]
                               << " wide=" << served["wide"];
}

// Regression: an idle tenant between cursor and the only backlogged one
// used to starve the arrival credit — the cursor stepped off the empty
// sub-queue without granting, so a head item costing more than one
// quantum could never be afforded and the DRR pick spun forever.
TEST(FairSchedulerTest, ServesPastIdleTenantsWhenHeadExceedsQuantum) {
  Sched sched(Opts(0, 4));
  sched.SetWeight("asleep", 1.0);  // idle forever, sorts before "busy"
  sched.SetWeight("busy", 1.0);
  sched.SetWeight("zzz-idle", 1.0);  // idle forever, sorts after
  ASSERT_EQ(sched.Submit("busy", 7, 24), Sched::Admit::kAdmitted);
  int item = -1;
  std::string tenant;
  ASSERT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
  EXPECT_EQ(item, 7);
  EXPECT_EQ(tenant, "busy");
}

TEST(FairSchedulerTest, ShedsBeyondMaxDepthAcrossTenants) {
  Sched sched(Opts(4, 8));
  EXPECT_EQ(sched.Submit("a", 0, 1), Sched::Admit::kAdmitted);
  EXPECT_EQ(sched.Submit("a", 1, 1), Sched::Admit::kAdmitted);
  EXPECT_EQ(sched.Submit("b", 2, 1), Sched::Admit::kAdmitted);
  EXPECT_EQ(sched.Submit("b", 3, 1), Sched::Admit::kAdmitted);
  // The bound is global: tenant c is bounced by a+b's backlog.
  EXPECT_EQ(sched.Submit("c", 4, 1), Sched::Admit::kShed);
  int item = -1;
  std::string tenant;
  ASSERT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
  EXPECT_EQ(sched.Submit("c", 5, 1), Sched::Admit::kAdmitted);
  EXPECT_EQ(sched.peak_depth(), 4u);
}

TEST(FairSchedulerTest, CloseDrainsAdmittedItemsThenReportsClosed) {
  Sched sched(Opts(0, 8));
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(sched.Submit("default", i, 1), Sched::Admit::kAdmitted);
  }
  sched.Close();
  EXPECT_EQ(sched.Submit("default", 9, 1), Sched::Admit::kClosed);
  for (int i = 0; i < 3; ++i) {
    int item = -1;
    std::string tenant;
    ASSERT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
    EXPECT_EQ(item, i);
  }
  int item = -1;
  std::string tenant;
  EXPECT_EQ(sched.WaitPop(&item, &tenant), PopResult::kClosed);
}

TEST(FairSchedulerTest, ForgetDropsOnlyEmptySubQueues) {
  Sched sched(Opts(0, 8));
  sched.SetWeight("keep", 2.0);
  sched.SetWeight("gone", 2.0);
  ASSERT_EQ(sched.Submit("keep", 7, 1), Sched::Admit::kAdmitted);
  sched.Forget("gone");  // empty: bookkeeping dropped
  sched.Forget("keep");  // queued item: kept, must still drain
  EXPECT_EQ(sched.tenant_depth("keep"), 1u);
  int item = -1;
  std::string tenant;
  ASSERT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
  EXPECT_EQ(item, 7);
  EXPECT_EQ(tenant, "keep");
}

TEST(FairSchedulerTest, TenantTargetedPops) {
  Sched sched(Opts(0, 8));
  ASSERT_EQ(sched.Submit("a", 1, 1), Sched::Admit::kAdmitted);
  ASSERT_EQ(sched.Submit("b", 2, 1), Sched::Admit::kAdmitted);
  int item = -1;
  EXPECT_FALSE(sched.TryPopTenant("missing", &item));
  ASSERT_TRUE(sched.TryPopTenant("b", &item));
  EXPECT_EQ(item, 2);
  EXPECT_FALSE(sched.TryPopTenant("b", &item));
  // The batch window: an empty tenant times out without stealing a's
  // backlog; a closed, drained tenant reports kClosed.
  const auto soon =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_EQ(sched.WaitPopTenantUntil("b", &item, soon), PopResult::kTimeout);
  ASSERT_EQ(sched.WaitPopTenantUntil(
                "a", &item,
                std::chrono::steady_clock::now() + std::chrono::seconds(5)),
            PopResult::kItem);
  EXPECT_EQ(item, 1);
  sched.Close();
  EXPECT_EQ(sched.WaitPopTenantUntil(
                "b", &item,
                std::chrono::steady_clock::now() + std::chrono::seconds(5)),
            PopResult::kClosed);
}

// Out-of-turn pops (batch coalescing) drive the tenant's deficit
// negative; the DRR cursor then repays the debt before serving it
// again, so long-run ratios survive arbitrary batch shapes.
TEST(FairSchedulerTest, OutOfTurnPopsChargeTheDeficit) {
  Sched sched(Opts(0, 4));
  sched.SetWeight("a", 1.0);
  sched.SetWeight("b", 1.0);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(sched.Submit("a", i, 1), Sched::Admit::kAdmitted);
    ASSERT_EQ(sched.Submit("b", i, 1), Sched::Admit::kAdmitted);
  }
  // Borrow heavily from b out of turn...
  int item = -1;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(sched.TryPopTenant("b", &item));
  // ...then let DRR serve: counting b's borrowed 100, totals even out.
  std::map<std::string, int> served{{"a", 0}, {"b", 100}};
  for (int i = 0; i < 300; ++i) {
    std::string tenant;
    ASSERT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
    ++served[tenant];
  }
  const double ratio = static_cast<double>(served["a"]) / served["b"];
  EXPECT_GT(ratio, 0.75) << "a=" << served["a"] << " b=" << served["b"];
  EXPECT_LT(ratio, 1.25) << "a=" << served["a"] << " b=" << served["b"];
}

TEST(FairSchedulerTest, WaitPopBlocksUntilSubmit) {
  Sched sched(Opts(0, 8));
  sched.SetWeight("default", 1.0);
  int item = -1;
  std::string tenant;
  std::thread producer([&sched] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sched.Submit("default", 42, 1);
  });
  EXPECT_EQ(sched.WaitPop(&item, &tenant), PopResult::kItem);
  EXPECT_EQ(item, 42);
  producer.join();
}

}  // namespace
}  // namespace sweetknn::serve
