// Multi-tenant KnnService: index lifecycle, per-tenant isolation (bit-
// identical to a dedicated single-tenant service), deadlines, the
// admission bound, the queue-depth gauge regression, and the
// GraphBuildParams::workers plumbing regression.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "ann/knn_graph.h"
#include "common/metrics.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;

serve::ServiceConfig FastConfig() {
  serve::ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 16;
  config.max_batch_wait = std::chrono::microseconds(200);
  config.auto_compact = false;
  return config;
}

/// Parks the dispatcher thread inside the pre-dispatch hook: after
/// Block(), the next request it dequeues stalls until Release(), holding
/// every later submission at a known queue depth.
class DispatcherGate {
  /// Shared with the installed hook, so a hook copy the dispatcher took
  /// before the gate went out of scope can still run safely.
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool blocked = false;
    int entered = 0;
  };

 public:
  explicit DispatcherGate(serve::KnnService* service)
      : state_(std::make_shared<State>()) {
    std::shared_ptr<State> state = state_;
    service->SetPreDispatchHookForTest([state] {
      std::unique_lock<std::mutex> lock(state->mutex);
      ++state->entered;
      state->cv.wait(lock, [&state] { return !state->blocked; });
    });
  }

  void Block() {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->blocked = true;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      state_->blocked = false;
    }
    state_->cv.notify_all();
  }

  /// Waits until the dispatcher has entered the hook `n` times (i.e. is
  /// parked on its n-th batch). False on a 10 s timeout.
  bool AwaitEntered(int n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(state_->mutex);
        if (state_->entered >= n) return true;
      }
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

 private:
  std::shared_ptr<State> state_;
};

double GaugeFromText(const std::string& text, const std::string& name) {
  common::MetricsRegistry parsed;
  const Status status = common::ParseMetricsPrometheusText(text, &parsed);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return parsed.GetGauge(name, "")->value();
}

double CounterFromText(const std::string& text, const std::string& name,
                       const std::string& labels) {
  common::MetricsRegistry parsed;
  const Status status = common::ParseMetricsPrometheusText(text, &parsed);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return parsed.GetCounter(name, labels, "")->value();
}

TEST(MultiTenantTest, IndexLifecycle) {
  const HostMatrix base = ClusteredPoints(120, 5, 3, 901);
  const HostMatrix faces = ClusteredPoints(90, 5, 3, 902);
  serve::KnnService service(base, FastConfig());

  EXPECT_EQ(service.ListIndexes(),
            std::vector<std::string>{serve::kDefaultTenant});

  ASSERT_TRUE(service.CreateIndex("faces", faces, 4.0).ok());
  const std::vector<std::string> both = {"default", "faces"};
  EXPECT_EQ(service.ListIndexes(), both);

  // Duplicates, malformed names, empty targets.
  EXPECT_EQ(service.CreateIndex("faces", faces).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.CreateIndex("", faces).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.CreateIndex("bad/name", faces).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.CreateIndex("ok-name", HostMatrix()).code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(service.SetIndexWeight("faces", 2.0).ok());
  EXPECT_EQ(service.SetIndexWeight("missing", 2.0).code(),
            StatusCode::kNotFound);

  // The default index is permanent; unknown names are NotFound.
  EXPECT_EQ(service.DropIndex("default").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(service.DropIndex("missing").ok());

  ASSERT_TRUE(service.DropIndex("faces").ok());
  EXPECT_EQ(service.ListIndexes(),
            std::vector<std::string>{serve::kDefaultTenant});

  serve::CallOptions on_faces;
  on_faces.tenant = "faces";
  const std::vector<float> probe(service.dims(), 0.0f);
  EXPECT_EQ(service.Search(on_faces, probe, 3).status().code(),
            StatusCode::kNotFound);
}

TEST(MultiTenantTest, NamedTenantBitIdenticalToDedicatedService) {
  const HostMatrix base = ClusteredPoints(240, 6, 4, 911);
  const HostMatrix faces = ClusteredPoints(180, 6, 4, 912);
  const HostMatrix queries = ClusteredPoints(24, 6, 2, 913);
  constexpr int kNeighbors = 5;

  serve::KnnService dedicated(faces, FastConfig());
  const KnnResult reference =
      dedicated.JoinBatch(queries, kNeighbors).value();

  serve::KnnService service(base, FastConfig());
  ASSERT_TRUE(service.CreateIndex("faces", faces).ok());
  serve::CallOptions on_faces;
  on_faces.tenant = "faces";
  const KnnResult answer =
      service.JoinBatch(on_faces, queries, kNeighbors).value();

  ASSERT_EQ(answer.num_queries(), reference.num_queries());
  for (size_t q = 0; q < reference.num_queries(); ++q) {
    for (int i = 0; i < kNeighbors; ++i) {
      ASSERT_EQ(reference.row(q)[i].index, answer.row(q)[i].index)
          << "query " << q << " rank " << i;
      ASSERT_EQ(reference.row(q)[i].distance, answer.row(q)[i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(MultiTenantTest, MutationsAreTenantIsolated) {
  const HostMatrix base = ClusteredPoints(100, 4, 3, 921);
  const HostMatrix other = ClusteredPoints(80, 4, 3, 922);
  serve::KnnService service(base, FastConfig());
  ASSERT_TRUE(service.CreateIndex("other", other).ok());

  const std::vector<float> probe(4, 0.25f);
  const std::vector<Neighbor> before = service.Search(probe, 3).value();

  serve::CallOptions on_other;
  on_other.tenant = "other";
  // Ids are allocated per tenant: a fresh tenant with 80 rows hands out
  // 80 next, independent of the default tenant's allocator.
  const Result<uint32_t> id =
      service.Insert(on_other, std::vector<float>(4, 0.5f));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 80u);
  ASSERT_TRUE(service.Remove(on_other, 0).value());

  EXPECT_EQ(service.target_rows(), 100u);
  EXPECT_EQ(service.target_rows("other").value(), 80u);  // +1 -1

  // The default tenant's answers are untouched by the other tenant's
  // mutations (and its cache epoch bumps).
  const std::vector<Neighbor> after = service.Search(probe, 3).value();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].index, after[i].index);
    EXPECT_EQ(before[i].distance, after[i].distance);
  }
}

TEST(MultiTenantTest, QueuedRequestsOfADroppedTenantFailNotFound) {
  const HostMatrix base = ClusteredPoints(100, 4, 3, 931);
  const HostMatrix doomed = ClusteredPoints(60, 4, 3, 932);
  serve::KnnService service(base, FastConfig());
  DispatcherGate gate(&service);
  ASSERT_TRUE(service.CreateIndex("doomed", doomed).ok());

  gate.Block();
  // Sentinel: parks the dispatcher inside the hook.
  auto sentinel = std::async(std::launch::async, [&] {
    return service.Search(std::vector<float>(4, 0.0f), 2);
  });
  ASSERT_TRUE(gate.AwaitEntered(1));

  serve::CallOptions on_doomed;
  on_doomed.tenant = "doomed";
  auto queued = std::async(std::launch::async, [&] {
    return service.Search(on_doomed, std::vector<float>(4, 0.1f), 2);
  });
  // Wait for admission (sentinel + this one).
  while (service.stats().requests < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ASSERT_TRUE(service.DropIndex("doomed").ok());
  gate.Release();

  EXPECT_TRUE(sentinel.get().ok());
  const auto result = queued.get();
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(MultiTenantTest, DeadlineExpiresInTheQueue) {
  const HostMatrix base = ClusteredPoints(100, 4, 3, 941);
  serve::KnnService service(base, FastConfig());
  DispatcherGate gate(&service);

  gate.Block();
  auto sentinel = std::async(std::launch::async, [&] {
    return service.Search(std::vector<float>(4, 0.0f), 2);
  });
  ASSERT_TRUE(gate.AwaitEntered(1));

  serve::CallOptions hurried;
  hurried.timeout = std::chrono::microseconds(2000);
  auto doomed = std::async(std::launch::async, [&] {
    return service.Search(hurried, std::vector<float>(4, 0.1f), 2);
  });
  while (service.stats().requests < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.Release();

  EXPECT_TRUE(sentinel.get().ok());
  const auto result = doomed.get();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);

  // A roomy deadline is honored like no deadline at all.
  serve::CallOptions relaxed;
  relaxed.timeout = std::chrono::seconds(30);
  EXPECT_TRUE(service.Search(relaxed, std::vector<float>(4, 0.2f), 2).ok());
}

TEST(MultiTenantTest, ShedsBeyondMaxQueueDepth) {
  const HostMatrix base = ClusteredPoints(100, 4, 3, 951);
  serve::ServiceConfig config = FastConfig();
  config.max_queue_depth = 2;
  serve::KnnService service(base, config);
  DispatcherGate gate(&service);

  gate.Block();
  auto sentinel = std::async(std::launch::async, [&] {
    return service.Search(std::vector<float>(4, 0.0f), 2);
  });
  ASSERT_TRUE(gate.AwaitEntered(1));

  std::vector<std::future<Result<std::vector<Neighbor>>>> admitted;
  for (int i = 0; i < 2; ++i) {
    admitted.push_back(std::async(std::launch::async, [&, i] {
      return service.Search(std::vector<float>(4, 0.1f * (i + 1)), 2);
    }));
  }
  while (service.stats().requests < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The queue is at its bound: the next call sheds without blocking.
  const auto shed = service.Search(std::vector<float>(4, 0.9f), 2);
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("shed"), std::string::npos)
      << shed.status().ToString();
  EXPECT_EQ(service.stats().shed_requests, 1u);

  gate.Release();
  EXPECT_TRUE(sentinel.get().ok());
  for (auto& f : admitted) EXPECT_TRUE(f.get().ok());

  // Sheds are counted but never admitted.
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.shed_requests, 1u);
  const std::string text = service.ExportMetricsText();
  EXPECT_EQ(CounterFromText(text, "sweetknn_shed_requests_total", ""), 1.0);
}

// Regression (the dueling-Set bug): the queue-depth gauge used to be
// written from both the submit and the dispatch path, so two racing
// writers could publish a stale depth that stuck. It is now computed
// from the live scheduler at export time only — with the dispatcher
// parked and 8 requests queued, every export must read exactly 8.
TEST(MultiTenantTest, QueueDepthGaugeIsComputedAtExportTime) {
  const HostMatrix base = ClusteredPoints(100, 4, 3, 961);
  serve::KnnService service(base, FastConfig());
  DispatcherGate gate(&service);

  gate.Block();
  auto sentinel = std::async(std::launch::async, [&] {
    return service.Search(std::vector<float>(4, 0.0f), 2);
  });
  ASSERT_TRUE(gate.AwaitEntered(1));

  constexpr int kQueued = 8;
  std::vector<std::future<Result<std::vector<Neighbor>>>> queued;
  for (int i = 0; i < kQueued; ++i) {
    queued.push_back(std::async(std::launch::async, [&, i] {
      return service.Search(std::vector<float>(4, 0.05f * (i + 1)), 2);
    }));
  }
  while (service.stats().requests < 1 + kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(GaugeFromText(service.ExportMetricsText(),
                            "sweetknn_queue_depth"),
              static_cast<double>(kQueued))
        << "export round " << round;
  }
  EXPECT_GE(GaugeFromText(service.ExportMetricsText(),
                          "sweetknn_peak_queue_depth"),
            static_cast<double>(kQueued));

  gate.Release();
  EXPECT_TRUE(sentinel.get().ok());
  for (auto& f : queued) EXPECT_TRUE(f.get().ok());

  // Drained: the gauge follows the live scheduler back to zero.
  EXPECT_EQ(GaugeFromText(service.ExportMetricsText(),
                          "sweetknn_queue_depth"),
            0.0);
}

// Regression (satellite: workers plumbing): GraphBuildParams::workers
// was never filled from the service config, so every graph build
// silently fell back to the SWEETKNN_SIM_THREADS environment default.
// With ann_params.workers unset, builds must now resolve to
// options.sim_threads — at construction AND at compaction rebuilds.
TEST(MultiTenantTest, GraphBuildWorkersFollowServiceConfig) {
  constexpr int kConfiguredThreads = 3;
  std::mutex mutex;
  std::vector<int> observed;
  ann::SetGraphBuildObserverForTest([&](int workers) {
    std::lock_guard<std::mutex> lock(mutex);
    observed.push_back(workers);
  });

  const HostMatrix base = ClusteredPoints(120, 4, 3, 971);
  serve::ServiceConfig config = FastConfig();
  config.enable_ann = true;
  config.ann_params.workers = 0;  // unset: must inherit sim_threads
  config.options.sim_threads = kConfiguredThreads;
  {
    serve::KnnService service(base, config);
    {
      std::lock_guard<std::mutex> lock(mutex);
      ASSERT_EQ(observed.size(),
                static_cast<size_t>(config.num_shards));
      for (const int workers : observed) {
        EXPECT_EQ(workers, kConfiguredThreads);
      }
      observed.clear();
    }

    // Compaction rebuilds the graph with the shard's resolved params,
    // not a fresh (unset) copy of the config.
    ASSERT_TRUE(service.Insert(std::vector<float>(4, 0.5f)).ok());
    ASSERT_TRUE(service.Remove(0).value());
    ASSERT_TRUE(service.CompactAll().ok());
    {
      std::lock_guard<std::mutex> lock(mutex);
      ASSERT_GE(observed.size(), 1u);
      for (const int workers : observed) {
        EXPECT_EQ(workers, kConfiguredThreads);
      }
    }
  }
  ann::SetGraphBuildObserverForTest(nullptr);
}

TEST(MultiTenantTest, PerTenantMetricSeries) {
  const HostMatrix base = ClusteredPoints(100, 4, 3, 981);
  const HostMatrix faces = ClusteredPoints(80, 4, 3, 982);
  serve::KnnService service(base, FastConfig());
  ASSERT_TRUE(service.CreateIndex("faces", faces).ok());

  serve::CallOptions on_faces;
  on_faces.tenant = "faces";
  ASSERT_TRUE(service.Search(std::vector<float>(4, 0.0f), 2).ok());
  ASSERT_TRUE(service.Search(on_faces, std::vector<float>(4, 0.0f), 2).ok());
  ASSERT_TRUE(service.Search(on_faces, std::vector<float>(4, 0.3f), 2).ok());

  const std::string text = service.ExportMetricsText();
  EXPECT_EQ(CounterFromText(text, "sweetknn_tenant_requests_total",
                            common::TenantLabel("default")),
            1.0);
  EXPECT_EQ(CounterFromText(text, "sweetknn_tenant_requests_total",
                            common::TenantLabel("faces")),
            2.0);
  EXPECT_EQ(GaugeFromText(text, "sweetknn_tenants"), 2.0);
}

}  // namespace
}  // namespace sweetknn
