// Regression suite for the stale-cache-insert race around SwapIndex.
//
// A cache-miss Search computes its answer against index generation G,
// then inserts it into the result cache. If a SwapIndex completes in
// between, the insert used to land in the freshly cleared cache and the
// pre-swap answer was served forever after. Inserts are now tagged with
// the generation captured before the query ran and dropped when it no
// longer matches (stats().cache_stale_drops). The deterministic test
// forces the interleaving with the pre-insert test hook; the storm
// variant hunts the same bug (and data races, under TSan) with free
//-running swappers. Runs under TSan via tools/check_tsan.sh.

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"

namespace sweetknn::serve {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

HostMatrix RandomMatrix(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  HostMatrix m(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) {
      m.at(i, j) = static_cast<float>(rng.NextDouble() * 10.0 - 5.0);
    }
  }
  return m;
}

TEST(SwapStalenessTest, InsertRacingSwapIsDroppedNotServed) {
  const HostMatrix a = RandomMatrix(130, 4, 20);
  const HostMatrix b = RandomMatrix(130, 4, 21);
  const std::string dir_b = TempDir("stale_b");
  constexpr int kNeighbors = 4;

  ServiceConfig config;
  config.num_shards = 2;
  config.cache_capacity = 32;
  {
    KnnService builder(b, config);
    ASSERT_TRUE(builder.SaveSnapshots(dir_b).ok());
  }
  KnnService reference_b(b, config);
  KnnService live(a, config);

  const std::vector<float> point(a.row(3), a.row(3) + a.cols());
  const std::vector<Neighbor> expected_b =
      reference_b.Search(point, kNeighbors).value();

  // Force the race deterministically: the first cache-miss Search
  // computes its answer against generation A, and right before it can
  // insert, a full SwapIndex to generation B completes (cache cleared,
  // generation bumped). The stale answer must be dropped, not cached.
  std::atomic<int> swaps_fired{0};
  live.SetPreCacheInsertHookForTest([&] {
    if (swaps_fired.fetch_add(1) == 0) {
      ASSERT_TRUE(live.SwapIndex(dir_b).ok());
    }
  });
  const std::vector<Neighbor> raced = live.Search(point, kNeighbors).value();
  EXPECT_NE(raced, expected_b);  // computed against generation A
  EXPECT_EQ(live.stats().cache_stale_drops, 1u);

  // The poisoned insert never landed: the same Search now answers from
  // generation B (recomputed, then cached and served from cache).
  const std::vector<Neighbor> after = live.Search(point, kNeighbors).value();
  EXPECT_EQ(after, expected_b);
  const std::vector<Neighbor> cached = live.Search(point, kNeighbors).value();
  EXPECT_EQ(cached, expected_b);
  EXPECT_GT(live.stats().cache_hits, 0u);
  EXPECT_EQ(live.stats().cache_stale_drops, 1u);

  std::filesystem::remove_all(dir_b);
}

TEST(SwapStalenessTest, SearchersRacingSwappersNeverSeeForeignAnswers) {
  const HostMatrix a = RandomMatrix(110, 3, 22);
  const HostMatrix b = RandomMatrix(110, 3, 23);
  const std::string dir_a = TempDir("storm_a");
  const std::string dir_b = TempDir("storm_b");
  constexpr int kNeighbors = 3;
  constexpr size_t kPoints = 6;

  ServiceConfig config;
  config.num_shards = 2;
  config.cache_capacity = 16;
  std::vector<std::vector<Neighbor>> expected_a(kPoints);
  std::vector<std::vector<Neighbor>> expected_b(kPoints);
  std::vector<std::vector<float>> points;
  for (size_t i = 0; i < kPoints; ++i) {
    points.emplace_back(a.row(i * 7), a.row(i * 7) + a.cols());
  }
  {
    KnnService sa(a, config);
    ASSERT_TRUE(sa.SaveSnapshots(dir_a).ok());
    KnnService sb(b, config);
    ASSERT_TRUE(sb.SaveSnapshots(dir_b).ok());
    for (size_t i = 0; i < kPoints; ++i) {
      expected_a[i] = sa.Search(points[i], kNeighbors).value();
      expected_b[i] = sb.Search(points[i], kNeighbors).value();
      ASSERT_NE(expected_a[i], expected_b[i]) << "degenerate fixture";
    }
  }

  KnnService live(a, config);
  std::atomic<int> foreign{0};
  std::vector<std::thread> searchers;
  std::atomic<bool> stop{false};
  for (int c = 0; c < 4; ++c) {
    searchers.emplace_back([&, c] {
      size_t i = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_acquire)) {
        i = (i + 1) % kPoints;
        const std::vector<Neighbor> got =
            live.Search(points[i], kNeighbors).value();
        // Cached or computed, an answer is always exactly one
        // generation's — a stale insert surviving a swap shows up here
        // as a generation-A answer long after the last swap to B.
        if (got != expected_a[i] && got != expected_b[i]) {
          foreign.fetch_add(1);
        }
      }
    });
  }
  constexpr int kSwaps = 8;
  for (int s = 0; s < kSwaps; ++s) {
    ASSERT_TRUE(live.SwapIndex(s % 2 == 0 ? dir_b : dir_a).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : searchers) t.join();
  EXPECT_EQ(foreign.load(), 0);

  // The index has been on generation A since the final swap and every
  // searcher has stopped: whatever the cache now holds must serve
  // generation-A answers.
  for (size_t i = 0; i < kPoints; ++i) {
    EXPECT_EQ(live.Search(points[i], kNeighbors).value(), expected_a[i]) << i;
  }
  EXPECT_EQ(live.stats().index_swaps, static_cast<uint64_t>(kSwaps));

  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

}  // namespace
}  // namespace sweetknn::serve
