// Concurrency hardening for the mutable serving layer: clients, mutators,
// forced compactions, and hot swaps all race, and the service must never
// lose a mutation, never serve an answer mixing two index generations,
// and never resurrect a stale cache entry. Runs under TSan via
// tools/check_tsan.sh (the lock-order and epoch protocols in
// knn_service.h are exactly what this suite stresses).

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baseline/brute_force_cpu.h"
#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"

namespace sweetknn::serve {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Points uniform in [lo, lo + 1)^dims.
HostMatrix UniformBand(size_t n, size_t dims, uint64_t seed, float lo) {
  Rng rng(seed);
  HostMatrix m(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) {
      m.at(i, j) = lo + rng.NextFloat();
    }
  }
  return m;
}

/// Structural sanity of one answer row: distances ascend, padding only
/// at the tail.
void CheckRowShape(const std::vector<Neighbor>& row) {
  bool padded = false;
  float prev = -1.0f;
  for (const Neighbor& n : row) {
    if (n.index == kInvalidNeighbor) {
      padded = true;
      continue;
    }
    ASSERT_FALSE(padded) << "live neighbor after padding";
    ASSERT_GE(n.distance, prev);
    prev = n.distance;
  }
}

// ---------------------------------------------------------------------------
// Lost-mutation + compaction races
// ---------------------------------------------------------------------------

// Clients, mutators, and forced compactions race; afterwards every
// surviving insert is findable at distance zero, every remove stays
// removed, and the whole service answers bit-identically to a cold
// service over the final live set.
TEST(CompactionRaceTest, MutationsSurviveConcurrentCompactions) {
  constexpr size_t kDims = 4;
  constexpr size_t kInitial = 96;
  const HostMatrix target = UniformBand(kInitial, kDims, 11, 0.0f);

  ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 8;
  config.max_batch_wait = std::chrono::microseconds(150);
  config.cache_capacity = 16;
  config.compact_delta_fraction = 0.05;  // compact eagerly
  config.auto_compact = true;
  KnnService service(target, config);

  constexpr int kMutators = 2;
  constexpr int kOpsPerMutator = 60;
  // Each mutator logs its own inserts/removes; ids are never shared
  // across threads, so the union of the logs is the exact final state.
  std::vector<std::vector<std::pair<uint32_t, std::vector<float>>>>
      inserted(kMutators);
  std::vector<std::vector<uint32_t>> removed(kMutators);

  std::atomic<bool> stop{false};
  std::vector<std::thread> finite;  // joined first
  std::vector<std::thread> pollers;  // loop until `stop`
  for (int t = 0; t < kMutators; ++t) {
    finite.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int op = 0; op < kOpsPerMutator; ++op) {
        if (!inserted[t].empty() && rng.NextBounded(3) == 0) {
          // Remove one of our own earlier inserts (each id at most once).
          const size_t pick = rng.NextBounded(inserted[t].size());
          const uint32_t id = inserted[t][pick].first;
          bool already = false;
          for (uint32_t r : removed[t]) already |= (r == id);
          if (!already) {
            const Result<bool> ok = service.Remove(id);
            ASSERT_TRUE(ok.ok());
            ASSERT_TRUE(ok.value()) << "live id " << id << " not found";
            removed[t].push_back(id);
          }
        } else {
          // A point unique to this insert, far from everything else, so
          // the post-quiesce probe can demand distance exactly zero.
          std::vector<float> point(kDims, 0.0f);
          point[0] = 100.0f + static_cast<float>(t);
          point[1] = static_cast<float>(op);
          const Result<uint32_t> id = service.Insert(point);
          ASSERT_TRUE(id.ok());
          inserted[t].push_back({id.value(), point});
        }
      }
    });
  }
  // Query threads: structural checks only (the index mutates under us).
  for (int t = 0; t < 2; ++t) {
    pollers.emplace_back([&, t] {
      Rng rng(2000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<float> q(kDims);
        for (float& x : q) x = rng.NextFloat();
        const Result<std::vector<Neighbor>> answer =
            service.Search(q, 1 + static_cast<int>(rng.NextBounded(6)));
        ASSERT_TRUE(answer.ok());
        CheckRowShape(answer.value());
      }
    });
  }
  // Forced compactions race the background compactor and the mutators.
  finite.emplace_back([&] {
    for (int i = 0; i < 24; ++i) {
      const Status status = service.CompactShard(i % config.num_shards);
      ASSERT_TRUE(status.ok() || status.code() == StatusCode::kUnavailable)
          << status.ToString();
    }
  });
  // Observability must be safe to scrape mid-storm.
  finite.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      (void)service.stats();
      (void)service.ExportMetricsJson();
    }
  });

  for (std::thread& t : finite) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pollers) t.join();

  // Quiesce: fold everything, then verify no mutation was lost.
  Status compacted = service.CompactAll();
  if (!compacted.ok()) compacted = service.CompactAll();  // abort retry
  ASSERT_TRUE(compacted.ok()) << compacted.ToString();

  std::map<uint32_t, std::vector<float>> survivors;
  for (int t = 0; t < kMutators; ++t) {
    for (const auto& [id, point] : inserted[t]) survivors[id] = point;
    for (uint32_t id : removed[t]) survivors.erase(id);
  }
  EXPECT_EQ(service.target_rows(), kInitial + survivors.size());
  for (const auto& [id, point] : survivors) {
    const Result<std::vector<Neighbor>> probe = service.Search(point, 1);
    ASSERT_TRUE(probe.ok());
    ASSERT_EQ(probe.value()[0].index, id) << "insert " << id << " lost";
    ASSERT_EQ(probe.value()[0].distance, 0.0f);
  }
  for (int t = 0; t < kMutators; ++t) {
    for (uint32_t id : removed[t]) {
      std::vector<float> point;
      for (const auto& [iid, p] : inserted[t]) {
        if (iid == id) point = p;
      }
      const Result<std::vector<Neighbor>> probe = service.Search(point, 3);
      ASSERT_TRUE(probe.ok());
      for (const Neighbor& n : probe.value()) {
        ASSERT_NE(n.index, id) << "removed id " << id << " resurrected";
      }
    }
  }

  // Full differential: bit-identical to a cold service over the final
  // live set in ascending stable-id order.
  HostMatrix live(kInitial + survivors.size(), kDims);
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < kInitial; ++i) {
    std::memcpy(live.mutable_row(i), target.row(i), kDims * sizeof(float));
    ids.push_back(static_cast<uint32_t>(i));
  }
  size_t row = kInitial;
  for (const auto& [id, point] : survivors) {
    std::memcpy(live.mutable_row(row++), point.data(),
                kDims * sizeof(float));
    ids.push_back(id);
  }
  ServiceConfig cold_config = config;
  cold_config.auto_compact = false;
  KnnService cold(live, cold_config);
  const HostMatrix queries = UniformBand(12, kDims, 99, 0.0f);
  constexpr int kK = 5;
  const KnnResult got = service.JoinBatch(queries, kK).value();
  KnnResult want = cold.JoinBatch(queries, kK).value();
  for (size_t q = 0; q < want.num_queries(); ++q) {
    Neighbor* r = want.mutable_row(q);
    for (int i = 0; i < kK; ++i) {
      if (r[i].index != kInvalidNeighbor) r[i].index = ids[r[i].index];
    }
  }
  for (size_t q = 0; q < want.num_queries(); ++q) {
    ASSERT_EQ(std::memcmp(want.row(q), got.row(q), kK * sizeof(Neighbor)),
              0)
        << "mutated service diverged from cold rebuild at query " << q;
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.delta_points, 0u);  // CompactAll drained the overlays
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_GE(stats.compactions, 1u);
}

// ---------------------------------------------------------------------------
// Swap vs compaction vs clients: generation isolation
// ---------------------------------------------------------------------------

// Two snapshot generations with disjoint coordinate bands — A (with its
// own overlay) lives in [0,2)^d, B in [10,12)^d — are hot-swapped back
// and forth while clients query and a compactor forces rebuilds. Every
// answer must come entirely from one generation: near-band and far-band
// distances never mix within a row. A compaction whose shard was swapped
// away must abort cleanly (counted, not installed).
TEST(CompactionRaceTest, SwapsNeverMixGenerationsWithCompactionsInFlight) {
  constexpr size_t kDims = 3;
  ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 8;
  config.max_batch_wait = std::chrono::microseconds(150);
  config.compact_delta_fraction = 0.5;
  config.auto_compact = false;  // compactions forced explicitly below

  // Generation A: base + a mutation overlay (so swaps also adopt and
  // replace pending overlays wholesale).
  const std::string dir_a = TempDir("race_gen_a");
  {
    KnnService a(UniformBand(60, kDims, 21, 0.0f), config);
    for (int i = 0; i < 12; ++i) {
      std::vector<float> p(kDims, 1.5f);
      p[0] = 1.0f + 0.01f * static_cast<float>(i);
      ASSERT_TRUE(a.Insert(p).ok());
    }
    ASSERT_TRUE(a.Remove(3).value());
    ASSERT_TRUE(a.Remove(33).value());
    ASSERT_TRUE(a.SaveSnapshots(dir_a).ok());
  }
  // Generation B: far band, pristine.
  const std::string dir_b = TempDir("race_gen_b");
  {
    KnnService b(UniformBand(60, kDims, 22, 10.0f), config);
    ASSERT_TRUE(b.SaveSnapshots(dir_b).ok());
  }

  Result<std::unique_ptr<KnnService>> adopted =
      KnnService::FromSnapshots(dir_a, config);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  KnnService& live = *adopted.value();

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(3000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<float> q(kDims);
        for (float& x : q) x = rng.NextFloat();  // near band A
        const Result<std::vector<Neighbor>> answer = live.Search(q, 4);
        ASSERT_TRUE(answer.ok());
        // Band A points are within ~4 of the query; band B at least ~14.
        bool near = false;
        bool far = false;
        for (const Neighbor& n : answer.value()) {
          if (n.index == kInvalidNeighbor) continue;
          (n.distance < 7.0f ? near : far) = true;
        }
        ASSERT_FALSE(near && far) << "answer mixed two generations";
      }
    });
  }
  std::thread compactor([&] {
    Rng rng(4000);
    while (!stop.load(std::memory_order_acquire)) {
      const Status status = live.CompactShard(
          static_cast<int>(rng.NextBounded(config.num_shards)));
      ASSERT_TRUE(status.ok() || status.code() == StatusCode::kUnavailable)
          << status.ToString();
    }
  });

  constexpr int kSwaps = 8;
  for (int swap = 0; swap < kSwaps; ++swap) {
    ASSERT_TRUE(live.SwapIndex(swap % 2 == 0 ? dir_b : dir_a).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  compactor.join();

  // Final generation is A (kSwaps even): its answers must be exact for
  // the adopted overlay's live set — nothing the concurrent compactions
  // did may have leaked across the swaps.
  std::map<uint32_t, std::vector<float>> model;
  {
    const HostMatrix base = UniformBand(60, kDims, 21, 0.0f);
    for (size_t i = 0; i < base.rows(); ++i) {
      model[static_cast<uint32_t>(i)] = std::vector<float>(
          base.row(i), base.row(i) + kDims);
    }
    for (int i = 0; i < 12; ++i) {
      std::vector<float> p(kDims, 1.5f);
      p[0] = 1.0f + 0.01f * static_cast<float>(i);
      model[static_cast<uint32_t>(60 + i)] = p;
    }
    model.erase(3);
    model.erase(33);
  }
  EXPECT_EQ(live.target_rows(), model.size());
  HostMatrix points(model.size(), kDims);
  std::vector<uint32_t> ids;
  size_t row = 0;
  for (const auto& [id, p] : model) {
    std::memcpy(points.mutable_row(row++), p.data(), kDims * sizeof(float));
    ids.push_back(id);
  }
  const HostMatrix queries = UniformBand(10, kDims, 77, 0.0f);
  constexpr int kK = 6;
  KnnResult want = baseline::BruteForceCpu(queries, points, kK);
  for (size_t q = 0; q < want.num_queries(); ++q) {
    Neighbor* r = want.mutable_row(q);
    for (int i = 0; i < kK; ++i) {
      if (r[i].index != kInvalidNeighbor) r[i].index = ids[r[i].index];
    }
  }
  const KnnResult got = live.JoinBatch(queries, kK).value();
  for (size_t q = 0; q < want.num_queries(); ++q) {
    for (int i = 0; i < kK; ++i) {
      ASSERT_EQ(want.row(q)[i].index, got.row(q)[i].index)
          << "query " << q << " rank " << i;
      ASSERT_EQ(want.row(q)[i].distance, got.row(q)[i].distance)
          << "query " << q << " rank " << i;
    }
  }

  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

// ---------------------------------------------------------------------------
// Cache staleness under mutation
// ---------------------------------------------------------------------------

// The swap-staleness suite proves the cache guard for SwapIndex; this is
// the same interleaving for a mutation: an Insert that completes after a
// Search computed its answer (but before the cache insert) must poison
// that cache entry, or the service would keep serving the pre-insert
// neighbor forever.
TEST(CompactionRaceTest, MutationBetweenComputeAndCacheInsertIsNotCached) {
  constexpr size_t kDims = 2;
  HostMatrix target(2, kDims);
  target.at(0, 0) = 5.0f;
  target.at(0, 1) = 0.0f;
  target.at(1, 0) = -5.0f;
  target.at(1, 1) = 0.0f;

  ServiceConfig config;
  config.num_shards = 1;
  config.cache_capacity = 4;
  config.auto_compact = false;
  KnnService service(target, config);

  const std::vector<float> query = {0.0f, 1.0f};
  std::atomic<bool> fired{false};
  service.SetPreCacheInsertHookForTest([&] {
    if (fired.exchange(true)) return;
    // Lands exactly between the answer computation and the cache
    // insert: a point right at the query.
    ASSERT_TRUE(service.Insert(query).ok());
  });

  const Result<std::vector<Neighbor>> first = service.Search(query, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value()[0].index, 0u);  // pre-insert nearest

  // If the stale answer had been cached, this would return id 0 again.
  const Result<std::vector<Neighbor>> second = service.Search(query, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value()[0].index, 2u);
  EXPECT_EQ(second.value()[0].distance, 0.0f);
  EXPECT_GE(service.stats().cache_stale_drops, 1u);
}

}  // namespace
}  // namespace sweetknn::serve
