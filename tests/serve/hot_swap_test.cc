// Warm start and hot swap of KnnService index generations.
//
// The load-bearing claims: a warm-started service answers bit-identically
// to a cold-built one; SwapIndex under concurrent clients never drops a
// request and never serves an answer mixing two index generations; and a
// failed swap leaves the live index untouched. Runs under TSan via
// tools/check_tsan.sh.

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "store/snapshot.h"

namespace sweetknn::serve {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

HostMatrix RandomMatrix(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  HostMatrix m(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) {
      m.at(i, j) = static_cast<float>(rng.NextDouble() * 10.0 - 5.0);
    }
  }
  return m;
}

bool SameResult(const KnnResult& a, const KnnResult& b) {
  if (a.num_queries() != b.num_queries() || a.k() != b.k()) return false;
  for (size_t q = 0; q < a.num_queries(); ++q) {
    if (std::memcmp(a.row(q), b.row(q),
                    static_cast<size_t>(a.k()) * sizeof(Neighbor)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(HotSwapTest, WarmStartMatchesColdBitwise) {
  const HostMatrix target = RandomMatrix(180, 6, 1);
  const HostMatrix queries = RandomMatrix(25, 6, 2);
  const std::string dir = TempDir("warm_vs_cold");

  ServiceConfig config;
  config.num_shards = 3;
  KnnService cold(target, config);
  ASSERT_TRUE(cold.SaveSnapshots(dir).ok());
  EXPECT_EQ(cold.stats().warm_started_shards, 0u);

  config.snapshot_dir = dir;
  KnnService warm(target, config);
  EXPECT_EQ(warm.stats().warm_started_shards, 3u);
  EXPECT_EQ(warm.target_rows(), cold.target_rows());

  for (const int k : {1, 7}) {
    const KnnResult a = cold.JoinBatch(queries, k).value();
    const KnnResult b = warm.JoinBatch(queries, k).value();
    EXPECT_TRUE(SameResult(a, b)) << "k=" << k;
  }
  std::filesystem::remove_all(dir);
}

TEST(HotSwapTest, CorruptSnapshotsFallBackToColdBuild) {
  const HostMatrix target = RandomMatrix(90, 4, 3);
  const std::string dir = TempDir("fallback");

  ServiceConfig config;
  config.num_shards = 2;
  {
    KnnService builder(target, config);
    ASSERT_TRUE(builder.SaveSnapshots(dir).ok());
  }
  // Flip one byte of shard 0: the service must notice and cold-build.
  const std::string victim = store::ShardSnapshotPath(dir, 0, 2);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(40);
    f.write(&byte, 1);
  }

  ServiceConfig warm_config = config;
  warm_config.snapshot_dir = dir;
  KnnService service(target, warm_config);
  EXPECT_EQ(service.stats().warm_started_shards, 0u);
  // Correctness is unaffected by the fallback.
  const HostMatrix queries = RandomMatrix(10, 4, 4);
  KnnService reference(target, config);
  EXPECT_TRUE(SameResult(service.JoinBatch(queries, 5).value(),
                         reference.JoinBatch(queries, 5).value()));
  std::filesystem::remove_all(dir);
}

TEST(HotSwapTest, SwapChangesGenerationAndFailedSwapDoesNot) {
  const HostMatrix a = RandomMatrix(150, 5, 5);
  const HostMatrix b = RandomMatrix(210, 5, 6);  // different row count too
  const HostMatrix queries = RandomMatrix(20, 5, 7);
  const int k = 6;
  const std::string dir_a = TempDir("gen_a");
  const std::string dir_b = TempDir("gen_b");
  const std::string dir_wrong = TempDir("gen_wrong");

  ServiceConfig config;
  config.num_shards = 2;
  KnnService service_b(b, config);
  ASSERT_TRUE(service_b.SaveSnapshots(dir_b).ok());
  const KnnResult expected_b = service_b.JoinBatch(queries, k).value();

  KnnService live(a, config);
  ASSERT_TRUE(live.SaveSnapshots(dir_a).ok());
  const KnnResult expected_a = live.JoinBatch(queries, k).value();
  ASSERT_FALSE(SameResult(expected_a, expected_b));

  // Failed swaps: missing directory, wrong shard count — the live index
  // keeps serving generation A.
  EXPECT_FALSE(live.SwapIndex("/nonexistent/snapshots").ok());
  {
    ServiceConfig wrong = config;
    wrong.num_shards = 3;
    KnnService three(b, wrong);
    ASSERT_TRUE(three.SaveSnapshots(dir_wrong).ok());
  }
  const Status wrong_count = live.SwapIndex(dir_wrong);
  ASSERT_FALSE(wrong_count.ok());
  EXPECT_NE(wrong_count.message().find("3 shard snapshots"),
            std::string::npos)
      << wrong_count.message();
  EXPECT_EQ(live.stats().index_swaps, 0u);
  EXPECT_TRUE(SameResult(live.JoinBatch(queries, k).value(), expected_a));

  // A real swap: answers flip to generation B, rows update, swap counted.
  ASSERT_TRUE(live.SwapIndex(dir_b).ok());
  EXPECT_EQ(live.stats().index_swaps, 1u);
  EXPECT_EQ(live.target_rows(), b.rows());
  EXPECT_TRUE(SameResult(live.JoinBatch(queries, k).value(), expected_b));

  // And back.
  ASSERT_TRUE(live.SwapIndex(dir_a).ok());
  EXPECT_TRUE(SameResult(live.JoinBatch(queries, k).value(), expected_a));
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
  std::filesystem::remove_all(dir_wrong);
}

TEST(HotSwapTest, SwapInvalidatesTheResultCache) {
  const HostMatrix a = RandomMatrix(120, 4, 8);
  const HostMatrix b = RandomMatrix(120, 4, 9);
  const std::string dir_b = TempDir("cache_b");

  ServiceConfig config;
  config.num_shards = 2;
  config.cache_capacity = 64;
  {
    KnnService service_b(b, config);
    ASSERT_TRUE(service_b.SaveSnapshots(dir_b).ok());
  }
  KnnService service_b2(b, config);
  KnnService live(a, config);

  const std::vector<float> point(a.row(5), a.row(5) + a.cols());
  const std::vector<Neighbor> before = live.Search(point, 4).value();
  EXPECT_EQ(live.Search(point, 4).value(), before);  // cache hit
  EXPECT_GT(live.stats().cache_hits, 0u);

  ASSERT_TRUE(live.SwapIndex(dir_b).ok());
  const std::vector<Neighbor> after = live.Search(point, 4).value();
  // The swap emptied the cache: the answer comes from generation B, not
  // from a stale cached generation-A entry.
  EXPECT_EQ(after, service_b2.Search(point, 4).value());
  std::filesystem::remove_all(dir_b);
}

TEST(HotSwapTest, ConcurrentClientsNeverSeeMixedGenerations) {
  const HostMatrix a = RandomMatrix(140, 5, 10);
  const HostMatrix b = RandomMatrix(140, 5, 11);
  const HostMatrix queries = RandomMatrix(12, 5, 12);
  const int k = 5;
  const std::string dir_a = TempDir("mix_a");
  const std::string dir_b = TempDir("mix_b");

  ServiceConfig config;
  config.num_shards = 2;
  KnnResult expected_a;
  KnnResult expected_b;
  {
    KnnService sa(a, config);
    ASSERT_TRUE(sa.SaveSnapshots(dir_a).ok());
    expected_a = sa.JoinBatch(queries, k).value();
    KnnService sb(b, config);
    ASSERT_TRUE(sb.SaveSnapshots(dir_b).ok());
    expected_b = sb.JoinBatch(queries, k).value();
  }
  ASSERT_FALSE(SameResult(expected_a, expected_b));

  KnnService live(a, config);
  std::atomic<int> mixed{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < 25; ++r) {
        const KnnResult got = live.JoinBatch(queries, k).value();
        served.fetch_add(1);
        // Every answer is entirely one generation — A or B, never a
        // row-wise mixture.
        if (!SameResult(got, expected_a) && !SameResult(got, expected_b)) {
          mixed.fetch_add(1);
        }
      }
    });
  }
  constexpr int kSwaps = 6;
  for (int swap = 0; swap < kSwaps; ++swap) {
    ASSERT_TRUE(live.SwapIndex(swap % 2 == 0 ? dir_b : dir_a).ok());
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mixed.load(), 0);
  EXPECT_EQ(served.load(), 100);
  EXPECT_EQ(live.stats().index_swaps, static_cast<uint64_t>(kSwaps));
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

}  // namespace
}  // namespace sweetknn::serve
