// Regression suite for the Submit-vs-Shutdown race.
//
// KnnService::Submit used to SK_CHECK that the service was still open,
// then Push into the admission queue — a client racing Shutdown() could
// pass the check and hit the closed queue, aborting the whole process.
// Now the closed queue is the single source of truth: a losing Submit
// returns Unavailable (counted in stats().rejected_requests) and every
// request admitted before the close still resolves with its answer.
// Runs under TSan via tools/check_tsan.sh.

#include <atomic>
#include <thread>
#include <vector>

#include "common/knn_result.h"
#include "common/matrix.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "test_util.h"

namespace sweetknn::serve {
namespace {

TEST(ShutdownStormTest, EveryRequestResolvesOrIsRejectedCleanly) {
  const HostMatrix target = sweetknn::testing::ClusteredPoints(160, 3, 3, 501);
  ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 8;
  KnnService service(target, config);

  // Producers hammer the service until they see a rejection; the main
  // thread closes it mid-storm. Every call must either carry a full
  // answer or a clean Unavailable — never abort, never hang.
  constexpr int kProducers = 6;
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      HostMatrix one(1, target.cols());
      for (size_t j = 0; j < target.cols(); ++j) {
        one.at(0, j) = target.at(static_cast<size_t>(p), j);
      }
      for (;;) {
        const Result<KnnResult> got = service.JoinBatch(one, 3);
        if (got.ok()) {
          EXPECT_EQ(got.value().num_queries(), 1u);
          EXPECT_EQ(got.value().k(), 3);
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
          rejected.fetch_add(1, std::memory_order_relaxed);
          return;  // the service is down; this producer is done
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Let the storm build before pulling the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Shutdown();
  for (std::thread& t : producers) t.join();

  // Every producer ran until its first rejection.
  EXPECT_EQ(rejected.load(), static_cast<uint64_t>(kProducers));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_requests, static_cast<uint64_t>(kProducers));
  EXPECT_EQ(stats.requests, answered.load());
  // Everything admitted was also served: nothing lost in the drain.
  EXPECT_EQ(stats.batched_queries, answered.load());
}

TEST(ShutdownStormTest, MixedSearchAndJoinBatchSurviveTheClose) {
  const HostMatrix target = sweetknn::testing::ClusteredPoints(120, 2, 3, 502);
  ServiceConfig config;
  config.num_shards = 2;
  config.cache_capacity = 16;  // exercise the cache path during the race
  KnnService service(target, config);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> outcomes{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<float> point = {0.1f * static_cast<float>(c), 0.5f};
      HostMatrix one(1, 2);
      one.at(0, 0) = point[0];
      one.at(0, 1) = point[1];
      while (!stop.load(std::memory_order_acquire)) {
        const auto searched = service.Search(point, 2);
        if (!searched.ok()) {
          EXPECT_EQ(searched.status().code(), StatusCode::kUnavailable);
        }
        const auto joined = service.JoinBatch(one, 2);
        if (!joined.ok()) {
          EXPECT_EQ(joined.status().code(), StatusCode::kUnavailable);
        }
        outcomes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  service.Shutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_GT(outcomes.load(), 0u);
}

}  // namespace
}  // namespace sweetknn::serve
