// Mixed-tenant storms: weighted-fair service ratios under saturation
// (with clean shed statuses), and cross-tenant isolation while one
// tenant runs a mutation + compaction storm — the other tenant's
// answers stay bit-identical to its oracle and its tail latency stays
// bounded.

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;

void ExpectBitIdentical(const KnnResult& expected, const KnnResult& actual,
                        const char* what) {
  ASSERT_EQ(expected.num_queries(), actual.num_queries()) << what;
  ASSERT_EQ(expected.k(), actual.k()) << what;
  for (size_t q = 0; q < expected.num_queries(); ++q) {
    for (int i = 0; i < expected.k(); ++i) {
      ASSERT_EQ(expected.row(q)[i].index, actual.row(q)[i].index)
          << what << ": query " << q << " rank " << i;
      ASSERT_EQ(expected.row(q)[i].distance, actual.row(q)[i].distance)
          << what << ": query " << q << " rank " << i;
    }
  }
}

// Two query-only tenants at a 4:1 weight, driven well past the service's
// throughput by blocking producers: the deficit-round-robin scheduler
// must serve them within 25% of the configured ratio, and the bounded
// queue must shed the overflow with nothing but clean kUnavailable
// "shed" statuses (never a hang, never a wrong answer).
TEST(TenantStormTest, WeightedFairShareWithinTolerance) {
  const HostMatrix base = ClusteredPoints(80, 4, 3, 1001);
  const HostMatrix heavy = ClusteredPoints(200, 4, 4, 1002);
  const HostMatrix light = ClusteredPoints(200, 4, 4, 1003);

  serve::ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 4;
  config.max_batch_wait = std::chrono::microseconds(100);
  config.max_queue_depth = 12;
  config.auto_compact = false;
  serve::KnnService service(base, config);
  ASSERT_TRUE(service.CreateIndex("heavy", heavy, 4.0).ok());
  ASSERT_TRUE(service.CreateIndex("light", light, 1.0).ok());

  constexpr int kProducersPerTenant = 8;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::atomic<uint64_t> served_heavy{0};
  std::atomic<uint64_t> served_light{0};
  std::atomic<uint64_t> sheds{0};
  std::atomic<bool> bad_status{false};
  std::mutex bad_mutex;
  std::string bad_detail;

  auto producer = [&](const std::string& tenant,
                      std::atomic<uint64_t>* served, int lane) {
    serve::CallOptions opts;
    opts.tenant = tenant;
    std::vector<float> point(4, 0.01f * (lane + 1));
    while (std::chrono::steady_clock::now() < deadline) {
      const Result<std::vector<Neighbor>> result =
          service.Search(opts, point, 3);
      if (result.ok()) {
        served->fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // The only acceptable failure under overload is a clean shed.
      if (result.status().code() == StatusCode::kUnavailable &&
          result.status().message().find("shed") != std::string::npos) {
        sheds.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      bad_status.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(bad_mutex);
      bad_detail = result.status().ToString();
      return;
    }
  };

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducersPerTenant; ++p) {
    producers.emplace_back(producer, "heavy", &served_heavy, p);
    producers.emplace_back(producer, "light", &served_light, p);
  }
  for (std::thread& t : producers) t.join();

  EXPECT_FALSE(bad_status.load()) << bad_detail;
  ASSERT_GE(served_light.load(), 20u)
      << "not enough traffic to measure the ratio";
  const double ratio = static_cast<double>(served_heavy.load()) /
                       static_cast<double>(served_light.load());
  EXPECT_GT(ratio, 4.0 * 0.75)
      << "heavy=" << served_heavy.load() << " light=" << served_light.load();
  EXPECT_LT(ratio, 4.0 * 1.25)
      << "heavy=" << served_heavy.load() << " light=" << served_light.load();

  // Every shed the producers saw is accounted, and vice versa.
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_requests, sheds.load());
  EXPECT_EQ(stats.requests, served_heavy.load() + served_light.load());
  EXPECT_LE(stats.peak_queue_depth, config.max_queue_depth);
}

// Tenant "default" takes a mutation + compaction storm (inserts,
// removes, explicit compactions, the auto-compactor running) while
// tenant "b" serves queries the whole time. Both stay bit-identical to
// their oracles: "default" against a dedicated single-tenant service
// fed the identical mutation sequence, "b" against its pre-storm
// reference (its index never changes). Tenant "b"'s p99 must stay
// bounded — the storm may not starve it.
TEST(TenantStormTest, CompactionStormLeavesOtherTenantBitIdentical) {
  const HostMatrix target_a = ClusteredPoints(160, 4, 3, 1011);
  const HostMatrix target_b = ClusteredPoints(140, 4, 3, 1012);
  const HostMatrix queries_a = ClusteredPoints(12, 4, 2, 1013);
  const HostMatrix queries_b = ClusteredPoints(12, 4, 2, 1014);
  constexpr int kNeighbors = 5;

  serve::ServiceConfig config;
  config.num_shards = 2;
  config.max_batch_size = 16;
  config.max_batch_wait = std::chrono::microseconds(200);
  config.compact_delta_fraction = 0.05;  // storm: compact eagerly
  config.auto_compact = true;
  serve::KnnService service(target_a, config);
  ASSERT_TRUE(service.CreateIndex("b", target_b, 1.0).ok());

  // The oracle receives the identical mutation sequence (same thread,
  // same order), so its answers must match tenant "default" bit for bit
  // at every checkpoint — compactions are answer-preserving.
  serve::KnnService oracle(target_a, config);

  const KnnResult reference_b =
      service.JoinBatch(serve::CallOptions{"b", {}}, queries_b, kNeighbors)
          .value();

  std::atomic<bool> storm_done{false};
  std::atomic<uint64_t> b_rounds{0};
  std::atomic<bool> b_failed{false};
  std::vector<std::thread> b_clients;
  for (int c = 0; c < 2; ++c) {
    b_clients.emplace_back([&] {
      serve::CallOptions on_b;
      on_b.tenant = "b";
      while (!storm_done.load(std::memory_order_acquire)) {
        const Result<KnnResult> answer =
            service.JoinBatch(on_b, queries_b, kNeighbors);
        if (!answer.ok()) {
          b_failed.store(true);
          ADD_FAILURE() << "tenant b query failed: "
                        << answer.status().ToString();
          return;
        }
        ExpectBitIdentical(reference_b, answer.value(), "tenant b");
        b_rounds.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The storm: bursts of inserts and removes applied to the service and
  // the oracle in lock step, explicit compactions sprinkled in, and a
  // bit-identity checkpoint on tenant "default" every round.
  uint32_t next_insert_seed = 0;
  uint32_t next_remove = 0;
  constexpr int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 6; ++i) {
      std::vector<float> point(4);
      for (size_t j = 0; j < point.size(); ++j) {
        point[j] = 0.1f * static_cast<float>((next_insert_seed * 7 + j) % 23);
      }
      ++next_insert_seed;
      const Result<uint32_t> id_service = service.Insert(point);
      const Result<uint32_t> id_oracle = oracle.Insert(point);
      ASSERT_TRUE(id_service.ok());
      ASSERT_TRUE(id_oracle.ok());
      ASSERT_EQ(id_service.value(), id_oracle.value());
    }
    for (int i = 0; i < 3; ++i) {
      const Result<bool> removed_service = service.Remove(next_remove);
      const Result<bool> removed_oracle = oracle.Remove(next_remove);
      ASSERT_TRUE(removed_service.ok());
      ASSERT_TRUE(removed_oracle.ok());
      ASSERT_EQ(removed_service.value(), removed_oracle.value());
      ++next_remove;
    }
    if (round % 3 == 1) {
      // Explicit compactions may race the auto-compactor and report
      // Unavailable (superseded); either way answers are preserved.
      (void)service.CompactShard(round % config.num_shards);
      (void)oracle.CompactShard(round % config.num_shards);
    }
    const KnnResult answer_service =
        service.JoinBatch(queries_a, kNeighbors).value();
    const KnnResult answer_oracle =
        oracle.JoinBatch(queries_a, kNeighbors).value();
    ExpectBitIdentical(answer_oracle, answer_service, "tenant default");
  }
  storm_done.store(true, std::memory_order_release);
  for (std::thread& t : b_clients) t.join();

  EXPECT_FALSE(b_failed.load());
  EXPECT_GE(b_rounds.load(), 1u);

  // Tail-latency isolation: tenant b's p99 stays bounded through the
  // storm (generous absolute bound — TSan builds run this too).
  const common::HistogramSnapshot latency = service.metrics().SnapshotHistogram(
      "sweetknn_tenant_request_latency_seconds{" +
      common::TenantLabel("b") + "}");
  ASSERT_GT(latency.count, 0u);
  EXPECT_LT(latency.Percentile(0.99), 2.0)
      << "tenant b p99 " << latency.Percentile(0.99) << "s";

  // The storm compacted: the default tenant actually exercised the
  // rebuild/install path while b served.
  EXPECT_GE(service.stats().compactions, 1u);
}

}  // namespace
}  // namespace sweetknn
