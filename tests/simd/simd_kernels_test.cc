// Kernel-equivalence suite: every compiled-in SIMD tier must return
// bytes identical to the canonical scalar fallback — for all distance
// kinds, dims 1..130 (odd sizes and remainder lanes included),
// unaligned bases, and NaN/inf inputs. This is the contract that lets
// the rewired callers (BruteForceCpu, ScanDelta, clustering, the
// planner's host route) keep the repo's bit-exactness invariants.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/device_points.h"
#include "gtest/gtest.h"
#include "simd/simd_kernels.h"

namespace sweetknn::simd {
namespace {

std::vector<Level> AvailableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  for (Level l : {Level::kAvx2, Level::kAvx512}) {
    if (CompiledIn(l) && CpuSupports(l)) levels.push_back(l);
  }
  return levels;
}

/// Restores normal dispatch when a test exits.
struct LevelGuard {
  ~LevelGuard() { ForceLevelForTest(-1); }
};

std::vector<float> RandomBlock(Rng* rng, size_t n, size_t dims) {
  std::vector<float> out(n * dims);
  for (float& x : out) {
    x = rng->NextFloat() * 4.0f - 2.0f;
  }
  return out;
}

/// The pre-existing scalar reference, straight from core.
std::vector<float> ReferenceDistances(const float* query, const float* rows,
                                      size_t n, size_t dims, Dist dist) {
  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) {
    const core::PointAccessor a{query, 1};
    const core::PointAccessor b{rows + i * dims, 1};
    if (dist == Dist::kManhattan) {
      out[i] = core::AccessorDistance(a, b, dims, core::Metric::kManhattan);
    } else {
      float acc = 0.0f;
      for (size_t j = 0; j < dims; ++j) {
        const float diff = a[j] - b[j];
        acc += diff * diff;
      }
      out[i] = dist == Dist::kEuclidean ? std::sqrt(acc) : acc;
    }
  }
  return out;
}

void ExpectBitEqual(const std::vector<float>& want,
                    const std::vector<float>& got, const char* what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(std::memcmp(&want[i], &got[i], sizeof(float)), 0)
        << what << ": element " << i << " want " << want[i] << " got "
        << got[i];
  }
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(CompiledIn(Level::kScalar));
  EXPECT_TRUE(CpuSupports(Level::kScalar));
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
  EXPECT_STREQ(LevelName(Level::kAvx512), "avx512");
}

TEST(SimdDispatchTest, ForceLevelClampsUnavailableTiers) {
  LevelGuard guard;
  ForceLevelForTest(static_cast<int>(Level::kScalar));
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  for (Level l : {Level::kAvx2, Level::kAvx512}) {
    ForceLevelForTest(static_cast<int>(l));
    if (CompiledIn(l) && CpuSupports(l)) {
      EXPECT_EQ(ActiveLevel(), l);
    } else {
      EXPECT_EQ(ActiveLevel(), Level::kScalar);
    }
  }
}

TEST(SimdKernelsTest, AllTiersBitIdenticalAcrossDims1To130) {
  LevelGuard guard;
  Rng rng(20260809);
  for (size_t dims : {1u, 2u, 3u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u,
                      33u, 63u, 64u, 65u, 127u, 128u, 129u, 130u}) {
    for (size_t n : {1u, 5u, 15u, 16u, 17u, 40u, 100u}) {
      const std::vector<float> rows = RandomBlock(&rng, n, dims);
      const std::vector<float> query = RandomBlock(&rng, 1, dims);
      const PackedTargets packed = PackedTargets::Pack(rows.data(), n, dims);
      ASSERT_EQ(packed.n(), n);
      ASSERT_EQ(packed.dims(), dims);
      for (Dist dist :
           {Dist::kEuclidean, Dist::kSquaredEuclidean, Dist::kManhattan}) {
        const std::vector<float> want =
            ReferenceDistances(query.data(), rows.data(), n, dims, dist);
        for (Level level : AvailableLevels()) {
          ForceLevelForTest(static_cast<int>(level));
          std::vector<float> got(n);
          QueryDistances(query.data(), packed, dist, got.data());
          SCOPED_TRACE(testing::Message()
                       << "level=" << LevelName(level) << " dims=" << dims
                       << " n=" << n << " dist=" << static_cast<int>(dist));
          ExpectBitEqual(want, got, "QueryDistances");
          // The on-the-fly packing path must agree too.
          std::vector<float> unpacked(n);
          QueryBlockDistances(query.data(), rows.data(), n, dims, dist,
                              unpacked.data());
          ExpectBitEqual(want, unpacked, "QueryBlockDistances");
        }
      }
    }
  }
}

TEST(SimdKernelsTest, UnalignedBasesMatch) {
  LevelGuard guard;
  Rng rng(99);
  const size_t dims = 19;
  const size_t n = 37;
  // Shift every base pointer off natural vector alignment by one float.
  std::vector<float> raw = RandomBlock(&rng, n + 1, dims);
  std::vector<float> qraw = RandomBlock(&rng, 2, dims);
  const float* rows = raw.data() + 1;
  const float* query = qraw.data() + 1;
  const PackedTargets packed = PackedTargets::Pack(rows, n, dims);
  const std::vector<float> want =
      ReferenceDistances(query, rows, n, dims, Dist::kEuclidean);
  for (Level level : AvailableLevels()) {
    ForceLevelForTest(static_cast<int>(level));
    std::vector<float> got(n);
    QueryDistances(query, packed, Dist::kEuclidean, got.data());
    SCOPED_TRACE(LevelName(level));
    ExpectBitEqual(want, got, "unaligned QueryDistances");
  }
}

TEST(SimdKernelsTest, NanAndInfPropagateIdentically) {
  LevelGuard guard;
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const size_t dims = 9;
  const size_t n = 33;
  Rng rng(7);
  std::vector<float> rows = RandomBlock(&rng, n, dims);
  std::vector<float> query = RandomBlock(&rng, 1, dims);
  rows[3] = kNan;
  rows[5 * dims + 2] = kInf;
  rows[17 * dims + 8] = -kInf;
  query[4] = kInf;
  const PackedTargets packed = PackedTargets::Pack(rows.data(), n, dims);
  for (Dist dist :
       {Dist::kEuclidean, Dist::kSquaredEuclidean, Dist::kManhattan}) {
    const std::vector<float> want =
        ReferenceDistances(query.data(), rows.data(), n, dims, dist);
    for (Level level : AvailableLevels()) {
      ForceLevelForTest(static_cast<int>(level));
      std::vector<float> got(n);
      QueryDistances(query.data(), packed, dist, got.data());
      SCOPED_TRACE(testing::Message() << LevelName(level) << " dist="
                                      << static_cast<int>(dist));
      ASSERT_EQ(std::memcmp(want.data(), got.data(), n * sizeof(float)), 0);
    }
  }
}

TEST(SimdKernelsTest, StridedPackMatchesRowMajorPack) {
  Rng rng(11);
  const size_t dims = 6;
  const size_t n = 21;
  const std::vector<float> rows = RandomBlock(&rng, n, dims);
  // Build the column-major image and pack it with strides.
  std::vector<float> colmajor(n * dims);
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < dims; ++j) {
      colmajor[j * n + r] = rows[r * dims + j];
    }
  }
  const PackedTargets a = PackedTargets::Pack(rows.data(), n, dims);
  const PackedTargets b = PackedTargets::PackStrided(colmajor.data(), n, dims,
                                                     /*row_stride=*/1,
                                                     /*col_stride=*/n);
  ASSERT_EQ(a.num_tiles(), b.num_tiles());
  EXPECT_EQ(std::memcmp(a.tiles(), b.tiles(),
                        a.num_tiles() * kTileLanes * dims * sizeof(float)),
            0);
}

TEST(SimdKernelsTest, SelectNearestMatchesScalarPushLoop) {
  LevelGuard guard;
  Rng rng(4242);
  for (int k : {1, 3, 8, 40}) {
    for (size_t n : {0u, 1u, 7u, 16u, 50u, 400u}) {
      std::vector<float> dists(n);
      for (float& d : dists) {
        // Coarse quantization forces plenty of exact distance ties.
        d = static_cast<float>(rng.NextBounded(16)) * 0.125f;
      }
      if (n > 20) dists[20] = std::numeric_limits<float>::quiet_NaN();
      TopK want(k);
      for (size_t i = 0; i < n; ++i) {
        want.PushIfCloser(Neighbor{static_cast<uint32_t>(i), dists[i]});
      }
      for (Level level : AvailableLevels()) {
        ForceLevelForTest(static_cast<int>(level));
        TopK got(k);
        // Two chunks to exercise the cross-call ascending-scan contract.
        const size_t split = (n / 2 / kTileLanes) * kTileLanes;
        SelectNearest(dists.data(), split, 0, &got);
        SelectNearest(dists.data() + split, n - split,
                      static_cast<uint32_t>(split), &got);
        SCOPED_TRACE(testing::Message()
                     << "level=" << LevelName(level) << " k=" << k
                     << " n=" << n);
        const auto ws = want.Sorted();
        const auto gs = got.Sorted();
        ASSERT_EQ(ws.size(), gs.size());
        for (size_t i = 0; i < ws.size(); ++i) {
          EXPECT_EQ(ws[i].index, gs[i].index) << "rank " << i;
          EXPECT_EQ(std::memcmp(&ws[i].distance, &gs[i].distance,
                                sizeof(float)),
                    0)
              << "rank " << i;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, AddRowMatchesScalar) {
  LevelGuard guard;
  Rng rng(5);
  for (size_t dims : {1u, 7u, 8u, 16u, 33u, 130u}) {
    const std::vector<float> row = RandomBlock(&rng, 1, dims);
    const std::vector<float> base = RandomBlock(&rng, 1, dims);
    std::vector<float> want = base;
    for (size_t j = 0; j < dims; ++j) want[j] += row[j];
    for (Level level : AvailableLevels()) {
      ForceLevelForTest(static_cast<int>(level));
      std::vector<float> acc = base;
      AddRow(acc.data(), row.data(), dims);
      SCOPED_TRACE(testing::Message() << LevelName(level) << " dims="
                                      << dims);
      ExpectBitEqual(want, acc, "AddRow");
    }
  }
}

TEST(SimdKernelsTest, PackedKnnBitIdenticalAcrossTiersAndWorkers) {
  LevelGuard guard;
  Rng rng(31337);
  const size_t dims = 12;
  const size_t n = 203;
  const size_t nq = 17;
  HostMatrix queries(nq, dims);
  std::vector<float> rows = RandomBlock(&rng, n, dims);
  for (size_t q = 0; q < nq; ++q) {
    for (size_t j = 0; j < dims; ++j) {
      queries.at(q, j) = rng.NextFloat();
    }
  }
  const PackedTargets packed = PackedTargets::Pack(rows.data(), n, dims);
  ForceLevelForTest(static_cast<int>(Level::kScalar));
  const KnnResult want = PackedKnn(queries, packed, 9, Dist::kEuclidean, 1);
  for (Level level : AvailableLevels()) {
    ForceLevelForTest(static_cast<int>(level));
    for (int workers : {1, 4}) {
      const KnnResult got =
          PackedKnn(queries, packed, 9, Dist::kEuclidean, workers);
      SCOPED_TRACE(testing::Message() << LevelName(level) << " workers="
                                      << workers);
      ASSERT_EQ(want.num_queries(), got.num_queries());
      for (size_t q = 0; q < nq; ++q) {
        ASSERT_EQ(std::memcmp(want.row(q), got.row(q),
                              sizeof(Neighbor) * 9),
                  0)
            << "query " << q;
      }
    }
  }
}

}  // namespace
}  // namespace sweetknn::simd
