#include "baseline/brute_force_cpu.h"

#include "common/rng.h"
#include "core/sweet_knn.h"
#include "core/ti_bounds.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

using testing::ClusteredPoints;
using testing::ExpectResultsMatch;

TEST(MetricTest, ManhattanAccessorDistance) {
  const float a[] = {0.0f, 0.0f, 1.0f};
  const float b[] = {3.0f, -4.0f, 1.0f};
  EXPECT_FLOAT_EQ(AccessorDistance(PointAccessor{a, 1}, PointAccessor{b, 1},
                                   3, Metric::kManhattan),
                  7.0f);
  EXPECT_FLOAT_EQ(AccessorDistance(PointAccessor{a, 1}, PointAccessor{b, 1},
                                   3, Metric::kEuclidean),
                  5.0f);
}

TEST(MetricTest, ManhattanSatisfiesTriangleInequality) {
  Rng rng(171);
  for (int trial = 0; trial < 200; ++trial) {
    float p[3][4];
    for (auto& point : p) {
      for (float& v : point) v = rng.NextFloat();
    }
    auto dist = [&](int i, int j) {
      return AccessorDistance(PointAccessor{p[i], 1},
                              PointAccessor{p[j], 1}, 4,
                              Metric::kManhattan);
    };
    EXPECT_LE(dist(0, 2), dist(0, 1) + dist(1, 2) + 1e-5f);
  }
}

TEST(MetricTest, SweetKnnExactUnderManhattan) {
  const HostMatrix points = ClusteredPoints(300, 6, 5, 172);
  SweetKnn::Config config;
  config.options.metric = Metric::kManhattan;
  SweetKnn knn(config);
  KnnRunStats stats;
  const KnnResult result = knn.SelfJoin(points, 5, &stats);
  ExpectResultsMatch(
      baseline::BruteForceCpu(points, points, 5, Metric::kManhattan),
      result);
  // TI filtering still prunes under L1.
  EXPECT_GT(stats.SavedFraction(), 0.5);
}

TEST(MetricTest, BasicTiExactUnderManhattan) {
  const HostMatrix points = ClusteredPoints(250, 4, 4, 173);
  TiOptions options = TiOptions::BasicTi();
  options.metric = Metric::kManhattan;
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  ExpectResultsMatch(
      baseline::BruteForceCpu(points, points, 4, Metric::kManhattan),
      TiKnnEngine::RunOnce(&dev, points, points, 4, options, nullptr));
}

TEST(MetricTest, MetricsProduceDifferentNeighborSets) {
  // An anisotropic configuration where L1 and L2 disagree.
  HostMatrix target(2, 2);
  target.at(0, 0) = 1.2f;  // L2: 1.2, L1: 1.2.
  target.at(1, 0) = 0.9f;  // L2: sqrt(0.81+0.81) = 1.27, L1: 1.8.
  target.at(1, 1) = 0.9f;
  HostMatrix query(1, 2);
  auto nearest = [&](Metric metric) {
    return baseline::BruteForceCpu(query, target, 1, metric).row(0)[0].index;
  };
  EXPECT_EQ(nearest(Metric::kEuclidean), 0u);
  EXPECT_EQ(nearest(Metric::kManhattan), 0u);
  // Flip: make the diagonal point L2-closer but L1-farther.
  target.at(0, 0) = 1.25f;
  EXPECT_EQ(nearest(Metric::kEuclidean), 0u);  // 1.25 vs 1.27.
  EXPECT_EQ(nearest(Metric::kManhattan), 0u);  // 1.25 vs 1.8.
  target.at(0, 0) = 1.28f;
  EXPECT_EQ(nearest(Metric::kEuclidean), 1u);  // 1.28 vs 1.27.
  EXPECT_EQ(nearest(Metric::kManhattan), 0u);  // 1.28 vs 1.8.
}

TEST(MetricTest, ManhattanWithKMeansAndPartialFilter) {
  const HostMatrix points = ClusteredPoints(400, 2, 6, 174);
  SweetKnn::Config config;
  config.options.metric = Metric::kManhattan;
  config.options.kmeans_iterations = 2;
  SweetKnn knn(config);
  KnnRunStats stats;
  const KnnResult result = knn.SelfJoin(points, 20, &stats);
  EXPECT_EQ(stats.filter_used, Level2Filter::kPartial);
  ExpectResultsMatch(
      baseline::BruteForceCpu(points, points, 20, Metric::kManhattan),
      result);
}

}  // namespace
}  // namespace sweetknn::core
