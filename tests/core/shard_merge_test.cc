#include "core/shard_merge.h"

#include <vector>

#include "baseline/brute_force_cpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

KnnResult ResultFromRows(
    const std::vector<std::vector<Neighbor>>& rows, int k) {
  KnnResult out(rows.size(), k);
  for (size_t q = 0; q < rows.size(); ++q) out.SetRow(q, rows[q]);
  return out;
}

TEST(ShardMergeTest, RemapsAndPicksGlobalTopK) {
  // Shard 0 holds target rows [0, 3), shard 1 holds [3, 6).
  const KnnResult s0 = ResultFromRows(
      {{{0, 1.0f}, {2, 4.0f}}, {{1, 0.5f}, {0, 9.0f}}}, 2);
  const KnnResult s1 = ResultFromRows(
      {{{1, 2.0f}, {0, 3.0f}}, {{2, 0.25f}, {1, 0.75f}}}, 2);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 3}, 2);
  ASSERT_EQ(merged.num_queries(), 2u);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{0, 1.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{4, 2.0f}));
  EXPECT_EQ(merged.row(1)[0], (Neighbor{5, 0.25f}));
  EXPECT_EQ(merged.row(1)[1], (Neighbor{1, 0.5f}));
}

TEST(ShardMergeTest, ExactDistanceTiesBreakOnGlobalIndex) {
  const KnnResult s0 = ResultFromRows({{{1, 2.0f}, {0, 7.0f}}}, 2);
  const KnnResult s1 = ResultFromRows({{{0, 2.0f}, {1, 2.0f}}}, 2);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 2}, 2);
  // Three candidates at distance 2.0: global ids 1, 2, 3 — keep 1 and 2.
  EXPECT_EQ(merged.row(0)[0], (Neighbor{1, 2.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{2, 2.0f}));
}

TEST(ShardMergeTest, PaddedShardRowsAreSkipped) {
  // Shard 1's slice has one row: its second slot is padding.
  const KnnResult s0 = ResultFromRows({{{0, 5.0f}, {1, 6.0f}}}, 2);
  const KnnResult s1 = ResultFromRows({{{0, 1.0f}}}, 2);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 2}, 2);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{2, 1.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{0, 5.0f}));
}

TEST(ShardMergeTest, FewerCandidatesThanKPadsLikeSingleEngine) {
  const KnnResult s0 = ResultFromRows({{{0, 1.0f}}}, 3);
  const KnnResult s1 = ResultFromRows({{{0, 2.0f}}}, 3);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 1}, 3);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{0, 1.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{1, 2.0f}));
  EXPECT_EQ(merged.row(0)[2].index, kInvalidNeighbor);
}

TEST(ShardMergeTest, MergedBruteForceShardsEqualWholeSetBitwise) {
  // Property check against the oracle: brute-force each slice, merge,
  // compare bit-for-bit with brute force over the whole target.
  const HostMatrix target = testing::ClusteredPoints(157, 5, 4, 501);
  const HostMatrix queries = testing::ClusteredPoints(23, 5, 2, 502);
  constexpr int kNeighbors = 9;
  const KnnResult whole =
      baseline::BruteForceCpu(queries, target, kNeighbors);

  const std::vector<size_t> cuts = {0, 40, 41, 157};  // uneven slices
  std::vector<KnnResult> shard_results;
  std::vector<uint32_t> offsets;
  for (size_t s = 0; s + 1 < cuts.size(); ++s) {
    const size_t rows = cuts[s + 1] - cuts[s];
    HostMatrix slice(rows, target.cols());
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < target.cols(); ++j) {
        slice.at(r, j) = target.at(cuts[s] + r, j);
      }
    }
    shard_results.push_back(
        baseline::BruteForceCpu(queries, slice, kNeighbors));
    offsets.push_back(static_cast<uint32_t>(cuts[s]));
  }
  const KnnResult merged =
      MergeShardResults(shard_results, offsets, kNeighbors);
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (int i = 0; i < kNeighbors; ++i) {
      EXPECT_EQ(whole.row(q)[i].index, merged.row(q)[i].index);
      EXPECT_EQ(whole.row(q)[i].distance, merged.row(q)[i].distance);
    }
  }
}

TEST(AccumulateRunStatsTest, CountersAddAndSimTimeTakesMax) {
  KnnRunStats total;
  KnnRunStats a;
  a.distance_calcs = 100;
  a.total_pairs = 1000;
  a.sim_time_s = 0.5;
  a.landmarks_target = 10;
  KnnRunStats b;
  b.distance_calcs = 50;
  b.total_pairs = 500;
  b.sim_time_s = 0.75;
  b.landmarks_target = 7;
  AccumulateRunStats(a, &total);
  AccumulateRunStats(b, &total);
  EXPECT_EQ(total.distance_calcs, 150u);
  EXPECT_EQ(total.total_pairs, 1500u);
  EXPECT_DOUBLE_EQ(total.sim_time_s, 0.75);
  EXPECT_EQ(total.landmarks_target, 17);
}

}  // namespace
}  // namespace sweetknn::core
