#include "core/shard_merge.h"

#include <vector>

#include "baseline/brute_force_cpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

KnnResult ResultFromRows(
    const std::vector<std::vector<Neighbor>>& rows, int k) {
  KnnResult out(rows.size(), k);
  for (size_t q = 0; q < rows.size(); ++q) out.SetRow(q, rows[q]);
  return out;
}

TEST(ShardMergeTest, RemapsAndPicksGlobalTopK) {
  // Shard 0 holds target rows [0, 3), shard 1 holds [3, 6).
  const KnnResult s0 = ResultFromRows(
      {{{0, 1.0f}, {2, 4.0f}}, {{1, 0.5f}, {0, 9.0f}}}, 2);
  const KnnResult s1 = ResultFromRows(
      {{{1, 2.0f}, {0, 3.0f}}, {{2, 0.25f}, {1, 0.75f}}}, 2);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 3}, 2);
  ASSERT_EQ(merged.num_queries(), 2u);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{0, 1.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{4, 2.0f}));
  EXPECT_EQ(merged.row(1)[0], (Neighbor{5, 0.25f}));
  EXPECT_EQ(merged.row(1)[1], (Neighbor{1, 0.5f}));
}

TEST(ShardMergeTest, ExactDistanceTiesBreakOnGlobalIndex) {
  const KnnResult s0 = ResultFromRows({{{1, 2.0f}, {0, 7.0f}}}, 2);
  const KnnResult s1 = ResultFromRows({{{0, 2.0f}, {1, 2.0f}}}, 2);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 2}, 2);
  // Three candidates at distance 2.0: global ids 1, 2, 3 — keep 1 and 2.
  EXPECT_EQ(merged.row(0)[0], (Neighbor{1, 2.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{2, 2.0f}));
}

TEST(ShardMergeTest, PaddedShardRowsAreSkipped) {
  // Shard 1's slice has one row: its second slot is padding.
  const KnnResult s0 = ResultFromRows({{{0, 5.0f}, {1, 6.0f}}}, 2);
  const KnnResult s1 = ResultFromRows({{{0, 1.0f}}}, 2);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 2}, 2);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{2, 1.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{0, 5.0f}));
}

TEST(ShardMergeTest, FewerCandidatesThanKPadsLikeSingleEngine) {
  const KnnResult s0 = ResultFromRows({{{0, 1.0f}}}, 3);
  const KnnResult s1 = ResultFromRows({{{0, 2.0f}}}, 3);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 1}, 3);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{0, 1.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{1, 2.0f}));
  EXPECT_EQ(merged.row(0)[2].index, kInvalidNeighbor);
}

TEST(ShardMergeTest, MergedBruteForceShardsEqualWholeSetBitwise) {
  // Property check against the oracle: brute-force each slice, merge,
  // compare bit-for-bit with brute force over the whole target.
  const HostMatrix target = testing::ClusteredPoints(157, 5, 4, 501);
  const HostMatrix queries = testing::ClusteredPoints(23, 5, 2, 502);
  constexpr int kNeighbors = 9;
  const KnnResult whole =
      baseline::BruteForceCpu(queries, target, kNeighbors);

  const std::vector<size_t> cuts = {0, 40, 41, 157};  // uneven slices
  std::vector<KnnResult> shard_results;
  std::vector<uint32_t> offsets;
  for (size_t s = 0; s + 1 < cuts.size(); ++s) {
    const size_t rows = cuts[s + 1] - cuts[s];
    HostMatrix slice(rows, target.cols());
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < target.cols(); ++j) {
        slice.at(r, j) = target.at(cuts[s] + r, j);
      }
    }
    shard_results.push_back(
        baseline::BruteForceCpu(queries, slice, kNeighbors));
    offsets.push_back(static_cast<uint32_t>(cuts[s]));
  }
  const KnnResult merged =
      MergeShardResults(shard_results, offsets, kNeighbors);
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (int i = 0; i < kNeighbors; ++i) {
      EXPECT_EQ(whole.row(q)[i].index, merged.row(q)[i].index);
      EXPECT_EQ(whole.row(q)[i].distance, merged.row(q)[i].distance);
    }
  }
}

TEST(ShardMergeTest, CrossShardTiesAtDifferentRanksStillOrderGlobally) {
  // The tied candidates sit at different ranks within their shards:
  // shard 0's rank-1 entry (global id 2) ties shard 1's rank-0 entry
  // (global id 3). The merge must order them by global id, not by the
  // rank they happened to hold locally.
  const KnnResult s0 = ResultFromRows({{{0, 1.0f}, {2, 3.0f}}}, 2);
  const KnnResult s1 = ResultFromRows({{{0, 3.0f}, {2, 3.0f}}}, 2);
  const KnnResult merged = MergeShardResults({s0, s1}, {0, 3}, 2);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{0, 1.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{2, 3.0f}));
}

// --- MergeMutableResults: base shards + delta buffers + tombstones ---

TEST(MergeMutableTest, EqualDistancesAcrossSourcesOrderByStableId) {
  // A base shard (ids via offset), a second base shard (ids via id_map),
  // and a delta buffer all contribute a candidate at distance 2.0 with
  // stable ids 7 (delta), 4 (id_map), and 1 (offset). The winner order
  // must be ascending stable id — the order a cold index over the live
  // set would produce — regardless of which source each came from.
  const KnnResult base0 = ResultFromRows({{{1, 2.0f}, {0, 5.0f}}}, 2);
  const KnnResult base1 = ResultFromRows({{{0, 2.0f}, {1, 6.0f}}}, 2);
  const KnnResult delta = ResultFromRows({{{0, 2.0f}}}, 2);
  const std::vector<uint32_t> id_map = {4, 5};
  const std::vector<uint32_t> delta_ids = {7};
  const std::vector<MergeSource> sources = {
      {&base0, nullptr, 0, nullptr},
      {&base1, id_map.data(), 0, nullptr},
      {&delta, delta_ids.data(), 0, nullptr},
  };
  const KnnResult merged = MergeMutableResults(sources, 2);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{1, 2.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{4, 2.0f}));
}

TEST(MergeMutableTest, TombstonesDoNotConsumeTheKBudget) {
  // The base was over-queried at k' = k + |tombstones| = 4. Its two
  // nearest entries are dead; the merge must keep walking and still
  // surface the base's two nearest *live* points, not stop after k
  // slots' worth of raw entries.
  const KnnResult base = ResultFromRows(
      {{{0, 1.0f}, {1, 2.0f}, {2, 3.0f}, {3, 4.0f}}}, 4);
  const std::unordered_set<uint32_t> dead = {0, 1};
  const std::vector<MergeSource> sources = {{&base, nullptr, 0, &dead}};
  const KnnResult merged = MergeMutableResults(sources, 2);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{2, 3.0f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{3, 4.0f}));
}

TEST(MergeMutableTest, OffsetAndIdMapSourcesRemapBeforeTieBreak) {
  // Offset source: local 0/1 -> stable 10/11. id_map source: local
  // 0/1 -> stable 3/12. A tie at 1.5 between stable 11 (offset) and
  // stable 3 (id_map) must resolve in favor of the smaller stable id
  // even though the offset source was listed first.
  const KnnResult by_offset = ResultFromRows({{{1, 1.5f}, {0, 8.0f}}}, 3);
  const KnnResult by_map = ResultFromRows({{{0, 1.5f}, {1, 9.0f}}}, 3);
  const std::vector<uint32_t> id_map = {3, 12};
  const std::vector<MergeSource> sources = {
      {&by_offset, nullptr, 10, nullptr},
      {&by_map, id_map.data(), 0, nullptr},
  };
  const KnnResult merged = MergeMutableResults(sources, 3);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{3, 1.5f}));
  EXPECT_EQ(merged.row(0)[1], (Neighbor{11, 1.5f}));
  EXPECT_EQ(merged.row(0)[2], (Neighbor{10, 8.0f}));
}

TEST(MergeMutableTest, NullSourcesAreSkippedAndPaddingPropagates) {
  // Empty delta buffers hand the merge a null result; they must be
  // ignored. With fewer live candidates than k the tail pads exactly
  // like a single engine would.
  const KnnResult base = ResultFromRows({{{0, 2.0f}, {1, 3.0f}}}, 3);
  const std::unordered_set<uint32_t> dead = {1};
  const std::vector<MergeSource> sources = {
      {nullptr, nullptr, 0, nullptr},
      {&base, nullptr, 0, &dead},
  };
  const KnnResult merged = MergeMutableResults(sources, 3);
  EXPECT_EQ(merged.row(0)[0], (Neighbor{0, 2.0f}));
  EXPECT_EQ(merged.row(0)[1].index, kInvalidNeighbor);
  EXPECT_EQ(merged.row(0)[2].index, kInvalidNeighbor);
}

TEST(MergeMutableTest, MatchesColdBruteForceOverLiveSetBitwise) {
  // Property check: base shard + tombstones + delta must reproduce a
  // brute-force run over the surviving points bit-for-bit.
  const HostMatrix target = testing::ClusteredPoints(80, 4, 3, 601);
  const HostMatrix queries = testing::ClusteredPoints(11, 4, 2, 602);
  constexpr int kNeighbors = 5;
  const std::unordered_set<uint32_t> dead = {3, 17, 40, 41, 79};

  // Delta: four extra points with stable ids 80..83.
  const HostMatrix extra = testing::ClusteredPoints(4, 4, 1, 603);
  const std::vector<uint32_t> delta_ids = {80, 81, 82, 83};

  const KnnResult base_result = baseline::BruteForceCpu(
      queries, target, kNeighbors + static_cast<int>(dead.size()));
  const KnnResult delta_result =
      baseline::BruteForceCpu(queries, extra, kNeighbors);
  const std::vector<MergeSource> sources = {
      {&base_result, nullptr, 0, &dead},
      {&delta_result, delta_ids.data(), 0, nullptr},
  };
  const KnnResult merged = MergeMutableResults(sources, kNeighbors);

  // Oracle: live points in ascending stable-id order.
  std::vector<uint32_t> live_ids;
  for (uint32_t i = 0; i < 84; ++i) {
    if (dead.count(i) == 0) live_ids.push_back(i);
  }
  HostMatrix live(live_ids.size(), target.cols());
  for (size_t r = 0; r < live_ids.size(); ++r) {
    const HostMatrix& from = live_ids[r] < 80 ? target : extra;
    const size_t row = live_ids[r] < 80 ? live_ids[r] : live_ids[r] - 80;
    for (size_t j = 0; j < target.cols(); ++j) {
      live.at(r, j) = from.at(row, j);
    }
  }
  const KnnResult whole =
      baseline::BruteForceCpu(queries, live, kNeighbors);
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (int i = 0; i < kNeighbors; ++i) {
      EXPECT_EQ(live_ids[whole.row(q)[i].index], merged.row(q)[i].index)
          << "query " << q << " rank " << i;
      EXPECT_EQ(whole.row(q)[i].distance, merged.row(q)[i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(AccumulateRunStatsTest, CountersAddAndSimTimeTakesMax) {
  KnnRunStats total;
  KnnRunStats a;
  a.distance_calcs = 100;
  a.total_pairs = 1000;
  a.sim_time_s = 0.5;
  a.landmarks_target = 10;
  KnnRunStats b;
  b.distance_calcs = 50;
  b.total_pairs = 500;
  b.sim_time_s = 0.75;
  b.landmarks_target = 7;
  AccumulateRunStats(a, &total);
  AccumulateRunStats(b, &total);
  EXPECT_EQ(total.distance_calcs, 150u);
  EXPECT_EQ(total.total_pairs, 1500u);
  EXPECT_DOUBLE_EQ(total.sim_time_s, 0.75);
  EXPECT_EQ(total.landmarks_target, 17);
}

}  // namespace
}  // namespace sweetknn::core
