#include "core/knn_regressor.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn {
namespace {

TEST(KnnRegressorTest, RecoversSmoothFunction) {
  // f(x) = sin(4x) sampled densely on [0,1]; 5-NN mean approximates it.
  HostMatrix train(400, 1);
  std::vector<float> values(400);
  for (size_t i = 0; i < 400; ++i) {
    const float x = static_cast<float>(i) / 400.0f;
    train.at(i, 0) = x;
    values[i] = std::sin(4.0f * x);
  }
  KnnRegressor regressor(train, values);
  HostMatrix queries(50, 1);
  std::vector<float> truth(50);
  for (size_t i = 0; i < 50; ++i) {
    const float x = 0.01f + static_cast<float>(i) / 51.0f;
    queries.at(i, 0) = x;
    truth[i] = std::sin(4.0f * x);
  }
  EXPECT_LT(regressor.MseScore(queries, truth), 1e-3);
}

TEST(KnnRegressorTest, ExactAtTrainingPoints) {
  HostMatrix train(3, 1);
  train.at(0, 0) = 0.0f;
  train.at(1, 0) = 10.0f;
  train.at(2, 0) = 20.0f;
  KnnRegressor::Options options;
  options.k = 1;
  KnnRegressor regressor(train, {5.0f, 7.0f, 9.0f}, options);
  HostMatrix query(1, 1);
  query.at(0, 0) = 10.0f;
  EXPECT_FLOAT_EQ(regressor.Predict(query)[0], 7.0f);
}

TEST(KnnRegressorTest, DistanceWeightingPullsTowardNearest) {
  HostMatrix train(2, 1);
  train.at(0, 0) = 0.0f;
  train.at(1, 0) = 1.0f;
  HostMatrix query(1, 1);
  query.at(0, 0) = 0.1f;
  KnnRegressor::Options plain;
  plain.k = 2;
  KnnRegressor mean(train, {0.0f, 10.0f}, plain);
  EXPECT_FLOAT_EQ(mean.Predict(query)[0], 5.0f);
  KnnRegressor::Options weighted = plain;
  weighted.distance_weighted = true;
  KnnRegressor pulled(train, {0.0f, 10.0f}, weighted);
  EXPECT_LT(pulled.Predict(query)[0], 2.0f);
}

TEST(KnnRegressorTest, PadsGracefullyWhenKExceedsTraining) {
  HostMatrix train(2, 1);
  train.at(1, 0) = 1.0f;
  KnnRegressor::Options options;
  options.k = 5;
  KnnRegressor regressor(train, {2.0f, 4.0f}, options);
  HostMatrix query(1, 1);
  query.at(0, 0) = 0.5f;
  EXPECT_FLOAT_EQ(regressor.Predict(query)[0], 3.0f);
}

}  // namespace
}  // namespace sweetknn
