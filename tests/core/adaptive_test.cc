#include "core/adaptive.h"

#include "gtest/gtest.h"

namespace sweetknn::core {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::TeslaK20c();

TEST(AdaptiveTest, PlacementThresholdsMatchPaperValues) {
  // Paper IV-D2: th1 = 48KB / 2048 = 24 bytes, th2 = 255 * 4 = 1020.
  EXPECT_EQ(PlacementThreshold1(kSpec), 24);
  EXPECT_EQ(PlacementThreshold2(kSpec), 1020);
}

TEST(AdaptiveTest, FilterRuleKOverD) {
  TiOptions options;
  // k=512, d=29: k/d = 17.7 > 8 -> partial.
  EXPECT_EQ(DecideConfiguration(kSpec, options, 10000, 10000, 29, 512, 300)
                .filter,
            Level2Filter::kPartial);
  // k=512, d=281: k/d = 1.8 -> full.
  EXPECT_EQ(DecideConfiguration(kSpec, options, 10000, 10000, 281, 512, 300)
                .filter,
            Level2Filter::kFull);
  // k=20, d=4: k/d = 5 -> full (matches the paper: partial only at 512).
  EXPECT_EQ(
      DecideConfiguration(kSpec, options, 10000, 10000, 4, 20, 300).filter,
      Level2Filter::kFull);
}

TEST(AdaptiveTest, PlacementFollowsFig8) {
  TiOptions options;
  // 4k <= 24 -> shared memory.
  EXPECT_EQ(DecideConfiguration(kSpec, options, 10000, 10000, 32, 6, 300)
                .placement,
            KnearestsPlacement::kShared);
  // 24 < 4k <= 1020 -> registers.
  EXPECT_EQ(DecideConfiguration(kSpec, options, 10000, 10000, 32, 20, 300)
                .placement,
            KnearestsPlacement::kRegisters);
  EXPECT_EQ(DecideConfiguration(kSpec, options, 10000, 10000, 32, 255, 300)
                .placement,
            KnearestsPlacement::kRegisters);
  // 4k > 1020 -> global memory.
  EXPECT_EQ(DecideConfiguration(kSpec, options, 10000, 10000, 32, 256, 300)
                .placement,
            KnearestsPlacement::kGlobal);
}

TEST(AdaptiveTest, LargeQuerySetsUseQueryParallelism) {
  TiOptions options;
  // r * max_cur = 0.25 * 26624 = 6656; |Q| = 10000 >= 6656.
  const AdaptiveDecision d =
      DecideConfiguration(kSpec, options, 10000, 10000, 32, 20, 300);
  EXPECT_EQ(d.threads_per_query, 1);
  EXPECT_EQ(d.inner_stride, 1);
}

TEST(AdaptiveTest, ArceneScaleMatchesPaperExample) {
  // Paper IV-D3: 2048*13/(4*100) = 66 threads per query for arcene; the
  // inner factor follows |T|/|CT| = 100/30 ~ 3.
  TiOptions options;
  const AdaptiveDecision d =
      DecideConfiguration(kSpec, options, 100, 100, 10000, 20, 30);
  EXPECT_EQ(d.threads_per_query, 66);
  EXPECT_EQ(d.inner_stride, 3);
}

TEST(AdaptiveTest, DorScaleMatchesPaperExample) {
  // Paper: (2048*13)/(4*1950) = 3.4 -> a handful of threads per query.
  TiOptions options;
  const AdaptiveDecision d =
      DecideConfiguration(kSpec, options, 1950, 1950, 100000, 20, 132);
  EXPECT_GE(d.threads_per_query, 3);
  EXPECT_LE(d.threads_per_query, 4);
}

TEST(AdaptiveTest, OverridesAreHonoredExactly) {
  TiOptions options;
  options.filter_override = Level2Filter::kPartial;
  options.placement_override = KnearestsPlacement::kShared;
  options.threads_per_query_override = 8;
  const AdaptiveDecision d =
      DecideConfiguration(kSpec, options, 100, 100, 64, 20, 30);
  EXPECT_EQ(d.filter, Level2Filter::kPartial);
  EXPECT_EQ(d.placement, KnearestsPlacement::kShared);
  EXPECT_EQ(d.threads_per_query, 8);
  EXPECT_EQ(8 % d.inner_stride, 0);  // Must divide the forced count.
}

TEST(AdaptiveTest, PartialFilterDisablesMultiThreading) {
  TiOptions options;  // k/d > 8 with few queries.
  const AdaptiveDecision d =
      DecideConfiguration(kSpec, options, 100, 100, 4, 64, 30);
  EXPECT_EQ(d.filter, Level2Filter::kPartial);
  EXPECT_EQ(d.threads_per_query, 1);
}

TEST(AdaptiveTest, DisabledElasticityForcesSingleThread) {
  TiOptions options = TiOptions::BasicTi();
  const AdaptiveDecision d =
      DecideConfiguration(kSpec, options, 100, 100, 64, 20, 30);
  EXPECT_EQ(d.threads_per_query, 1);
}

TEST(AdaptiveTest, InnerStrideDividesThreadsPerQuery) {
  TiOptions options;
  for (size_t nq : {37, 100, 500, 1000, 3000}) {
    for (int ct : {3, 10, 55, 200}) {
      const AdaptiveDecision d =
          DecideConfiguration(kSpec, options, nq, 4096, 64, 20, ct);
      ASSERT_GT(d.inner_stride, 0);
      EXPECT_EQ(d.threads_per_query % d.inner_stride, 0)
          << "nq=" << nq << " ct=" << ct;
    }
  }
}

}  // namespace
}  // namespace sweetknn::core
