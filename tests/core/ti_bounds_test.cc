#include "core/ti_bounds.h"

#include "common/matrix.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace sweetknn::core {
namespace {

/// Random point in [0,1)^d.
void RandomPoint(Rng* rng, float* out, size_t dims) {
  for (size_t i = 0; i < dims; ++i) out[i] = rng->NextFloat();
}

TEST(TiBoundsTest, OneLandmarkBoundsHoldForRandomTriples) {
  Rng rng(71);
  constexpr size_t kDims = 6;
  for (int trial = 0; trial < 500; ++trial) {
    float q[kDims];
    float t[kDims];
    float landmark[kDims];
    RandomPoint(&rng, q, kDims);
    RandomPoint(&rng, t, kDims);
    RandomPoint(&rng, landmark, kDims);
    const float d_q_l = EuclideanDistance(q, landmark, kDims);
    const float d_t_l = EuclideanDistance(t, landmark, kDims);
    const float d_q_t = EuclideanDistance(q, t, kDims);
    EXPECT_LE(OneLandmarkLowerBound(d_q_l, d_t_l), d_q_t + 1e-5f);
    EXPECT_GE(OneLandmarkUpperBound(d_q_l, d_t_l), d_q_t - 1e-5f);
  }
}

TEST(TiBoundsTest, TwoLandmarkBoundsHoldForRandomQuadruples) {
  Rng rng(72);
  constexpr size_t kDims = 5;
  for (int trial = 0; trial < 500; ++trial) {
    float q[kDims];
    float t[kDims];
    float l1[kDims];
    float l2[kDims];
    RandomPoint(&rng, q, kDims);
    RandomPoint(&rng, t, kDims);
    RandomPoint(&rng, l1, kDims);
    RandomPoint(&rng, l2, kDims);
    const float d_l1_l2 = EuclideanDistance(l1, l2, kDims);
    const float d_q_l1 = EuclideanDistance(q, l1, kDims);
    const float d_l2_t = EuclideanDistance(l2, t, kDims);
    const float d_q_t = EuclideanDistance(q, t, kDims);
    EXPECT_LE(TwoLandmarkLowerBound(d_l1_l2, d_q_l1, d_l2_t), d_q_t + 1e-5f);
    EXPECT_GE(TwoLandmarkUpperBound(d_l1_l2, d_q_l1, d_l2_t), d_q_t - 1e-5f);
  }
}

TEST(TiBoundsTest, SignedPointBoundAbsIsLowerBound) {
  Rng rng(73);
  constexpr size_t kDims = 4;
  for (int trial = 0; trial < 500; ++trial) {
    float q[kDims];
    float t[kDims];
    float center[kDims];
    RandomPoint(&rng, q, kDims);
    RandomPoint(&rng, t, kDims);
    RandomPoint(&rng, center, kDims);
    const float lb = SignedPointBound(EuclideanDistance(q, center, kDims),
                                      EuclideanDistance(t, center, kDims));
    EXPECT_LE(std::fabs(lb), EuclideanDistance(q, t, kDims) + 1e-5f);
  }
}

TEST(TiBoundsTest, BoundsAreTightAtDegeneratePlacements) {
  // t == landmark: both one-landmark bounds collapse to the true distance.
  const float d_q_l = 0.7f;
  EXPECT_FLOAT_EQ(OneLandmarkLowerBound(d_q_l, 0.0f), d_q_l);
  EXPECT_FLOAT_EQ(OneLandmarkUpperBound(d_q_l, 0.0f), d_q_l);
}

}  // namespace
}  // namespace sweetknn::core
