#include "core/ti_knn_gpu.h"

#include <tuple>

#include "baseline/brute_force_cpu.h"
#include "core/sweet_knn.h"
#include "dataset/paper_datasets.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using core::KnearestsLayout;
using core::KnearestsPlacement;
using core::KnnRunStats;
using core::Level2Filter;
using core::PointLayout;
using core::TiKnnEngine;
using core::TiOptions;
using testing::ClusteredPoints;
using testing::ExpectResultsMatch;
using testing::UniformPoints;

gpusim::Device MakeDevice() {
  return gpusim::Device(gpusim::DeviceSpec::TeslaK20c());
}

TEST(TiKnnGpuTest, BasicTiMatchesBruteForceOnClusteredData) {
  const HostMatrix points = ClusteredPoints(400, 8, 6, 42);
  gpusim::Device dev = MakeDevice();
  KnnRunStats stats;
  const KnnResult result = TiKnnEngine::RunOnce(
      &dev, points, points, 5, TiOptions::BasicTi(), &stats);
  const KnnResult expected = baseline::BruteForceCpu(points, points, 5);
  ExpectResultsMatch(expected, result);
  EXPECT_GT(stats.SavedFraction(), 0.3);
}

TEST(TiKnnGpuTest, SweetMatchesBruteForceOnClusteredData) {
  const HostMatrix points = ClusteredPoints(400, 8, 6, 43);
  gpusim::Device dev = MakeDevice();
  KnnRunStats stats;
  const KnnResult result =
      TiKnnEngine::RunOnce(&dev, points, points, 5, TiOptions::Sweet(),
                           &stats);
  const KnnResult expected = baseline::BruteForceCpu(points, points, 5);
  ExpectResultsMatch(expected, result);
}

TEST(TiKnnGpuTest, SweetMatchesBruteForceOnUniformData) {
  const HostMatrix points = UniformPoints(300, 5, 44);
  gpusim::Device dev = MakeDevice();
  const KnnResult result =
      TiKnnEngine::RunOnce(&dev, points, points, 7, TiOptions::Sweet(),
                           nullptr);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 7), result);
}

TEST(TiKnnGpuTest, DistinctQueryAndTargetSets) {
  const HostMatrix query = ClusteredPoints(150, 6, 4, 45);
  const HostMatrix target = ClusteredPoints(350, 6, 5, 46);
  gpusim::Device dev = MakeDevice();
  const KnnResult result = TiKnnEngine::RunOnce(
      &dev, query, target, 4, TiOptions::Sweet(), nullptr);
  ExpectResultsMatch(baseline::BruteForceCpu(query, target, 4), result);
}

TEST(TiKnnGpuTest, PartialFilterMatchesBruteForce) {
  // k/d > 8 so the adaptive scheme picks the partial filter: d=2, k=20.
  const HostMatrix points = ClusteredPoints(300, 2, 5, 47);
  gpusim::Device dev = MakeDevice();
  KnnRunStats stats;
  const KnnResult result = TiKnnEngine::RunOnce(
      &dev, points, points, 20, TiOptions::Sweet(), &stats);
  EXPECT_EQ(stats.filter_used, Level2Filter::kPartial);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 20), result);
}

TEST(TiKnnGpuTest, MultiThreadPerQueryMatchesBruteForce) {
  // Few queries -> the adaptive scheme uses many threads per query.
  const HostMatrix points = ClusteredPoints(80, 16, 3, 48);
  gpusim::Device dev = MakeDevice();
  KnnRunStats stats;
  const KnnResult result = TiKnnEngine::RunOnce(
      &dev, points, points, 6, TiOptions::Sweet(), &stats);
  EXPECT_GT(stats.threads_per_query, 1);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 6), result);
}

TEST(TiKnnGpuTest, KLargerThanTargetSetPadsWithInvalid) {
  const HostMatrix query = ClusteredPoints(40, 4, 2, 49);
  const HostMatrix target = ClusteredPoints(5, 4, 2, 50);
  gpusim::Device dev = MakeDevice();
  const KnnResult result = TiKnnEngine::RunOnce(
      &dev, query, target, 8, TiOptions::Sweet(), nullptr);
  const KnnResult expected = baseline::BruteForceCpu(query, target, 8);
  ExpectResultsMatch(expected, result);
  EXPECT_EQ(result.row(0)[5].index, kInvalidNeighbor);
}

// Every combination of placement, layout, remap and point layout must
// return identical (correct) neighbors — only performance may differ.
class Level2ConfigTest
    : public ::testing::TestWithParam<
          std::tuple<KnearestsPlacement, KnearestsLayout, bool,
                     PointLayout>> {};

TEST_P(Level2ConfigTest, MatchesBruteForce) {
  const auto [placement, layout, remap, point_layout] = GetParam();
  const HostMatrix points = ClusteredPoints(250, 10, 5, 51);
  TiOptions options = TiOptions::Sweet();
  options.placement_override = placement;
  options.knearests_layout = layout;
  options.remap_threads = remap;
  options.layout = point_layout;
  options.filter_override = Level2Filter::kFull;
  gpusim::Device dev = MakeDevice();
  const KnnResult result =
      TiKnnEngine::RunOnce(&dev, points, points, 5, options, nullptr);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 5), result);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, Level2ConfigTest,
    ::testing::Combine(
        ::testing::Values(KnearestsPlacement::kGlobal,
                          KnearestsPlacement::kShared,
                          KnearestsPlacement::kRegisters),
        ::testing::Values(KnearestsLayout::kBlocked,
                          KnearestsLayout::kInterleaved),
        ::testing::Bool(),
        ::testing::Values(PointLayout::kRowMajor,
                          PointLayout::kColumnMajor)));

}  // namespace
}  // namespace sweetknn
