#include "core/level1.h"

#include <algorithm>

#include "baseline/brute_force_cpu.h"
#include "core/ti_bounds.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

using testing::ClusteredPoints;

struct Level1Fixture {
  gpusim::Device dev{gpusim::DeviceSpec::TeslaK20c()};
  HostMatrix points;
  DevicePoints d_points;
  QueryClustering qc;
  TargetClustering tc;
  Level1Result l1;
  KnnResult truth;
  int k;

  Level1Fixture(size_t n, size_t dims, int k_in, uint64_t seed)
      : points(ClusteredPoints(n, dims, 5, seed)), k(k_in) {
    d_points =
        DevicePoints::Upload(&dev, points, PointLayout::kRowMajor, "p");
    ClusteringConfig cfg;
    tc = BuildTargetClustering(&dev, d_points, cfg);
    qc = QueryClusteringFromTarget(&dev, d_points, tc);
    l1 = RunLevel1(&dev, qc, tc, k, 256);
    truth = baseline::BruteForceCpu(points, points, k);
  }
};

// The central soundness invariant: the per-cluster upper bound must
// dominate every member query's true kth-nearest distance. (The bug that
// motivated the kNearests-seeding deviation was caught by exactly this
// property.)
TEST(Level1Test, ClusterUbDominatesTrueKthDistance) {
  Level1Fixture f(400, 8, 5, 101);
  for (size_t q = 0; q < 400; ++q) {
    const uint32_t cid = f.qc.assignment[q];
    EXPECT_GE(f.l1.cluster_ub[cid] + 1e-5f, f.truth.row(q)[f.k - 1].distance)
        << "query " << q;
  }
}

TEST(Level1Test, PooledKubsDominateRankwise) {
  Level1Fixture f(300, 6, 4, 102);
  for (size_t q = 0; q < 300; ++q) {
    const uint32_t cid = f.qc.assignment[q];
    std::vector<float> kubs(static_cast<size_t>(f.k));
    for (int j = 0; j < f.k; ++j) {
      kubs[static_cast<size_t>(j)] =
          f.l1.cluster_kubs[cid * static_cast<uint32_t>(f.k) +
                            static_cast<uint32_t>(j)];
    }
    std::sort(kubs.begin(), kubs.end());
    for (int j = 0; j < f.k; ++j) {
      EXPECT_GE(kubs[static_cast<size_t>(j)] + 1e-5f,
                f.truth.row(q)[j].distance)
          << "query " << q << " rank " << j;
    }
  }
}

// Completeness: every target cluster that holds one of a query's true k
// nearest neighbors must survive the group filter for that query's
// cluster.
TEST(Level1Test, CandidatesCoverTrueNeighborClusters) {
  Level1Fixture f(350, 7, 6, 103);
  // Build target-point -> cluster map.
  std::vector<uint32_t> cluster_of(350);
  for (int c = 0; c < f.tc.num_clusters; ++c) {
    for (uint32_t i = f.tc.member_offsets[c]; i < f.tc.member_offsets[c + 1];
         ++i) {
      cluster_of[f.tc.member_ids[i]] = static_cast<uint32_t>(c);
    }
  }
  for (size_t q = 0; q < 350; ++q) {
    const uint32_t cid = f.qc.assignment[q];
    std::set<uint32_t> candidates;
    for (uint32_t i = f.l1.cand_offsets[cid]; i < f.l1.cand_offsets[cid + 1];
         ++i) {
      candidates.insert(f.l1.cand_clusters[i]);
    }
    for (int j = 0; j < f.k; ++j) {
      const uint32_t neighbor = f.truth.row(q)[j].index;
      EXPECT_TRUE(candidates.count(cluster_of[neighbor]))
          << "query " << q << " neighbor " << neighbor;
    }
  }
}

TEST(Level1Test, CandidateListsSortedByCenterDistance) {
  Level1Fixture f(300, 5, 5, 104);
  for (int cq = 0; cq < f.qc.num_clusters; ++cq) {
    float prev = -1.0f;
    for (uint32_t i = f.l1.cand_offsets[cq]; i < f.l1.cand_offsets[cq + 1];
         ++i) {
      EXPECT_GE(f.l1.cand_center_dist[i], prev);
      prev = f.l1.cand_center_dist[i];
    }
  }
}

TEST(Level1Test, CandidateDistancesAreExactCenterDistances) {
  Level1Fixture f(250, 4, 3, 105);
  for (int cq = 0; cq < f.qc.num_clusters; ++cq) {
    for (uint32_t i = f.l1.cand_offsets[cq]; i < f.l1.cand_offsets[cq + 1];
         ++i) {
      const float expected =
          AccessorDistance(f.qc.centers.HostPoint(static_cast<size_t>(cq)),
                           f.tc.centers.HostPoint(f.l1.cand_clusters[i]), 4);
      EXPECT_NEAR(f.l1.cand_center_dist[i], expected, 1e-5f);
    }
  }
}

TEST(Level1Test, FilteringActuallyExcludesClusters) {
  // On clustered data the group filter must drop a large share of the
  // mq x mt pairs.
  Level1Fixture f(500, 8, 5, 106);
  const uint64_t pairs = static_cast<uint64_t>(f.qc.num_clusters) *
                         static_cast<uint64_t>(f.tc.num_clusters);
  EXPECT_LT(f.l1.total_candidates, pairs / 2);
  EXPECT_GT(f.l1.total_candidates, 0u);
}

}  // namespace
}  // namespace sweetknn::core
