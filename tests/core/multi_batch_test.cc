// The index-style PrepareTarget/RunQueries path under multiple uneven
// query batches: per-row answers must be bit-identical to one RunOnce
// over the concatenated query set, and every batch's stats must fold in
// the amortized target-preparation profile.

#include <cstring>
#include <vector>

#include "core/ti_knn_gpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

using ::sweetknn::testing::ClusteredPoints;

HostMatrix Slice(const HostMatrix& m, size_t begin, size_t rows) {
  HostMatrix out(rows, m.cols());
  std::memcpy(out.mutable_data(), m.row(begin),
              rows * m.cols() * sizeof(float));
  return out;
}

double PrepLaunchTime(const gpusim::Profile& profile) {
  double total = 0.0;
  for (const gpusim::LaunchRecord& record : profile.launches) {
    if (record.kernel_name.find("target") != std::string::npos) {
      total += record.sim_time_s;
    }
  }
  return total;
}

TEST(MultiBatchTest, ThreeUnevenBatchesEqualSingleRunOnce) {
  const HostMatrix target = ClusteredPoints(380, 5, 4, 601);
  const HostMatrix queries = ClusteredPoints(120, 5, 3, 602);
  constexpr int kNeighbors = 6;

  gpusim::Device single_dev(gpusim::DeviceSpec::TeslaK20c());
  const KnnResult reference = TiKnnEngine::RunOnce(
      &single_dev, queries, target, kNeighbors, TiOptions::Sweet(), nullptr);

  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  TiKnnEngine engine(&dev, TiOptions::Sweet());
  engine.PrepareTarget(target);

  const std::vector<size_t> batch_rows = {37, 5, 78};  // uneven, sums to 120
  size_t begin = 0;
  std::vector<KnnRunStats> batch_stats;
  for (size_t rows : batch_rows) {
    KnnRunStats stats;
    const KnnResult batch = engine.RunQueries(
        Slice(queries, begin, rows), kNeighbors, &stats);
    ASSERT_EQ(batch.num_queries(), rows);
    for (size_t q = 0; q < rows; ++q) {
      for (int i = 0; i < kNeighbors; ++i) {
        ASSERT_EQ(reference.row(begin + q)[i].index, batch.row(q)[i].index)
            << "query " << begin + q << " rank " << i;
        ASSERT_EQ(reference.row(begin + q)[i].distance,
                  batch.row(q)[i].distance)
            << "query " << begin + q << " rank " << i;
      }
    }
    batch_stats.push_back(std::move(stats));
    begin += rows;
  }

  // Every batch amortizes the same target preparation: its launches are
  // spliced into each batch profile with identical total simulated time.
  const double prep0 = PrepLaunchTime(batch_stats[0].profile);
  EXPECT_GT(prep0, 0.0);
  for (const KnnRunStats& stats : batch_stats) {
    EXPECT_DOUBLE_EQ(PrepLaunchTime(stats.profile), prep0);
    EXPECT_GT(stats.sim_time_s, prep0);  // plus per-batch query work
  }

  // Work counters are per batch, not cumulative across batches.
  EXPECT_EQ(batch_stats[0].total_pairs, 37u * 380u);
  EXPECT_EQ(batch_stats[1].total_pairs, 5u * 380u);
  EXPECT_EQ(batch_stats[2].total_pairs, 78u * 380u);
  for (const KnnRunStats& stats : batch_stats) {
    EXPECT_GT(stats.distance_calcs, 0u);
    EXPECT_LE(stats.distance_calcs, stats.total_pairs);
  }
}

TEST(MultiBatchTest, BatchSimTimesAreReproducible) {
  // Running the same batch against two independently prepared engines
  // yields the same simulated time: the amortized profile is a pure
  // function of the target set and options.
  const HostMatrix target = ClusteredPoints(250, 4, 4, 603);
  const HostMatrix batch = ClusteredPoints(40, 4, 2, 604);
  double times[2];
  for (int round = 0; round < 2; ++round) {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    TiKnnEngine engine(&dev, TiOptions::Sweet());
    engine.PrepareTarget(target);
    KnnRunStats stats;
    engine.RunQueries(batch, 5, &stats);
    times[round] = stats.sim_time_s;
  }
  EXPECT_DOUBLE_EQ(times[0], times[1]);
}

}  // namespace
}  // namespace sweetknn::core
