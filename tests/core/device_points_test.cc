#include "core/device_points.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

HostMatrix SmallMatrix() {
  HostMatrix m(4, 6);
  for (size_t p = 0; p < 4; ++p) {
    for (size_t j = 0; j < 6; ++j) {
      m.at(p, j) = static_cast<float>(p * 10 + j);
    }
  }
  return m;
}

class DevicePointsTest : public ::testing::Test {
 protected:
  DevicePointsTest() : dev_(gpusim::DeviceSpec::TeslaK20c()) {}
  gpusim::Device dev_;
};

TEST_F(DevicePointsTest, RowMajorRoundTrip) {
  const HostMatrix m = SmallMatrix();
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  EXPECT_EQ(pts.n(), 4u);
  EXPECT_EQ(pts.dims(), 6u);
  for (size_t p = 0; p < 4; ++p) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(pts.At(p, j), m.at(p, j));
      EXPECT_EQ(pts.HostPoint(p)[j], m.at(p, j));
    }
  }
}

TEST_F(DevicePointsTest, ColumnMajorRoundTrip) {
  const HostMatrix m = SmallMatrix();
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kColumnMajor, "p");
  for (size_t p = 0; p < 4; ++p) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(pts.At(p, j), m.at(p, j));
      EXPECT_EQ(pts.HostPoint(p)[j], m.at(p, j));
    }
  }
}

TEST_F(DevicePointsTest, AccessorDistanceMatchesHost) {
  const HostMatrix m = testing::UniformPoints(10, 8, 81);
  const DevicePoints row =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "r");
  const DevicePoints col =
      DevicePoints::Upload(&dev_, m, PointLayout::kColumnMajor, "c");
  for (size_t a = 0; a < 10; ++a) {
    const float expected = EuclideanDistance(m.row(a), m.row(0), 8);
    EXPECT_NEAR(AccessorDistance(row.HostPoint(a), row.HostPoint(0), 8),
                expected, 1e-5f);
    EXPECT_NEAR(AccessorDistance(col.HostPoint(a), col.HostPoint(0), 8),
                expected, 1e-5f);
  }
}

TEST_F(DevicePointsTest, KernelLoadsDeliverCorrectValues) {
  const HostMatrix m = SmallMatrix();
  for (PointLayout layout :
       {PointLayout::kRowMajor, PointLayout::kColumnMajor}) {
    const DevicePoints pts = DevicePoints::Upload(&dev_, m, layout, "p");
    dev_.Launch(gpusim::KernelMeta{"probe", 32, 0},
                gpusim::LaunchConfig{1, 4}, [&](gpusim::Warp& w) {
      pts.LoadPoints(w, [&](int lane) { return lane; },
                     [&](int lane, PointAccessor acc) {
                       for (size_t j = 0; j < 6; ++j) {
                         EXPECT_EQ(acc[j],
                                   m.at(static_cast<size_t>(lane), j));
                       }
                     });
    });
  }
}

TEST_F(DevicePointsTest, VectorWidthChangesInstructionCount) {
  const HostMatrix m = testing::UniformPoints(32, 16, 82);
  const DevicePoints scalar =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "s", 1);
  const DevicePoints vec4 =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "v", 4);
  auto measure = [&](const DevicePoints& pts) {
    const auto& rec = dev_.Launch(
        gpusim::KernelMeta{"probe", 32, 0}, gpusim::LaunchConfig{1, 32},
        [&](gpusim::Warp& w) {
          pts.LoadPoints(w, [](int lane) { return lane; },
                         [](int, PointAccessor) {});
        });
    return rec.stats.global_load_instructions;
  };
  EXPECT_EQ(measure(scalar), 16u);
  EXPECT_EQ(measure(vec4), 4u);
}

TEST_F(DevicePointsTest, GatherRowsCopiesSelection) {
  const HostMatrix m = SmallMatrix();
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  const DevicePoints centers =
      DevicePoints::GatherRows(&dev_, pts, {2, 0}, "centers");
  EXPECT_EQ(centers.n(), 2u);
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(centers.At(0, j), m.at(2, j));
    EXPECT_EQ(centers.At(1, j), m.at(0, j));
  }
}

TEST_F(DevicePointsTest, GatherRowsPreservesLayout) {
  const HostMatrix m = SmallMatrix();
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kColumnMajor, "p");
  const DevicePoints centers =
      DevicePoints::GatherRows(&dev_, pts, {1, 3}, "centers");
  EXPECT_EQ(centers.layout(), PointLayout::kColumnMajor);
  EXPECT_EQ(centers.At(1, 5), m.at(3, 5));
}

TEST(DistanceOpCostTest, ScalesWithDims) {
  EXPECT_EQ(DistanceOpCost(1), 6u);
  EXPECT_EQ(DistanceOpCost(100), 204u);
}

}  // namespace
}  // namespace sweetknn::core
