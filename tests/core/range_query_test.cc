// Boundary-condition suite for the range modalities (ISSUE 10 satellite):
// r = 0, r exactly on a pair distance (the closed-ball tie must be
// included deterministically), empty result sets, all-tombstoned
// indexes, self-match exclusion and duplicate handling in SelfJoin, and
// cross-route / merge bit-identity. docs/modalities.md states the
// semantics these tests pin down.

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/range_search.h"
#include "core/sweet_knn.h"
#include "gtest/gtest.h"
#include "simd/simd_kernels.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;

SweetKnn::Config ForcedConfig(core::PlannerMode mode) {
  SweetKnn::Config config;
  config.planner.mode = mode;
  return config;
}

/// O(n^2) oracle: closed-ball matches of `query` over (id, point) pairs,
/// through the same canonical distance kernel every route runs.
std::vector<Neighbor> OracleRange(const float* query,
                                  const std::vector<uint32_t>& ids,
                                  const HostMatrix& points, float radius) {
  std::vector<float> dists(points.rows());
  if (points.rows() > 0) {
    simd::QueryBlockDistances(query, points.data(), points.rows(),
                              points.cols(), simd::Dist::kEuclidean,
                              dists.data());
  }
  std::vector<Neighbor> out;
  for (size_t i = 0; i < points.rows(); ++i) {
    if (dists[i] <= radius) out.push_back(Neighbor{ids[i], dists[i]});
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

void ExpectRowEquals(const RangeResult& result, size_t q,
                     const std::vector<Neighbor>& expected) {
  ASSERT_EQ(result.count(q), expected.size());
  const Neighbor* row = result.begin(q);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(row[i].index, expected[i].index) << "q=" << q << " i=" << i;
    EXPECT_EQ(row[i].distance, expected[i].distance)
        << "q=" << q << " i=" << i;
  }
}

TEST(RangeQueryTest, BoundaryTieIncludedExactly) {
  // (0,0) -> (3,4) is exactly 5.0f in float; the closed ball at r = 5
  // must include it, and the next float below 5 must not.
  HostMatrix target(3, 2);
  target.at(0, 0) = 0.0f;
  target.at(0, 1) = 0.0f;
  target.at(1, 0) = 3.0f;
  target.at(1, 1) = 4.0f;
  target.at(2, 0) = 50.0f;
  target.at(2, 1) = 50.0f;
  HostMatrix query(1, 2);  // at the origin
  for (const core::PlannerMode mode :
       {core::PlannerMode::kForceDevice, core::PlannerMode::kForceHost}) {
    SweetKnnIndex index(target, ForcedConfig(mode));
    const RangeResult at = index.RadiusSearch(query, 5.0f);
    ExpectRowEquals(at, 0, {Neighbor{0, 0.0f}, Neighbor{1, 5.0f}});
    const RangeResult below =
        index.RadiusSearch(query, std::nextafterf(5.0f, 0.0f));
    ExpectRowEquals(below, 0, {Neighbor{0, 0.0f}});
  }
}

TEST(RangeQueryTest, RadiusZeroMatchesExactDuplicatesOnly) {
  HostMatrix target(4, 3);
  for (size_t i = 0; i < 3; ++i) {
    target.at(0, i) = 1.25f;
    target.at(1, i) = 1.25f;  // exact duplicate of row 0
    target.at(2, i) = 1.25f + 1e-6f;
    target.at(3, i) = 9.0f;
  }
  HostMatrix query(1, 3);
  for (size_t i = 0; i < 3; ++i) query.at(0, i) = 1.25f;
  for (const core::PlannerMode mode :
       {core::PlannerMode::kForceDevice, core::PlannerMode::kForceHost}) {
    SweetKnnIndex index(target, ForcedConfig(mode));
    const RangeResult r = index.RadiusSearch(query, 0.0f);
    ExpectRowEquals(r, 0, {Neighbor{0, 0.0f}, Neighbor{1, 0.0f}});
  }
}

TEST(RangeQueryTest, EmptyResultRows) {
  const HostMatrix target = ClusteredPoints(64, 4, 3, 901);
  HostMatrix query(2, 4);
  for (size_t j = 0; j < 4; ++j) {
    query.at(0, j) = 1000.0f;
    query.at(1, j) = -1000.0f;
  }
  for (const core::PlannerMode mode :
       {core::PlannerMode::kForceDevice, core::PlannerMode::kForceHost}) {
    SweetKnnIndex index(target, ForcedConfig(mode));
    const RangeResult r = index.RadiusSearch(query, 0.01f);
    EXPECT_EQ(r.count(0), 0u);
    EXPECT_EQ(r.count(1), 0u);
    EXPECT_EQ(r.total_matches(), 0u);
  }
}

TEST(RangeQueryTest, AllTombstonedAnswersEmpty) {
  const HostMatrix target = ClusteredPoints(40, 3, 2, 902);
  SweetKnnIndex index(target, ForcedConfig(core::PlannerMode::kForceDevice));
  for (uint32_t id = 0; id < 40; ++id) {
    EXPECT_TRUE(index.Remove(id));
  }
  HostMatrix query(1, 3);
  const RangeResult r = index.RadiusSearch(query, 1e9f);
  EXPECT_EQ(r.count(0), 0u);
  EXPECT_TRUE(index.SelfJoin(1e9f).empty());
  const SweetKnnIndex::KnnGraphResult graph = index.KnnGraph(3);
  EXPECT_TRUE(graph.ids.empty());
  EXPECT_EQ(graph.neighbors.num_queries(), 0u);
}

TEST(RangeQueryTest, SelfJoinExcludesSelfKeepsDuplicates) {
  HostMatrix target(4, 2);
  target.at(0, 0) = 1.0f;  // ids 0 and 1 are exact duplicates
  target.at(1, 0) = 1.0f;
  target.at(2, 0) = 1.5f;
  target.at(3, 0) = 40.0f;
  for (const core::PlannerMode mode :
       {core::PlannerMode::kForceDevice, core::PlannerMode::kForceHost}) {
    SweetKnnIndex index(target, ForcedConfig(mode));
    const std::vector<SelfJoinPair> dup = index.SelfJoin(0.0f);
    ASSERT_EQ(dup.size(), 1u);  // only the duplicate pair, no (i, i)
    EXPECT_EQ(dup[0], (SelfJoinPair{0, 1, 0.0f}));
    const std::vector<SelfJoinPair> wide = index.SelfJoin(0.5f);
    ASSERT_EQ(wide.size(), 3u);  // (0,1) (0,2) (1,2), each exactly once
    EXPECT_EQ(wide[0], (SelfJoinPair{0, 1, 0.0f}));
    EXPECT_EQ(wide[1], (SelfJoinPair{0, 2, 0.5f}));
    EXPECT_EQ(wide[2], (SelfJoinPair{1, 2, 0.5f}));
  }
}

TEST(RangeQueryTest, RoutesBitIdenticalAndMatchOracle) {
  const HostMatrix target = ClusteredPoints(300, 6, 5, 903);
  const HostMatrix queries = ClusteredPoints(37, 6, 5, 904);
  std::vector<uint32_t> ids(target.rows());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  SweetKnnIndex device_index(target,
                             ForcedConfig(core::PlannerMode::kForceDevice));
  SweetKnnIndex host_index(target,
                           ForcedConfig(core::PlannerMode::kForceHost));
  for (const float radius : {0.0f, 0.05f, 0.2f, 0.6f, 2.0f}) {
    core::RangeScanStats ti_stats;
    const RangeResult ti = device_index.RadiusSearch(queries, radius,
                                                     &ti_stats);
    const RangeResult full = host_index.RadiusSearch(queries, radius);
    EXPECT_TRUE(BitIdentical(ti, full)) << "radius=" << radius;
    EXPECT_LE(ti_stats.candidates, ti_stats.total_pairs);
    for (size_t q = 0; q < queries.rows(); ++q) {
      ExpectRowEquals(ti, q, OracleRange(queries.row(q), ids, target, radius));
    }
  }
}

TEST(RangeQueryTest, TiPruningActuallyPrunes) {
  // Well-separated clusters at a small radius: level 1 must skip whole
  // clusters, so candidates stay well below the all-pairs count.
  const HostMatrix target = ClusteredPoints(400, 4, 8, 905, 0.01f);
  const HostMatrix queries = ClusteredPoints(20, 4, 8, 906, 0.01f);
  SweetKnnIndex index(target, ForcedConfig(core::PlannerMode::kForceDevice));
  core::RangeScanStats stats;
  index.RadiusSearch(queries, 0.05f, &stats);
  EXPECT_GT(stats.clusters_pruned, 0u);
  EXPECT_LT(stats.candidates, stats.total_pairs / 2);
}

TEST(RangeQueryTest, MutatedIndexMatchesOracle) {
  const HostMatrix target = ClusteredPoints(120, 5, 4, 907);
  const HostMatrix queries = ClusteredPoints(15, 5, 4, 908);
  Rng rng(909);
  for (const core::PlannerMode mode :
       {core::PlannerMode::kForceDevice, core::PlannerMode::kForceHost}) {
    SweetKnnIndex index(target, ForcedConfig(mode));
    // Mutate: remove a third of the base, insert fresh points.
    for (uint32_t id = 0; id < 120; id += 3) index.Remove(id);
    for (int i = 0; i < 30; ++i) {
      std::vector<float> p(5);
      for (float& v : p) v = rng.NextFloat() * 0.8f;
      index.Insert(p);
    }
    std::vector<uint32_t> ids;
    HostMatrix live;
    index.ExportLive(&ids, &live);
    for (const float radius : {0.0f, 0.1f, 0.4f}) {
      const RangeResult r = index.RadiusSearch(queries, radius);
      for (size_t q = 0; q < queries.rows(); ++q) {
        ExpectRowEquals(r, q, OracleRange(queries.row(q), ids, live, radius));
      }
    }
  }
}

TEST(RangeQueryTest, SelfJoinMatchesOracleOncePerPair) {
  const HostMatrix target = ClusteredPoints(90, 4, 3, 910);
  SweetKnnIndex index(target, ForcedConfig(core::PlannerMode::kForceDevice));
  const float radius = 0.15f;
  const std::vector<SelfJoinPair> pairs = index.SelfJoin(radius);
  // Oracle: every unordered pair once, a < b, ascending a then
  // (distance, b).
  std::vector<SelfJoinPair> expected;
  std::vector<float> dists(target.rows());
  for (size_t a = 0; a < target.rows(); ++a) {
    simd::QueryBlockDistances(target.row(a), target.data(), target.rows(),
                              target.cols(), simd::Dist::kEuclidean,
                              dists.data());
    std::vector<Neighbor> row;
    for (size_t b = a + 1; b < target.rows(); ++b) {
      if (dists[b] <= radius) {
        row.push_back(Neighbor{static_cast<uint32_t>(b), dists[b]});
      }
    }
    std::sort(row.begin(), row.end(), NeighborLess);
    for (const Neighbor& nb : row) {
      expected.push_back({static_cast<uint32_t>(a), nb.index, nb.distance});
    }
  }
  ASSERT_EQ(pairs.size(), expected.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i], expected[i]) << "pair " << i;
  }
}

TEST(RangeQueryTest, KnnGraphExactIncludingDuplicateHeavySets) {
  // 20 copies of one point plus a scattered tail: each duplicate's own
  // top-(k+1) can miss itself entirely (smaller-id duplicates fill it),
  // exercising the self-absent branch of the graph build.
  HostMatrix target(30, 3);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 3; ++j) target.at(i, j) = 0.5f;
  }
  for (size_t i = 20; i < 30; ++i) {
    target.at(i, 0) = static_cast<float>(i);
  }
  const int k = 4;
  SweetKnnIndex index(target, ForcedConfig(core::PlannerMode::kForceDevice));
  const SweetKnnIndex::KnnGraphResult graph = index.KnnGraph(k);
  ASSERT_EQ(graph.ids.size(), 30u);
  ASSERT_EQ(graph.neighbors.num_queries(), 30u);
  std::vector<float> dists(target.rows());
  for (size_t i = 0; i < 30; ++i) {
    simd::QueryBlockDistances(target.row(i), target.data(), target.rows(),
                              target.cols(), simd::Dist::kEuclidean,
                              dists.data());
    std::vector<Neighbor> all;
    for (size_t t = 0; t < 30; ++t) {
      if (t == i) continue;  // the graph excludes self
      all.push_back(Neighbor{static_cast<uint32_t>(t), dists[t]});
    }
    std::sort(all.begin(), all.end(), NeighborLess);
    const Neighbor* row = graph.neighbors.row(i);
    for (int j = 0; j < k; ++j) {
      EXPECT_EQ(row[j].index, all[static_cast<size_t>(j)].index)
          << "i=" << i << " j=" << j;
      EXPECT_EQ(row[j].distance, all[static_cast<size_t>(j)].distance)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(RangeQueryTest, KnnGraphPadsWhenFewerThanKOthers) {
  HostMatrix target(3, 2);
  target.at(1, 0) = 1.0f;
  target.at(2, 0) = 2.0f;
  SweetKnnIndex index(target, ForcedConfig(core::PlannerMode::kForceHost));
  const SweetKnnIndex::KnnGraphResult graph = index.KnnGraph(5);
  for (size_t i = 0; i < 3; ++i) {
    const Neighbor* row = graph.neighbors.row(i);
    EXPECT_NE(row[0].index, kInvalidNeighbor);
    EXPECT_NE(row[1].index, kInvalidNeighbor);
    for (int j = 2; j < 5; ++j) {
      EXPECT_EQ(row[j].index, kInvalidNeighbor);
    }
  }
}

TEST(RangeQueryTest, MergeRangeShardAnswersEqualsFlatScan) {
  const HostMatrix target = ClusteredPoints(200, 5, 4, 911);
  const HostMatrix queries = ClusteredPoints(11, 5, 4, 912);
  const float radius = 0.3f;
  // Flat scan over the whole set.
  const simd::PackedTargets whole =
      simd::PackedTargets::Pack(target.data(), target.rows(), target.cols());
  const RangeResult flat = core::FullRangeScan(queries, whole, radius,
                                               simd::Dist::kEuclidean);
  // Two shards, stable ids via per-shard offsets.
  std::vector<core::RangeShardAnswer> answers(2);
  const size_t split = 120;
  for (int s = 0; s < 2; ++s) {
    const size_t begin = s == 0 ? 0 : split;
    const size_t end = s == 0 ? split : target.rows();
    const simd::PackedTargets packed = simd::PackedTargets::Pack(
        target.row(begin), end - begin, target.cols());
    const RangeResult local = core::FullRangeScan(queries, packed, radius,
                                                  simd::Dist::kEuclidean);
    for (size_t q = 0; q < queries.rows(); ++q) {
      std::vector<Neighbor> row = local.Row(q);
      for (Neighbor& nb : row) nb.index += static_cast<uint32_t>(begin);
      answers[static_cast<size_t>(s)].result.AppendRow(row);
    }
  }
  const RangeResult merged =
      core::MergeRangeShardAnswers(answers, queries.rows());
  EXPECT_TRUE(BitIdentical(flat, merged));
}

}  // namespace
}  // namespace sweetknn
