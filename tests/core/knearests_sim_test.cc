#include "core/knearests_sim.h"

#include "common/rng.h"
#include "common/topk.h"
#include "gpusim/device.h"
#include "gtest/gtest.h"

namespace sweetknn::core {
namespace {

class KnearestsSimTest : public ::testing::Test {
 protected:
  KnearestsSimTest() : dev_(gpusim::DeviceSpec::TeslaK20c()) {}

  /// Runs one warp feeding `stream` candidates to every lane and returns
  /// the stats; `out` receives lane 0's final sorted neighbors.
  gpusim::KernelStats Run(int k, KnearestsPlacement placement,
                          KnearestsLayout layout,
                          const std::vector<Neighbor>& stream,
                          std::vector<Neighbor>* out) {
    gpusim::DeviceBuffer<float> pool;
    if (placement == KnearestsPlacement::kGlobal) {
      pool = dev_.Alloc<float>(32 * static_cast<size_t>(k), "pool");
    }
    const auto& rec = dev_.Launch(
        gpusim::KernelMeta{"knear", 32, 0}, gpusim::LaunchConfig{1, 32},
        [&](gpusim::Warp& w) {
          KnearestsSim knear(
              k, placement, layout,
              placement == KnearestsPlacement::kGlobal ? &pool : nullptr,
              32);
          knear.InitInfinity(w);
          for (const Neighbor& n : stream) {
            gpusim::Reg<float> dist;
            gpusim::Reg<uint32_t> idx;
            w.Op([&](int lane) {
              dist[lane] = n.distance;
              idx[lane] = n.index;
            });
            knear.TryInsert(w, dist, idx, [](int lane) { return lane; });
          }
          knear.ExtractSorted(w);
          if (out != nullptr) *out = knear.Lane(0);
        });
    return rec.stats;
  }

  gpusim::Device dev_;
};

TEST_F(KnearestsSimTest, MatchesTopKSelection) {
  Rng rng(7);
  std::vector<Neighbor> stream;
  TopK oracle(5);
  for (uint32_t i = 0; i < 200; ++i) {
    const Neighbor n{i, rng.NextFloat()};
    stream.push_back(n);
    oracle.PushIfCloser(n);
  }
  std::vector<Neighbor> got;
  Run(5, KnearestsPlacement::kRegisters, KnearestsLayout::kInterleaved,
      stream, &got);
  const auto expected = oracle.Sorted();
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(got[i], expected[i]);
}

TEST_F(KnearestsSimTest, PlaceholdersRemainWhenStreamIsShort) {
  std::vector<Neighbor> got;
  Run(4, KnearestsPlacement::kRegisters, KnearestsLayout::kInterleaved,
      {{9, 0.5f}}, &got);
  EXPECT_EQ(got[0].index, 9u);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(got[i].index, kInvalidNeighbor);
  }
}

TEST_F(KnearestsSimTest, GlobalPlacementChargesMemory) {
  Rng rng(8);
  std::vector<Neighbor> stream;
  for (uint32_t i = 0; i < 100; ++i) stream.push_back({i, rng.NextFloat()});
  const auto regs = Run(8, KnearestsPlacement::kRegisters,
                        KnearestsLayout::kInterleaved, stream, nullptr);
  const auto global = Run(8, KnearestsPlacement::kGlobal,
                          KnearestsLayout::kInterleaved, stream, nullptr);
  EXPECT_GT(global.global_transactions, regs.global_transactions);
}

TEST_F(KnearestsSimTest, InterleavedBeatsBlockedAtSmallK) {
  // Paper Fig. 6: layout 2 (interleaved) coalesces the scan.
  Rng rng(9);
  std::vector<Neighbor> stream;
  for (uint32_t i = 0; i < 200; ++i) stream.push_back({i, rng.NextFloat()});
  const auto blocked = Run(20, KnearestsPlacement::kGlobal,
                           KnearestsLayout::kBlocked, stream, nullptr);
  const auto inter = Run(20, KnearestsPlacement::kGlobal,
                         KnearestsLayout::kInterleaved, stream, nullptr);
  EXPECT_LT(inter.global_transactions, blocked.global_transactions);
}

TEST_F(KnearestsSimTest, InsertionCostGrowsWithK) {
  // The linear-array update makes each insertion O(k) — the effect the
  // partial filter exploits at large k (paper IV-B1).
  Rng rng(10);
  std::vector<Neighbor> stream;
  for (uint32_t i = 0; i < 300; ++i) stream.push_back({i, rng.NextFloat()});
  const auto k_small = Run(8, KnearestsPlacement::kRegisters,
                           KnearestsLayout::kInterleaved, stream, nullptr);
  const auto k_large = Run(128, KnearestsPlacement::kRegisters,
                           KnearestsLayout::kInterleaved, stream, nullptr);
  EXPECT_GT(k_large.warp_instructions, 2 * k_small.warp_instructions);
}

TEST_F(KnearestsSimTest, ResourceAccounting) {
  EXPECT_EQ(KnearestsSim::RegistersForPlacement(
                KnearestsPlacement::kRegisters, 20, 44),
            64);
  EXPECT_EQ(
      KnearestsSim::RegistersForPlacement(KnearestsPlacement::kGlobal, 20,
                                          44),
      44);
  EXPECT_EQ(KnearestsSim::SharedBytesForPlacement(
                KnearestsPlacement::kShared, 6, 256),
            256 * 24);
  EXPECT_EQ(KnearestsSim::SharedBytesForPlacement(
                KnearestsPlacement::kRegisters, 6, 256),
            0);
}

}  // namespace
}  // namespace sweetknn::core
