#include "core/level2.h"

#include "baseline/brute_force_cpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

using testing::ClusteredPoints;
using testing::ExpectResultsMatch;

struct Level2Fixture {
  gpusim::Device dev{gpusim::DeviceSpec::TeslaK20c()};
  HostMatrix points;
  DevicePoints d_points;
  QueryClustering qc;
  TargetClustering tc;
  Level1Result l1;
  int k;

  Level2Fixture(size_t n, size_t dims, int k_in, uint64_t seed)
      : points(ClusteredPoints(n, dims, 5, seed)), k(k_in) {
    d_points =
        DevicePoints::Upload(&dev, points, PointLayout::kRowMajor, "p");
    ClusteringConfig cfg;
    tc = BuildTargetClustering(&dev, d_points, cfg);
    qc = QueryClusteringFromTarget(&dev, d_points, tc);
    l1 = RunLevel1(&dev, qc, tc, k, 256);
  }

  Level2Config Config(Level2Filter filter) const {
    Level2Config cfg;
    cfg.k = k;
    cfg.filter = filter;
    cfg.placement = KnearestsPlacement::kRegisters;
    cfg.remap = true;
    cfg.threads_per_query = 1;
    cfg.inner_stride = 1;
    return cfg;
  }
};

TEST(Level2Test, PartitionedRunsEqualSingleRun) {
  Level2Fixture f(300, 6, 5, 111);
  const Level2Config cfg = f.Config(Level2Filter::kFull);

  KnnResult whole(300, f.k);
  Level2Stats stats_whole;
  RunLevel2(&f.dev, f.d_points, f.d_points, f.qc, f.tc, f.l1, cfg, 0, 300,
            &whole, &stats_whole);

  KnnResult split(300, f.k);
  Level2Stats stats_split;
  RunLevel2(&f.dev, f.d_points, f.d_points, f.qc, f.tc, f.l1, cfg, 0, 120,
            &split, &stats_split);
  RunLevel2(&f.dev, f.d_points, f.d_points, f.qc, f.tc, f.l1, cfg, 120, 300,
            &split, &stats_split);

  ExpectResultsMatch(whole, split);
  EXPECT_EQ(stats_whole.distance_calcs, stats_split.distance_calcs);
}

TEST(Level2Test, PartialAndFullFiltersAgree) {
  Level2Fixture f(280, 5, 6, 112);
  KnnResult full(280, f.k);
  Level2Stats s_full;
  RunLevel2(&f.dev, f.d_points, f.d_points, f.qc, f.tc, f.l1,
            f.Config(Level2Filter::kFull), 0, 280, &full, &s_full);
  KnnResult partial(280, f.k);
  Level2Stats s_partial;
  RunLevel2(&f.dev, f.d_points, f.d_points, f.qc, f.tc, f.l1,
            f.Config(Level2Filter::kPartial), 0, 280, &partial, &s_partial);
  ExpectResultsMatch(full, partial);
  ExpectResultsMatch(baseline::BruteForceCpu(f.points, f.points, f.k),
                     partial);
  // The frozen-theta partial filter computes at least as many distances.
  EXPECT_GE(s_partial.distance_calcs, s_full.distance_calcs);
}

TEST(Level2Test, MultiThreadVariantsAgree) {
  Level2Fixture f(96, 8, 4, 113);
  const KnnResult expected = baseline::BruteForceCpu(f.points, f.points,
                                                     f.k);
  for (const auto& [tpq, fi] : {std::pair<int, int>{4, 2},
                               std::pair<int, int>{8, 4},
                               std::pair<int, int>{6, 3},
                               std::pair<int, int>{16, 1}}) {
    Level2Config cfg = f.Config(Level2Filter::kFull);
    cfg.threads_per_query = tpq;
    cfg.inner_stride = fi;
    KnnResult result(96, f.k);
    Level2Stats stats;
    RunLevel2(&f.dev, f.d_points, f.d_points, f.qc, f.tc, f.l1, cfg, 0, 96,
              &result, &stats);
    ExpectResultsMatch(expected, result);
  }
}

TEST(Level2Test, SavedComputationsReportedAgainstTotalPairs) {
  Level2Fixture f(320, 6, 5, 114);
  KnnResult result(320, f.k);
  Level2Stats stats;
  RunLevel2(&f.dev, f.d_points, f.d_points, f.qc, f.tc, f.l1,
            f.Config(Level2Filter::kFull), 0, 320, &result, &stats);
  EXPECT_GT(stats.distance_calcs, 0u);
  EXPECT_LT(stats.distance_calcs, 320u * 320u / 2);
}

TEST(Level2Test, BufferBytesCoversFullFilterAllocations) {
  Level2Fixture f(200, 4, 8, 115);
  Level2Config cfg = f.Config(Level2Filter::kFull);
  cfg.placement = KnearestsPlacement::kGlobal;
  cfg.threads_per_query = 4;
  cfg.inner_stride = 2;
  const size_t estimate =
      Level2BufferBytes(cfg, f.qc, f.tc, f.l1, 0, 200);
  // out (200*8*8) + global pool (800*8*4) + partial heaps (800*8*8) +
  // theta (800).
  EXPECT_GE(estimate, 200u * 8 * 8 + 800u * 8 * 4 + 800u * 8 * 8);
}

TEST(Level2Test, BufferBytesGrowsWithSurvivorCapacityForPartial) {
  Level2Fixture f(200, 4, 8, 116);
  const size_t partial_bytes = Level2BufferBytes(
      f.Config(Level2Filter::kPartial), f.qc, f.tc, f.l1, 0, 200);
  const size_t full_bytes = Level2BufferBytes(
      f.Config(Level2Filter::kFull), f.qc, f.tc, f.l1, 0, 200);
  EXPECT_GT(partial_bytes, full_bytes);
}

}  // namespace
}  // namespace sweetknn::core
