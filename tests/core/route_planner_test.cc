#include "core/route_planner.h"

#include <cstdlib>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "common/matrix.h"
#include "core/sweet_knn.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;

// The planner's whole contract is that routing is invisible in the
// answers, so these comparisons are bit-for-bit, not tolerance-based.
void ExpectBitIdentical(const KnnResult& want, const KnnResult& got,
                        const char* what) {
  ASSERT_EQ(want.k(), got.k()) << what;
  ASSERT_EQ(want.num_queries(), got.num_queries()) << what;
  for (size_t q = 0; q < want.num_queries(); ++q) {
    const Neighbor* w = want.row(q);
    const Neighbor* g = got.row(q);
    for (int i = 0; i < want.k(); ++i) {
      EXPECT_EQ(w[i].index, g[i].index)
          << what << " query " << q << " rank " << i;
      EXPECT_EQ(std::memcmp(&w[i].distance, &g[i].distance, sizeof(float)),
                0)
          << what << " query " << q << " rank " << i;
    }
  }
}

core::KnnRunStats StatsWithSelectivity(double fraction_computed) {
  core::KnnRunStats stats;
  stats.total_pairs = 1'000'000;
  stats.distance_calcs =
      static_cast<uint64_t>(fraction_computed * 1'000'000);
  return stats;
}

TEST(RoutePlannerTest, ForcedModesAlwaysRouteAndCount) {
  core::PlannerConfig config;
  config.mode = core::PlannerMode::kForceDevice;
  core::RoutePlanner device_planner(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(device_planner.Choose(8, 1000, 16),
              core::QueryRoute::kDevice);
  }
  EXPECT_EQ(device_planner.device_routes(), 10u);
  EXPECT_EQ(device_planner.host_routes(), 0u);

  config.mode = core::PlannerMode::kForceHost;
  core::RoutePlanner host_planner(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(host_planner.Choose(8, 1000, 16), core::QueryRoute::kHost);
  }
  EXPECT_EQ(host_planner.device_routes(), 0u);
  EXPECT_EQ(host_planner.host_routes(), 10u);
}

TEST(RoutePlannerTest, ColdAutoExploresFirstThenPrefersHost) {
  core::RoutePlanner planner;  // defaults: kAuto, explore_interval = 16
  ASSERT_EQ(planner.mode(), core::PlannerMode::kAuto);
  ASSERT_DOUBLE_EQ(planner.PredictedSelectivity(), 1.0);
  // A cold planner is pessimistic about the TI filter, so for a
  // moderate fragment the host path must model cheaper.
  EXPECT_LT(planner.HostCost(8, 1000, 16), planner.DeviceCost(8, 1000, 16));

  // Decision 0 explores on the device (this also seeds the selectivity
  // estimate and keeps single-query sim-stats assertions meaningful);
  // the next 15 follow the cost model onto the host; decision 16
  // explores again.
  EXPECT_EQ(planner.Choose(8, 1000, 16), core::QueryRoute::kDevice);
  for (int i = 1; i < 16; ++i) {
    EXPECT_EQ(planner.Choose(8, 1000, 16), core::QueryRoute::kHost)
        << "decision " << i;
  }
  EXPECT_EQ(planner.Choose(8, 1000, 16), core::QueryRoute::kDevice);
  EXPECT_EQ(planner.device_routes() + planner.host_routes(), 17u);
}

TEST(RoutePlannerTest, SelectivityEmaTracksObservations) {
  core::RoutePlanner planner;
  const double alpha = planner.config().selectivity_alpha;
  // An empty run (no pairs) must not disturb the estimate.
  planner.ObserveDeviceRun(core::KnnRunStats{});
  EXPECT_DOUBLE_EQ(planner.PredictedSelectivity(), 1.0);

  planner.ObserveDeviceRun(StatsWithSelectivity(0.2));
  EXPECT_DOUBLE_EQ(planner.PredictedSelectivity(),
                   alpha * 0.2 + (1.0 - alpha) * 1.0);
  planner.ObserveDeviceRun(StatsWithSelectivity(0.2));
  EXPECT_NEAR(planner.PredictedSelectivity(),
              alpha * 0.2 + (1.0 - alpha) * (alpha * 0.2 + (1.0 - alpha)),
              1e-12);
}

TEST(RoutePlannerTest, LearnedSelectivityFlipsLargeFragmentsToDevice) {
  core::PlannerConfig config;
  config.explore_interval = 0;  // pure cost decisions
  core::RoutePlanner planner(config);
  // Cold (selectivity 1): even a huge fragment stays on the host.
  EXPECT_EQ(planner.Choose(64, 1'000'000, 128), core::QueryRoute::kHost);
  // A sharply selective filter (1% of pairs computed) makes the device's
  // dominant term collapse; the same fragment now routes to the device.
  for (int i = 0; i < 64; ++i) {
    planner.ObserveDeviceRun(StatsWithSelectivity(0.01));
  }
  EXPECT_LT(planner.PredictedSelectivity(), 0.02);
  EXPECT_LT(planner.DeviceCost(64, 1'000'000, 128),
            planner.HostCost(64, 1'000'000, 128));
  EXPECT_EQ(planner.Choose(64, 1'000'000, 128), core::QueryRoute::kDevice);
  // Small fragments still prefer the host: the device's fixed cost
  // dominates regardless of selectivity.
  EXPECT_EQ(planner.Choose(1, 200, 4), core::QueryRoute::kHost);
}

TEST(RoutePlannerTest, EnvVariableOverridesConfiguredMode) {
  ::setenv("SWEETKNN_PLANNER", "host", 1);
  core::PlannerConfig config;
  config.mode = core::PlannerMode::kForceDevice;
  EXPECT_EQ(core::RoutePlanner(config).mode(),
            core::PlannerMode::kForceHost);
  ::setenv("SWEETKNN_PLANNER", "device", 1);
  EXPECT_EQ(core::RoutePlanner().mode(), core::PlannerMode::kForceDevice);
  ::setenv("SWEETKNN_PLANNER", "auto", 1);
  EXPECT_EQ(core::RoutePlanner(config).mode(), core::PlannerMode::kAuto);
  // Unknown values are ignored, not an error.
  ::setenv("SWEETKNN_PLANNER", "quantum", 1);
  EXPECT_EQ(core::RoutePlanner(config).mode(),
            core::PlannerMode::kForceDevice);
  ::unsetenv("SWEETKNN_PLANNER");
}

// TSan target (tools/check_tsan.sh): Choose, set_mode, and
// ObserveDeviceRun race freely; every decision must land in exactly one
// route counter.
TEST(RoutePlannerTest, ConcurrentChooseAndModeFlipsLoseNoDecisions) {
  core::RoutePlanner planner;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&planner, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      for (int i = 0; i < kPerThread; ++i) {
        switch (rng() % 8) {
          case 0:
            planner.set_mode(core::PlannerMode::kForceHost);
            break;
          case 1:
            planner.set_mode(core::PlannerMode::kForceDevice);
            break;
          case 2:
            planner.set_mode(core::PlannerMode::kAuto);
            break;
          case 3:
            planner.ObserveDeviceRun(StatsWithSelectivity(0.5));
            break;
          default:
            break;
        }
        planner.Choose(1 + rng() % 64, 1000, 16);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(planner.device_routes() + planner.host_routes(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

SweetKnn::Config IndexConfig(core::PlannerMode mode, core::Metric metric) {
  SweetKnn::Config config;
  config.planner.mode = mode;
  config.options.metric = metric;
  return config;
}

// The planner's correctness claim: the merged answers are bit-identical
// no matter which route served the base scan — including through
// mutations, where the host route feeds the same overlay merge.
TEST(RoutePlannerTest, IndexAnswersBitIdenticallyOnEveryRoute) {
  for (const core::Metric metric :
       {core::Metric::kEuclidean, core::Metric::kManhattan}) {
    const HostMatrix target = ClusteredPoints(300, 6, 4, 515);
    const HostMatrix queries = ClusteredPoints(24, 6, 3, 516);
    SweetKnnIndex device_index(
        target, IndexConfig(core::PlannerMode::kForceDevice, metric));
    SweetKnnIndex host_index(
        target, IndexConfig(core::PlannerMode::kForceHost, metric));
    SweetKnnIndex auto_index(
        target, IndexConfig(core::PlannerMode::kAuto, metric));

    const KnnResult want = device_index.Query(queries, 5);
    ExpectBitIdentical(want, host_index.Query(queries, 5), "pristine host");
    ExpectBitIdentical(want, auto_index.Query(queries, 5), "pristine auto");

    // Mutate all three identically; the base scan now over-queries and
    // merges with the delta overlay on whichever route.
    for (SweetKnnIndex* index : {&device_index, &host_index, &auto_index}) {
      index->Insert({0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f});
      index->Insert({-0.4f, 0.0f, 0.7f, -0.1f, 0.2f, 0.9f});
      index->Remove(7);
      index->Remove(42);
    }
    const KnnResult mutated = device_index.Query(queries, 5);
    ExpectBitIdentical(mutated, host_index.Query(queries, 5),
                       "mutated host");
    ExpectBitIdentical(mutated, auto_index.Query(queries, 5),
                       "mutated auto");
  }
}

TEST(RoutePlannerTest, ServiceAnswersBitIdenticallyOnEveryRoute) {
  const HostMatrix target = ClusteredPoints(260, 4, 3, 517);
  const HostMatrix queries = ClusteredPoints(16, 4, 2, 518);
  serve::ServiceConfig device_config;
  device_config.num_shards = 2;
  device_config.planner.mode = core::PlannerMode::kForceDevice;
  serve::ServiceConfig host_config = device_config;
  host_config.planner.mode = core::PlannerMode::kForceHost;

  serve::KnnService device_service(target, device_config);
  serve::KnnService host_service(target, host_config);
  const Result<KnnResult> want = device_service.JoinBatch(queries, 4);
  const Result<KnnResult> got = host_service.JoinBatch(queries, 4);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(want.value(), got.value(), "service host route");
  EXPECT_GT(host_service.planner().host_routes(), 0u);
  EXPECT_GT(device_service.planner().device_routes(), 0u);
}

}  // namespace
}  // namespace sweetknn
