// Property tests of the full engine: results must be exact and invariant
// under every performance-only knob.

#include <tuple>

#include "baseline/brute_force_cpu.h"
#include "core/ti_knn_gpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

using testing::ClusteredPoints;
using testing::ExpectResultsMatch;

TEST(EnginePropertyTest, BlockSizeDoesNotChangeResults) {
  const HostMatrix points = ClusteredPoints(300, 7, 5, 141);
  const KnnResult oracle = baseline::BruteForceCpu(points, points, 6);
  for (int block_threads : {32, 64, 128, 256, 512}) {
    TiOptions options = TiOptions::Sweet();
    options.block_threads = block_threads;
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    ExpectResultsMatch(oracle,
                       TiKnnEngine::RunOnce(&dev, points, points, 6,
                                            options, nullptr));
  }
}

TEST(EnginePropertyTest, LandmarkCountDoesNotChangeResults) {
  const HostMatrix points = ClusteredPoints(280, 6, 4, 142);
  const KnnResult oracle = baseline::BruteForceCpu(points, points, 5);
  for (int landmarks : {1, 2, 7, 40, 150, 280}) {
    TiOptions options = TiOptions::Sweet();
    options.landmarks_override = landmarks;
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    KnnRunStats stats;
    ExpectResultsMatch(oracle,
                       TiKnnEngine::RunOnce(&dev, points, points, 5,
                                            options, &stats));
    EXPECT_EQ(stats.landmarks_target, landmarks);
  }
}

TEST(EnginePropertyTest, ParallelismRDoesNotChangeResults) {
  const HostMatrix points = ClusteredPoints(150, 5, 3, 143);
  const KnnResult oracle = baseline::BruteForceCpu(points, points, 4);
  for (double r : {0.05, 0.25, 1.0}) {
    TiOptions options = TiOptions::Sweet();
    options.parallelism_r = r;
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    ExpectResultsMatch(oracle,
                       TiKnnEngine::RunOnce(&dev, points, points, 4,
                                            options, nullptr));
  }
}

TEST(EnginePropertyTest, PartialFilterThresholdOverride) {
  // Lowering the k/d threshold flips the decision; results stay exact.
  const HostMatrix points = ClusteredPoints(260, 8, 5, 144);
  TiOptions options = TiOptions::Sweet();
  options.partial_filter_kd_threshold = 0.1;  // k/d = 6/8 > 0.1 -> partial.
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  KnnRunStats stats;
  const KnnResult result =
      TiKnnEngine::RunOnce(&dev, points, points, 6, options, &stats);
  EXPECT_EQ(stats.filter_used, Level2Filter::kPartial);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 6), result);
}

// Exactness across a (k, seed) sweep with the full adaptive stack.
class EngineSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EngineSweep, ExactForEveryKAndSeed) {
  const auto [k, seed] = GetParam();
  const HostMatrix points = ClusteredPoints(
      200 + static_cast<size_t>(seed) * 17, 6, 5,
      static_cast<uint64_t>(seed) + 1000);
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  ExpectResultsMatch(
      baseline::BruteForceCpu(points, points, k),
      TiKnnEngine::RunOnce(&dev, points, points, k, TiOptions::Sweet(),
                           nullptr));
}

INSTANTIATE_TEST_SUITE_P(KsAndSeeds, EngineSweep,
                         ::testing::Combine(::testing::Values(1, 2, 7, 20,
                                                              50),
                                            ::testing::Values(0, 1, 2, 3)));

TEST(EnginePropertyTest, StatsProfileAttributesLevel2Kernels) {
  const HostMatrix points = ClusteredPoints(250, 6, 4, 145);
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  KnnRunStats stats;
  TiKnnEngine::RunOnce(&dev, points, points, 5, TiOptions::Sweet(), &stats);
  bool saw_level2 = false;
  bool saw_clustering = false;
  for (const auto& launch : stats.profile.launches) {
    saw_level2 |= launch.kernel_name.find("level2") != std::string::npos;
    saw_clustering |=
        launch.kernel_name.find("assign") != std::string::npos;
  }
  EXPECT_TRUE(saw_level2);
  EXPECT_TRUE(saw_clustering);  // Prepare profile folded into run stats.
  EXPECT_GT(stats.sim_time_s, stats.profile.TotalKernelTime() * 0.99);
}

TEST(EnginePropertyTest, DeterministicAcrossRuns) {
  const HostMatrix points = ClusteredPoints(220, 5, 4, 146);
  auto run = [&] {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    KnnRunStats stats;
    TiKnnEngine::RunOnce(&dev, points, points, 7, TiOptions::Sweet(),
                         &stats);
    return std::make_pair(stats.distance_calcs, stats.sim_time_s);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace sweetknn::core
