#include "core/clustering.h"

#include <set>

#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::core {
namespace {

using testing::ClusteredPoints;

class ClusteringTest : public ::testing::Test {
 protected:
  ClusteringTest() : dev_(gpusim::DeviceSpec::TeslaK20c()) {}
  gpusim::Device dev_;
};

TEST_F(ClusteringTest, DefaultLandmarkCountFollowsRule) {
  EXPECT_EQ(DefaultLandmarkCount(10000, 1ull << 30), 300);
  EXPECT_EQ(DefaultLandmarkCount(100, 1ull << 30), 30);
  EXPECT_EQ(DefaultLandmarkCount(1, 1ull << 30), 1);
}

TEST_F(ClusteringTest, DefaultLandmarkCountCappedByMemory) {
  // With only 32 KiB free, 8 * m^2 <= 8 KiB -> m <= 32.
  EXPECT_LE(DefaultLandmarkCount(1'000'000, 32 * 1024), 32);
}

TEST_F(ClusteringTest, SelectLandmarksReturnsDistinctValidIds) {
  const HostMatrix m = ClusteredPoints(200, 4, 4, 91);
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  const auto ids = SelectLandmarks(&dev_, pts, 40, 10, 7, 256);
  EXPECT_EQ(ids.size(), 40u);
  std::set<uint32_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 40u);
  for (const uint32_t id : ids) EXPECT_LT(id, 200u);
}

TEST_F(ClusteringTest, QueryAssignmentIsNearestCenter) {
  const HostMatrix m = ClusteredPoints(300, 5, 6, 92);
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  ClusteringConfig cfg;
  const QueryClustering qc = BuildQueryClustering(&dev_, pts, cfg);
  ASSERT_GT(qc.num_clusters, 1);
  for (size_t p = 0; p < 300; ++p) {
    const uint32_t assigned = qc.assignment[p];
    const float assigned_dist = AccessorDistance(
        pts.HostPoint(p), qc.centers.HostPoint(assigned), 5);
    for (int c = 0; c < qc.num_clusters; ++c) {
      const float d = AccessorDistance(pts.HostPoint(p),
                                       qc.centers.HostPoint(c), 5);
      EXPECT_GE(d, assigned_dist - 1e-5f)
          << "point " << p << " closer to center " << c;
    }
  }
}

TEST_F(ClusteringTest, QueryMaxDistCoversAllMembers) {
  const HostMatrix m = ClusteredPoints(250, 4, 5, 93);
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  ClusteringConfig cfg;
  const QueryClustering qc = BuildQueryClustering(&dev_, pts, cfg);
  for (size_t p = 0; p < 250; ++p) {
    const uint32_t c = qc.assignment[p];
    const float d =
        AccessorDistance(pts.HostPoint(p), qc.centers.HostPoint(c), 4);
    EXPECT_LE(d, qc.max_dist[c] + 1e-5f);
  }
}

TEST_F(ClusteringTest, QueryMemberListsPartitionTheSet) {
  const HostMatrix m = ClusteredPoints(180, 3, 4, 94);
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  ClusteringConfig cfg;
  const QueryClustering qc = BuildQueryClustering(&dev_, pts, cfg);
  std::set<uint32_t> seen;
  for (int c = 0; c < qc.num_clusters; ++c) {
    for (uint32_t i = qc.member_offsets[c]; i < qc.member_offsets[c + 1];
         ++i) {
      const uint32_t member = qc.members[i];
      EXPECT_TRUE(seen.insert(member).second) << "duplicate " << member;
      EXPECT_EQ(qc.assignment[member], static_cast<uint32_t>(c));
    }
  }
  EXPECT_EQ(seen.size(), 180u);
}

TEST_F(ClusteringTest, TargetMembersSortedDescendingByCenterDistance) {
  const HostMatrix m = ClusteredPoints(260, 6, 5, 95);
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  ClusteringConfig cfg;
  const TargetClustering tc = BuildTargetClustering(&dev_, pts, cfg);
  std::set<uint32_t> seen;
  for (int c = 0; c < tc.num_clusters; ++c) {
    float prev = std::numeric_limits<float>::infinity();
    for (uint32_t i = tc.member_offsets[c]; i < tc.member_offsets[c + 1];
         ++i) {
      EXPECT_LE(tc.member_dists[i], prev + 1e-6f);
      prev = tc.member_dists[i];
      // Stored distance matches the actual distance to the center.
      const float actual = AccessorDistance(
          pts.HostPoint(tc.member_ids[i]), tc.centers.HostPoint(c), 6);
      EXPECT_NEAR(tc.member_dists[i], actual, 1e-5f);
      seen.insert(tc.member_ids[i]);
    }
    // First member (if any) realizes the cluster radius.
    if (tc.member_offsets[c + 1] > tc.member_offsets[c]) {
      EXPECT_NEAR(tc.member_dists[tc.member_offsets[c]], tc.max_dist[c],
                  1e-5f);
    }
  }
  EXPECT_EQ(seen.size(), 260u);
}

TEST_F(ClusteringTest, LandmarkOverrideIsHonored) {
  const HostMatrix m = ClusteredPoints(400, 3, 4, 96);
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  ClusteringConfig cfg;
  cfg.landmarks_override = 17;
  const TargetClustering tc = BuildTargetClustering(&dev_, pts, cfg);
  EXPECT_EQ(tc.num_clusters, 17);
}

TEST_F(ClusteringTest, SelfJoinViewMatchesIndependentBuild) {
  const HostMatrix m = ClusteredPoints(220, 5, 4, 97);
  const DevicePoints pts =
      DevicePoints::Upload(&dev_, m, PointLayout::kRowMajor, "p");
  ClusteringConfig cfg;
  const TargetClustering tc = BuildTargetClustering(&dev_, pts, cfg);
  const QueryClustering qc = QueryClusteringFromTarget(&dev_, pts, tc);
  EXPECT_EQ(qc.num_clusters, tc.num_clusters);
  for (size_t p = 0; p < 220; ++p) {
    EXPECT_EQ(qc.assignment[p], tc.assignment[p]);
  }
  for (int c = 0; c < qc.num_clusters; ++c) {
    EXPECT_EQ(qc.max_dist[c], tc.max_dist[c]);
    EXPECT_EQ(qc.member_offsets[c], tc.member_offsets[c]);
  }
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(qc.centers.At(2, j), tc.centers.At(2, j));
  }
}

}  // namespace
}  // namespace sweetknn::core
