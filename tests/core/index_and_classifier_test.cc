#include "baseline/brute_force_cpu.h"

#include "common/rng.h"
#include "core/clustering.h"
#include "core/knn_classifier.h"
#include "core/sweet_knn.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;
using testing::ExpectResultsMatch;

TEST(SweetKnnIndexTest, BatchesMatchOracle) {
  const HostMatrix gallery = ClusteredPoints(400, 6, 6, 151);
  SweetKnnIndex index(gallery);
  EXPECT_EQ(index.size(), 400u);
  EXPECT_EQ(index.dims(), 6u);
  for (uint64_t seed : {152, 153, 154}) {
    const HostMatrix batch = ClusteredPoints(90, 6, 3, seed);
    ExpectResultsMatch(baseline::BruteForceCpu(batch, gallery, 5),
                       index.Query(batch, 5));
  }
}

TEST(SweetKnnIndexTest, DifferentKPerBatch) {
  const HostMatrix gallery = ClusteredPoints(300, 4, 4, 155);
  SweetKnnIndex index(gallery);
  const HostMatrix batch = ClusteredPoints(50, 4, 2, 156);
  for (int k : {1, 3, 11, 40}) {
    ExpectResultsMatch(baseline::BruteForceCpu(batch, gallery, k),
                       index.Query(batch, k));
  }
}

TEST(SweetKnnIndexTest, SinglePointQuery) {
  HostMatrix gallery(4, 2);
  gallery.at(0, 0) = 0.0f;
  gallery.at(1, 0) = 1.0f;
  gallery.at(2, 0) = 5.0f;
  gallery.at(3, 0) = 9.0f;
  SweetKnnIndex index(gallery);
  const auto neighbors =
      index.Query(std::vector<float>{4.4f, 0.0f}, 2);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].index, 2u);
  EXPECT_EQ(neighbors[1].index, 1u);
}

TEST(SweetKnnIndexTest, StatsIncludeAmortizedPreparation) {
  const HostMatrix gallery = ClusteredPoints(300, 5, 5, 157);
  SweetKnnIndex index(gallery);
  const HostMatrix batch = ClusteredPoints(60, 5, 2, 158);
  core::KnnRunStats stats;
  index.Query(batch, 4, &stats);
  bool saw_target_prep = false;
  for (const auto& launch : stats.profile.launches) {
    saw_target_prep |=
        launch.kernel_name.find("assign_target") != std::string::npos;
  }
  EXPECT_TRUE(saw_target_prep);
  EXPECT_GT(stats.sim_time_s, 0.0);
}

TEST(KnnClassifierTest, SeparableClassesAreLearned) {
  // Two well-separated blobs.
  HostMatrix train(200, 3);
  std::vector<int> labels(200);
  Rng rng(161);
  for (size_t i = 0; i < 200; ++i) {
    const int label = i < 100 ? 0 : 1;
    labels[i] = label;
    for (size_t j = 0; j < 3; ++j) {
      train.at(i, j) = static_cast<float>(label) * 5.0f +
                       0.2f * rng.NextFloat();
    }
  }
  KnnClassifier classifier(train, labels);
  HostMatrix queries(2, 3);
  for (size_t j = 0; j < 3; ++j) {
    queries.at(0, j) = 0.1f;
    queries.at(1, j) = 5.1f;
  }
  const std::vector<int> predicted = classifier.Predict(queries);
  EXPECT_EQ(predicted[0], 0);
  EXPECT_EQ(predicted[1], 1);
  EXPECT_DOUBLE_EQ(classifier.Score(queries, {0, 1}), 1.0);
}

TEST(KnnClassifierTest, ConfidenceReflectsVoteShare) {
  HostMatrix train(3, 1);
  train.at(0, 0) = 0.0f;
  train.at(1, 0) = 0.1f;
  train.at(2, 0) = 0.2f;
  KnnClassifier::Options options;
  options.k = 3;
  KnnClassifier classifier(train, {0, 0, 1}, options);
  HostMatrix query(1, 1);
  query.at(0, 0) = 0.05f;
  const auto predictions = classifier.PredictWithConfidence(query);
  EXPECT_EQ(predictions[0].label, 0);
  EXPECT_NEAR(predictions[0].confidence, 2.0 / 3.0, 1e-9);
}

TEST(KnnClassifierTest, DistanceWeightingBreaksMajority) {
  // Two far votes for class 1 vs one adjacent vote for class 0.
  HostMatrix train(3, 1);
  train.at(0, 0) = 0.0f;
  train.at(1, 0) = 3.0f;
  train.at(2, 0) = 3.1f;
  HostMatrix query(1, 1);
  query.at(0, 0) = 0.01f;
  KnnClassifier::Options plain;
  plain.k = 3;
  KnnClassifier majority(train, {0, 1, 1}, plain);
  EXPECT_EQ(majority.Predict(query)[0], 1);
  KnnClassifier::Options weighted = plain;
  weighted.distance_weighted = true;
  KnnClassifier nearest_wins(train, {0, 1, 1}, weighted);
  EXPECT_EQ(nearest_wins.Predict(query)[0], 0);
}

TEST(KMeansRefinementTest, StaysExactAndReportsStats) {
  const HostMatrix points = ClusteredPoints(300, 6, 5, 162);
  const KnnResult oracle = baseline::BruteForceCpu(points, points, 5);
  for (int iterations : {1, 3}) {
    SweetKnn::Config config;
    config.options.kmeans_iterations = iterations;
    SweetKnn knn(config);
    core::KnnRunStats stats;
    ExpectResultsMatch(oracle, knn.SelfJoin(points, 5, &stats));
    bool saw_kmeans = false;
    for (const auto& launch : stats.profile.launches) {
      saw_kmeans |= launch.kernel_name.find("kmeans") != std::string::npos;
    }
    EXPECT_TRUE(saw_kmeans);
  }
}

TEST(KMeansRefinementTest, TightensClusterRadii) {
  // Refined centroids should shrink the mean cluster radius vs the
  // paper's sampled landmarks.
  const HostMatrix points = ClusteredPoints(600, 8, 10, 163, 0.05f);
  auto mean_radius = [&](int iterations) {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    core::DevicePoints d_points = core::DevicePoints::Upload(
        &dev, points, core::PointLayout::kRowMajor, "p");
    core::ClusteringConfig cfg;
    cfg.kmeans_iterations = iterations;
    const core::TargetClustering tc =
        core::BuildTargetClustering(&dev, d_points, cfg);
    double sum = 0.0;
    int count = 0;
    for (int c = 0; c < tc.num_clusters; ++c) {
      if (tc.member_offsets[c + 1] > tc.member_offsets[c]) {
        sum += tc.max_dist[c];
        ++count;
      }
    }
    return sum / count;
  };
  EXPECT_LT(mean_radius(3), mean_radius(0));
}

}  // namespace
}  // namespace sweetknn
