#include "core/sweet_knn.h"

#include "baseline/brute_force_cpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ClusteredPoints;
using testing::ExpectResultsMatch;

TEST(SweetKnnTest, SelfJoinMatchesOracle) {
  const HostMatrix points = ClusteredPoints(300, 6, 5, 121);
  SweetKnn knn;
  const KnnResult result = knn.SelfJoin(points, 5);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 5), result);
}

TEST(SweetKnnTest, JoinWithDistinctSets) {
  const HostMatrix query = ClusteredPoints(120, 4, 3, 122);
  const HostMatrix target = ClusteredPoints(260, 4, 4, 123);
  SweetKnn knn;
  const KnnResult result = knn.Join(query, target, 4);
  ExpectResultsMatch(baseline::BruteForceCpu(query, target, 4), result);
}

TEST(SweetKnnTest, SearchSingleQuery) {
  HostMatrix target(5, 2);
  for (size_t i = 0; i < 5; ++i) {
    target.at(i, 0) = static_cast<float>(i);
  }
  SweetKnn knn;
  const auto neighbors = knn.Search(target, {2.1f, 0.0f}, 2);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].index, 2u);
  EXPECT_EQ(neighbors[1].index, 3u);
}

TEST(SweetKnnTest, SearchBreaksDuplicateDistanceTiesByIndex) {
  // Four targets at exactly the same location, plus one farther away:
  // the tied nearest neighbors must come back in ascending index order
  // with bitwise-equal distances.
  HostMatrix target(5, 3);
  for (size_t i = 0; i < 4; ++i) {
    target.at(i, 0) = 1.5f;
    target.at(i, 1) = -2.0f;
    target.at(i, 2) = 0.25f;
  }
  target.at(4, 0) = 50.0f;
  SweetKnn knn;
  const auto neighbors = knn.Search(target, {1.5f, -2.0f, 0.25f}, 3);
  ASSERT_EQ(neighbors.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(neighbors[static_cast<size_t>(i)].index,
              static_cast<uint32_t>(i));
    EXPECT_EQ(neighbors[static_cast<size_t>(i)].distance, 0.0f);
  }
}

TEST(SweetKnnTest, SearchCopiesQueryRowFaithfully) {
  // The query row is memcpy'd from the input vector; verify against the
  // oracle on an irregular point (catches stride/offset mistakes).
  const HostMatrix target = ClusteredPoints(180, 7, 3, 130);
  const std::vector<float> point = {0.31f, -0.7f, 2.25f, 0.0f,
                                    -1.125f, 0.5f, 3.875f};
  SweetKnn knn;
  const auto neighbors = knn.Search(target, point, 4);
  HostMatrix query(1, 7);
  for (size_t j = 0; j < 7; ++j) query.at(0, j) = point[j];
  const KnnResult oracle = baseline::BruteForceCpu(query, target, 4);
  ASSERT_EQ(neighbors.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(neighbors[static_cast<size_t>(i)].index,
              oracle.row(0)[i].index);
    EXPECT_NEAR(neighbors[static_cast<size_t>(i)].distance,
                oracle.row(0)[i].distance, 2e-4f);
  }
}

TEST(SweetKnnTest, StatsAreFilledOut) {
  const HostMatrix points = ClusteredPoints(256, 8, 4, 124);
  SweetKnn knn;
  core::KnnRunStats stats;
  knn.SelfJoin(points, 6, &stats);
  EXPECT_EQ(stats.total_pairs, 256u * 256u);
  EXPECT_GT(stats.distance_calcs, 0u);
  EXPECT_GT(stats.SavedFraction(), 0.0);
  EXPECT_GT(stats.sim_time_s, 0.0);
  EXPECT_GT(stats.level2_warp_efficiency, 0.0);
  EXPECT_LE(stats.level2_warp_efficiency, 1.0);
  EXPECT_GT(stats.landmarks_target, 0);
  EXPECT_FALSE(stats.profile.launches.empty());
}

TEST(SweetKnnTest, ReusableAcrossCalls) {
  SweetKnn knn;
  const HostMatrix a = ClusteredPoints(100, 3, 3, 125);
  const HostMatrix b = ClusteredPoints(150, 5, 3, 126);
  ExpectResultsMatch(baseline::BruteForceCpu(a, a, 3), knn.SelfJoin(a, 3));
  ExpectResultsMatch(baseline::BruteForceCpu(b, b, 3), knn.SelfJoin(b, 3));
}

TEST(SweetKnnTest, CustomConfigBasicTi) {
  SweetKnn::Config config;
  config.options = core::TiOptions::BasicTi();
  SweetKnn knn(config);
  const HostMatrix points = ClusteredPoints(200, 4, 4, 127);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 4),
                     knn.SelfJoin(points, 4));
}

TEST(SweetKnnEngineTest, PreparedEngineServesMultipleKs) {
  const HostMatrix points = ClusteredPoints(220, 5, 4, 128);
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  core::TiKnnEngine engine(&dev, core::TiOptions::Sweet());
  engine.Prepare(points, points);
  for (int k : {1, 3, 9, 33}) {
    core::KnnRunStats stats;
    const KnnResult result = engine.Run(k, &stats);
    ExpectResultsMatch(baseline::BruteForceCpu(points, points, k), result);
  }
}

TEST(SweetKnnEngineTest, MemoryConstrainedDevicePartitionsQueries) {
  const HostMatrix points = ClusteredPoints(512, 4, 4, 129);
  // Enough memory for the points and clustering, but small enough that
  // the level-2 output buffers force query partitioning at large k.
  gpusim::Device dev(gpusim::DeviceSpec::ScaledK20c(640 * 1024));
  core::TiKnnEngine engine(&dev, core::TiOptions::Sweet());
  engine.Prepare(points, points);
  core::KnnRunStats stats;
  const KnnResult result = engine.Run(48, &stats);
  EXPECT_GT(stats.query_partitions, 1);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 48), result);
}

TEST(SweetKnnEngineDeathTest, RunBeforePrepareAborts) {
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  core::TiKnnEngine engine(&dev, core::TiOptions::Sweet());
  EXPECT_DEATH(engine.Run(5, nullptr), "Prepare");
}

}  // namespace
}  // namespace sweetknn
