// Statistical property tests of the dataset generators: the structural
// claims DESIGN.md makes about the paper-dataset stand-ins must actually
// hold, because every reproduced number depends on them.

#include <algorithm>
#include <cmath>
#include <map>

#include "common/matrix.h"
#include "dataset/generators.h"
#include "dataset/paper_datasets.h"
#include "gtest/gtest.h"

namespace sweetknn::dataset {
namespace {

/// Crude micro-cluster recovery: greedily assign points to an existing
/// representative within `radius`, else open a new cluster.
std::map<size_t, int> GreedyClusterSizes(const HostMatrix& points,
                                         float radius) {
  std::vector<size_t> representatives;
  std::map<size_t, int> sizes;
  for (size_t i = 0; i < points.rows(); ++i) {
    bool placed = false;
    for (const size_t rep : representatives) {
      if (EuclideanDistance(points.row(i), points.row(rep),
                            points.cols()) < radius) {
        ++sizes[rep];
        placed = true;
        break;
      }
    }
    if (!placed) {
      representatives.push_back(i);
      sizes[i] = 1;
    }
  }
  return sizes;
}

TEST(MixturePropertyTest, MicroClustersAreRecoverable) {
  MixtureConfig cfg;
  cfg.n = 2000;
  cfg.dims = 16;
  cfg.clusters = 50;
  cfg.spread = 0.002f;
  cfg.size_skew = 1.0f;
  cfg.intrinsic_dim = 3;
  cfg.seed = 211;
  const Dataset data = MakeGaussianMixture("m", cfg);
  // Radius well above the intra-cluster diameter but below typical
  // center separation.
  const auto sizes = GreedyClusterSizes(data.points, 0.05f);
  EXPECT_GE(sizes.size(), 35u);
  EXPECT_LE(sizes.size(), 80u);
}

TEST(MixturePropertyTest, PaperDatasetsHaveTiExploitableStructure) {
  // For every clustered paper dataset the average nearest-neighbor
  // distance must be a small fraction of the average pairwise distance —
  // the property that lets TI filtering save >99%.
  for (const char* name : {"kegg", "skin", "blog"}) {
    const auto& info = PaperDatasetByName(name);
    const Dataset data = MakePaperDataset(info, 0.1);
    double nn_sum = 0.0;
    double pair_sum = 0.0;
    size_t pair_count = 0;
    const size_t n = std::min<size_t>(data.n(), 300);
    for (size_t i = 0; i < n; ++i) {
      float nn = 1e30f;
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const float d = EuclideanDistance(data.points.row(i),
                                          data.points.row(j), data.dims());
        nn = std::min(nn, d);
        pair_sum += d;
        ++pair_count;
      }
      nn_sum += nn;
    }
    const double ratio = (nn_sum / static_cast<double>(n)) /
                         (pair_sum / static_cast<double>(pair_count));
    EXPECT_LT(ratio, 0.15) << name;
  }
}

TEST(MixturePropertyTest, ArceneHasNoExploitableStructure) {
  const Dataset data = MakePaperDataset(PaperDatasetByName("arcene"), 1.0);
  double nn_sum = 0.0;
  double pair_sum = 0.0;
  size_t pair_count = 0;
  for (size_t i = 0; i < data.n(); ++i) {
    float nn = 1e30f;
    for (size_t j = 0; j < data.n(); ++j) {
      if (i == j) continue;
      const float d = EuclideanDistance(data.points.row(i),
                                        data.points.row(j), data.dims());
      nn = std::min(nn, d);
      pair_sum += d;
      ++pair_count;
    }
    nn_sum += nn;
  }
  const double ratio = (nn_sum / static_cast<double>(data.n())) /
                       (pair_sum / static_cast<double>(pair_count));
  // Distances concentrate: the nearest neighbor is nearly as far as the
  // average pair — triangle-inequality bounds cannot prune.
  EXPECT_GT(ratio, 0.7);
}

TEST(MixturePropertyTest, ScaleFactorPreservesStructureKnobs) {
  const auto& info = PaperDatasetByName("kegg");
  const Dataset big = MakePaperDataset(info, 0.2);
  const Dataset small = MakePaperDataset(info, 0.1);
  EXPECT_EQ(big.dims(), small.dims());
  EXPECT_EQ(big.n(), 2 * small.n());
}

}  // namespace
}  // namespace sweetknn::dataset
