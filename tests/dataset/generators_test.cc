#include "dataset/generators.h"

#include <cmath>

#include "common/matrix.h"
#include "gtest/gtest.h"

namespace sweetknn::dataset {
namespace {

TEST(GeneratorsTest, MixtureShapeAndName) {
  MixtureConfig cfg;
  cfg.n = 100;
  cfg.dims = 7;
  cfg.clusters = 4;
  cfg.seed = 3;
  const Dataset data = MakeGaussianMixture("demo", cfg);
  EXPECT_EQ(data.name, "demo");
  EXPECT_EQ(data.n(), 100u);
  EXPECT_EQ(data.dims(), 7u);
}

TEST(GeneratorsTest, MixtureDeterministicPerSeed) {
  MixtureConfig cfg;
  cfg.n = 50;
  cfg.dims = 3;
  cfg.clusters = 2;
  cfg.seed = 9;
  const Dataset a = MakeGaussianMixture("a", cfg);
  const Dataset b = MakeGaussianMixture("b", cfg);
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points.data()[i], b.points.data()[i]);
  }
  cfg.seed = 10;
  const Dataset c = MakeGaussianMixture("c", cfg);
  EXPECT_NE(a.points.at(0, 0), c.points.at(0, 0));
}

TEST(GeneratorsTest, TightClustersAreTight) {
  // With a tiny spread, points huddle around few locations: the average
  // nearest-neighbor distance is far below the average pair distance.
  MixtureConfig cfg;
  cfg.n = 200;
  cfg.dims = 8;
  cfg.clusters = 5;
  cfg.spread = 0.001f;
  cfg.seed = 4;
  const Dataset data = MakeGaussianMixture("tight", cfg);
  double nn_sum = 0.0;
  double all_sum = 0.0;
  size_t all_count = 0;
  for (size_t i = 0; i < data.n(); ++i) {
    float nn = 1e30f;
    for (size_t j = 0; j < data.n(); ++j) {
      if (i == j) continue;
      const float d = EuclideanDistance(data.points.row(i),
                                        data.points.row(j), data.dims());
      nn = std::min(nn, d);
      all_sum += d;
      ++all_count;
    }
    nn_sum += nn;
  }
  const double avg_nn = nn_sum / static_cast<double>(data.n());
  const double avg_all = all_sum / static_cast<double>(all_count);
  EXPECT_LT(avg_nn * 20, avg_all);
}

TEST(GeneratorsTest, SizeSkewIsNormalized) {
  // size_skew = s means the largest component is ~e^s times the smallest,
  // independent of the component count.
  MixtureConfig cfg;
  cfg.n = 20000;
  cfg.dims = 2;
  cfg.clusters = 10;
  cfg.spread = 1e-6f;
  cfg.size_skew = 1.0f;
  cfg.seed = 5;
  const Dataset data = MakeGaussianMixture("skewed", cfg);
  // Count points per component by nearest of the 10 tight locations.
  // The first point of each run is enough: use cluster of point via
  // round-trip: components are far apart relative to spread, so cluster
  // sizes can be recovered by hashing coordinates.
  std::vector<int> counts;
  std::vector<std::pair<float, float>> centers;
  for (size_t i = 0; i < data.n(); ++i) {
    const float x = data.points.at(i, 0);
    const float y = data.points.at(i, 1);
    bool found = false;
    for (size_t c = 0; c < centers.size(); ++c) {
      if (std::fabs(centers[c].first - x) < 1e-3f &&
          std::fabs(centers[c].second - y) < 1e-3f) {
        ++counts[c];
        found = true;
        break;
      }
    }
    if (!found) {
      centers.emplace_back(x, y);
      counts.push_back(1);
    }
  }
  ASSERT_EQ(counts.size(), 10u);
  const auto [min_it, max_it] = std::minmax_element(counts.begin(),
                                                    counts.end());
  const double ratio = static_cast<double>(*max_it) / *min_it;
  EXPECT_GT(ratio, 1.8);  // ~e^1 = 2.72 with sampling noise.
  EXPECT_LT(ratio, 4.5);
}

TEST(GeneratorsTest, IntrinsicDimVariesCenterDistances) {
  // Full-dimensional centers concentrate pairwise distances; a low
  // intrinsic dimension spreads them (higher coefficient of variation).
  auto center_distance_cv = [](int intrinsic) {
    MixtureConfig cfg;
    cfg.n = 400;
    cfg.dims = 64;
    cfg.clusters = 400;  // One point per component: points ~ centers.
    cfg.spread = 1e-5f;
    cfg.size_skew = 0.0f;
    cfg.intrinsic_dim = intrinsic;
    cfg.seed = 6;
    const Dataset data = MakeGaussianMixture("c", cfg);
    double sum = 0.0;
    double sum_sq = 0.0;
    int count = 0;
    for (size_t i = 0; i < data.n(); i += 7) {
      for (size_t j = i + 1; j < data.n(); j += 7) {
        const double d = EuclideanDistance(data.points.row(i),
                                           data.points.row(j), 64);
        sum += d;
        sum_sq += d * d;
        ++count;
      }
    }
    const double mean = sum / count;
    const double var = sum_sq / count - mean * mean;
    return std::sqrt(std::max(0.0, var)) / mean;
  };
  EXPECT_GT(center_distance_cv(2), 1.5 * center_distance_cv(0));
}

TEST(GeneratorsTest, UniformInUnitCube) {
  const Dataset data = MakeUniform("u", 500, 4, 11);
  for (size_t i = 0; i < data.n(); ++i) {
    for (size_t j = 0; j < data.dims(); ++j) {
      EXPECT_GE(data.points.at(i, j), 0.0f);
      EXPECT_LT(data.points.at(i, j), 1.0f);
    }
  }
}

TEST(GeneratorsTest, Grid1DIsSequential) {
  const Dataset data = MakeGrid1D("g", 10);
  EXPECT_EQ(data.dims(), 1u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(data.points.at(i, 0), static_cast<float>(i));
  }
}

}  // namespace
}  // namespace sweetknn::dataset
