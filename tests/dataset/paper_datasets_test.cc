#include "dataset/paper_datasets.h"

#include "gtest/gtest.h"

namespace sweetknn::dataset {
namespace {

TEST(PaperDatasetsTest, AllNineDatasetsPresent) {
  const auto& all = PaperDatasets();
  ASSERT_EQ(all.size(), 9u);
  const char* expected[] = {"3DNet", "kegg", "keggD", "ipums", "skin",
                            "arcene", "kdd",  "dor",   "blog"};
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
  }
}

TEST(PaperDatasetsTest, PaperShapesMatchTableIII) {
  EXPECT_EQ(PaperDatasetByName("3DNet").paper_points, 434874u);
  EXPECT_EQ(PaperDatasetByName("3DNet").paper_dims, 4u);
  EXPECT_EQ(PaperDatasetByName("kdd").paper_points, 4000000u);
  EXPECT_EQ(PaperDatasetByName("arcene").paper_dims, 10000u);
  EXPECT_EQ(PaperDatasetByName("dor").paper_dims, 100000u);
  EXPECT_EQ(PaperDatasetByName("blog").paper_dims, 281u);
}

TEST(PaperDatasetsTest, TableVDatasetsKeepExactDims) {
  // The k/d > 8 adaptive decision at k=512 must fire for exactly the six
  // Table V datasets, so their dimensionalities are preserved.
  for (const char* name : {"3DNet", "kegg", "keggD", "ipums", "skin",
                           "kdd"}) {
    const auto& info = PaperDatasetByName(name);
    EXPECT_EQ(info.scaled_dims, info.paper_dims) << name;
    EXPECT_GT(512.0 / info.scaled_dims, 8.0) << name;
  }
  // And must not fire for the other three.
  for (const char* name : {"arcene", "dor", "blog"}) {
    const auto& info = PaperDatasetByName(name);
    EXPECT_LT(512.0 / info.scaled_dims, 8.0) << name;
  }
}

TEST(PaperDatasetsTest, ArceneAndDorKeepExactPointCounts) {
  EXPECT_EQ(PaperDatasetByName("arcene").scaled_points, 100u);
  EXPECT_EQ(PaperDatasetByName("dor").scaled_points, 1950u);
}

TEST(PaperDatasetsTest, GenerationHonorsScaleFactor) {
  const auto& info = PaperDatasetByName("kegg");
  const Dataset full = MakePaperDataset(info, 0.25);
  EXPECT_EQ(full.n(), info.scaled_points / 4);
  EXPECT_EQ(full.dims(), info.scaled_dims);
  EXPECT_EQ(full.name, "kegg");
}

TEST(PaperDatasetsTest, GenerationIsDeterministic) {
  const auto& info = PaperDatasetByName("skin");
  const Dataset a = MakePaperDataset(info, 0.05);
  const Dataset b = MakePaperDataset(info, 0.05);
  EXPECT_EQ(a.points.at(3, 1), b.points.at(3, 1));
}

TEST(PaperDatasetsDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(PaperDatasetByName("nope"), "unknown paper dataset");
}

TEST(PaperDatasetsTest, ScaledDeviceMemoryPreservesPartitioningRatios) {
  // The baseline's |Q| x |T| float matrix must exceed scaled device
  // memory for the datasets the paper reports as partitioned, and fit
  // for arcene/dor.
  const size_t mem = ScaledDeviceMemoryBytes();
  for (const char* name : {"3DNet", "skin", "ipums", "kdd"}) {
    const auto& info = PaperDatasetByName(name);
    EXPECT_GT(info.scaled_points * info.scaled_points * 4, mem) << name;
  }
  for (const char* name : {"arcene", "dor"}) {
    const auto& info = PaperDatasetByName(name);
    EXPECT_LT(info.scaled_points * info.scaled_points * 4, mem) << name;
  }
}

}  // namespace
}  // namespace sweetknn::dataset
