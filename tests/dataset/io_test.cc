#include "dataset/io.h"

#include <cstdio>
#include <fstream>

#include "dataset/generators.h"
#include "gtest/gtest.h"

namespace sweetknn::dataset {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IoTest, SaveLoadRoundtrip) {
  MixtureConfig cfg;
  cfg.n = 20;
  cfg.dims = 5;
  cfg.clusters = 2;
  cfg.seed = 1;
  const Dataset original = MakeGaussianMixture("roundtrip", cfg);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveCsv(original, path).ok());

  const Result<Dataset> loaded = LoadCsv("roundtrip", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().n(), 20u);
  EXPECT_EQ(loaded.value().dims(), 5u);
  // SaveCsv writes %.9g, so the round trip is exact, not merely close.
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(loaded.value().points.at(i, j), original.points.at(i, j))
          << "row " << i << " col " << j;
    }
  }
  std::remove(path.c_str());
}

TEST(IoTest, RoundtripIsExactForAwkwardFloats) {
  // Values operator<<'s default 6-digit precision mangles.
  Dataset data;
  data.name = "awkward";
  data.points = HostMatrix(2, 3);
  data.points.at(0, 0) = 0.1f;
  data.points.at(0, 1) = 1.0f / 3.0f;
  data.points.at(0, 2) = 123456789.0f;
  data.points.at(1, 0) = 1.17549435e-38f;  // FLT_MIN
  data.points.at(1, 1) = 3.40282347e+38f;  // FLT_MAX
  data.points.at(1, 2) = -1.9999999f;
  const std::string path = TempPath("awkward.csv");
  ASSERT_TRUE(SaveCsv(data, path).ok());
  const Result<Dataset> loaded = LoadCsv("awkward", path);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(loaded.value().points.at(i, j), data.points.at(i, j))
          << "row " << i << " col " << j;
    }
  }
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  const Result<Dataset> r = LoadCsv("x", "/nonexistent/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, LoadRaggedRowsFails) {
  const std::string path = TempPath("ragged.csv");
  std::ofstream(path) << "1,2,3\n4,5\n";
  const Result<Dataset> r = LoadCsv("x", path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ragged"), std::string::npos);
  // The error names the offending line and the column counts.
  EXPECT_NE(r.status().message().find(":2:"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("2 columns, expected 3"),
            std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(IoTest, LoadNonNumericFails) {
  const std::string path = TempPath("text.csv");
  std::ofstream(path) << "1,2\nfoo,3\n";
  const Result<Dataset> r = LoadCsv("x", path);
  ASSERT_FALSE(r.ok());
  // The error pinpoints line 2, column 1, and quotes the cell.
  EXPECT_NE(r.status().message().find(":2:"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("column 1"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("'foo'"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(IoTest, LoadTrailingGarbageCellFails) {
  const std::string path = TempPath("garbage.csv");
  std::ofstream(path) << "1,2\n3,4x\n";
  const Result<Dataset> r = LoadCsv("x", path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("column 2"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(IoTest, LoadEmptyFails) {
  const std::string path = TempPath("empty.csv");
  std::ofstream(path) << "";
  const Result<Dataset> r = LoadCsv("x", path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("empty"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(IoTest, AcceptsCrlfLineEndings) {
  const std::string path = TempPath("crlf.csv");
  std::ofstream(path) << "1,2\r\n3,4\r\n";
  const Result<Dataset> r = LoadCsv("x", path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().n(), 2u);
  EXPECT_EQ(r.value().points.at(1, 1), 4.0f);
  std::remove(path.c_str());
}

TEST(IoTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  std::ofstream(path) << "1,2\n\n3,4\n";
  const Result<Dataset> r = LoadCsv("x", path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().n(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sweetknn::dataset
