#include "dataset/io.h"

#include <cstdio>
#include <fstream>

#include "dataset/generators.h"
#include "gtest/gtest.h"

namespace sweetknn::dataset {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IoTest, SaveLoadRoundtrip) {
  MixtureConfig cfg;
  cfg.n = 20;
  cfg.dims = 5;
  cfg.clusters = 2;
  cfg.seed = 1;
  const Dataset original = MakeGaussianMixture("roundtrip", cfg);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveCsv(original, path).ok());

  const Result<Dataset> loaded = LoadCsv("roundtrip", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().n(), 20u);
  EXPECT_EQ(loaded.value().dims(), 5u);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(loaded.value().points.at(i, j), original.points.at(i, j),
                  1e-4f);
    }
  }
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  const Result<Dataset> r = LoadCsv("x", "/nonexistent/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, LoadRaggedRowsFails) {
  const std::string path = TempPath("ragged.csv");
  std::ofstream(path) << "1,2,3\n4,5\n";
  const Result<Dataset> r = LoadCsv("x", path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ragged"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IoTest, LoadNonNumericFails) {
  const std::string path = TempPath("text.csv");
  std::ofstream(path) << "1,2\nfoo,3\n";
  EXPECT_FALSE(LoadCsv("x", path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, LoadEmptyFails) {
  const std::string path = TempPath("empty.csv");
  std::ofstream(path) << "";
  EXPECT_FALSE(LoadCsv("x", path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  std::ofstream(path) << "1,2\n\n3,4\n";
  const Result<Dataset> r = LoadCsv("x", path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().n(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sweetknn::dataset
