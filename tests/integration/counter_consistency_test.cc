// Cross-validation of the profiling counters: the sequential CPU TI-KNN
// and the GPU basic TI implementation run the same algorithm, so their
// saved-computation fractions must be in the same ballpark (they differ
// only through landmark RNG streams and theta-update ordering).

#include "baseline/ti_knn_cpu.h"
#include "core/ti_knn_gpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn {
namespace {

TEST(CounterConsistencyTest, CpuAndGpuSavedFractionsAgree) {
  const HostMatrix points = testing::ClusteredPoints(600, 8, 10, 201,
                                                     /*spread=*/0.01f);
  baseline::TiCpuStats cpu_stats;
  baseline::TiKnnCpu(points, points, 8, 0, &cpu_stats);

  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  core::KnnRunStats gpu_stats;
  core::TiKnnEngine::RunOnce(&dev, points, points, 8,
                             core::TiOptions::BasicTi(), &gpu_stats);

  EXPECT_EQ(cpu_stats.total_pairs, gpu_stats.total_pairs);
  EXPECT_GT(cpu_stats.SavedFraction(), 0.8);
  EXPECT_GT(gpu_stats.SavedFraction(), 0.8);
  EXPECT_NEAR(cpu_stats.SavedFraction(), gpu_stats.SavedFraction(), 0.1);
}

TEST(CounterConsistencyTest, SweetMultiThreadingMayOnlyWeakenFiltering) {
  // Shared-theta multi-threading never computes fewer distances than the
  // single-thread full filter on the same clustering.
  const HostMatrix points = testing::ClusteredPoints(150, 6, 4, 202);
  core::TiOptions single = core::TiOptions::Sweet();
  single.elastic_parallelism = false;
  core::TiOptions multi = core::TiOptions::Sweet();
  multi.threads_per_query_override = 8;

  gpusim::Device dev_a(gpusim::DeviceSpec::TeslaK20c());
  core::KnnRunStats stats_single;
  core::TiKnnEngine::RunOnce(&dev_a, points, points, 5, single,
                             &stats_single);
  gpusim::Device dev_b(gpusim::DeviceSpec::TeslaK20c());
  core::KnnRunStats stats_multi;
  core::TiKnnEngine::RunOnce(&dev_b, points, points, 5, multi,
                             &stats_multi);

  EXPECT_GE(stats_multi.distance_calcs, stats_single.distance_calcs);
}

TEST(CounterConsistencyTest, PartialFilterComputesMoreButSavesMost) {
  const HostMatrix points = testing::ClusteredPoints(500, 6, 8, 203,
                                                     /*spread=*/0.01f);
  core::TiOptions full = core::TiOptions::Sweet();
  full.filter_override = core::Level2Filter::kFull;
  core::TiOptions partial = core::TiOptions::Sweet();
  partial.filter_override = core::Level2Filter::kPartial;

  gpusim::Device dev_a(gpusim::DeviceSpec::TeslaK20c());
  core::KnnRunStats stats_full;
  core::TiKnnEngine::RunOnce(&dev_a, points, points, 10, full, &stats_full);
  gpusim::Device dev_b(gpusim::DeviceSpec::TeslaK20c());
  core::KnnRunStats stats_partial;
  core::TiKnnEngine::RunOnce(&dev_b, points, points, 10, partial,
                             &stats_partial);

  EXPECT_GE(stats_partial.distance_calcs, stats_full.distance_calcs);
  // The paper's observation: "most distance computations could still be
  // saved even with the weakened level-2 filtering".
  EXPECT_GT(stats_partial.SavedFraction(), 0.8);
}

}  // namespace
}  // namespace sweetknn
