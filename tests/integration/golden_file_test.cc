// Golden-file regression tests: the full KnnResult (neighbor ids and
// distances) plus the key aggregate KernelStats counters of a
// TiOptions::Sweet() run over two small paper-dataset stand-ins,
// snapshotted into checked-in text files. Any change to clustering,
// filtering, the simulator, or the cost model that shifts a neighbor,
// a distance bit, or a counter shows up as a golden diff.
//
// To regenerate after an intentional behavior change:
//   ./build/tests/golden_file_test --update_goldens
//
// The snapshots pin IEEE-754 float results produced by this repository's
// toolchain; distances are printed with %.9g (float round-trip) and
// simulated times with %.17g (double round-trip).

// A second leg pins the same neighbor tables through the multi-process
// serving path: a router/worker cluster (docs/distributed.md) over the
// same datasets must reproduce the golden neighbor lines byte for byte.
// That leg needs the worker binary and skips unless SWEETKNN_CLI points
// at the sweetknn_cli executable (ctest exports it).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/ti_knn_gpu.h"
#include "dataset/paper_datasets.h"
#include "gtest/gtest.h"
#include "serve/router.h"

#ifndef SWEETKNN_GOLDEN_DIR
#define SWEETKNN_GOLDEN_DIR "tests/goldens"
#endif

namespace sweetknn {
namespace {

bool g_update_goldens = false;

std::string GoldenPath(const std::string& name) {
  return std::string(SWEETKNN_GOLDEN_DIR) + "/" + name + ".golden";
}

std::string Snapshot(const std::string& dataset_name, double size_factor,
                     int k) {
  const dataset::Dataset data = dataset::MakePaperDataset(
      dataset::PaperDatasetByName(dataset_name), size_factor);

  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  core::KnnRunStats stats;
  const KnnResult result = core::TiKnnEngine::RunOnce(
      &dev, data.points, data.points, k, core::TiOptions::Sweet(), &stats);

  const gpusim::KernelStats agg = stats.profile.AggregateStats();
  std::ostringstream out;
  out << "dataset " << dataset_name << " n " << data.n() << " d "
      << data.dims() << " k " << k << "\n";
  out << "distance_calcs " << stats.distance_calcs << " total_pairs "
      << stats.total_pairs << "\n";
  out << "landmarks_query " << stats.landmarks_query << " landmarks_target "
      << stats.landmarks_target << " threads_per_query "
      << stats.threads_per_query << "\n";
  out << "warp_instructions " << agg.warp_instructions << " active_lane_ops "
      << agg.active_lane_ops << " divergent_branches "
      << agg.divergent_branches << "\n";
  out << "global_transactions " << agg.global_transactions
      << " dram_transactions " << agg.dram_transactions
      << " atomic_operations " << agg.atomic_operations << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", stats.sim_time_s);
  out << "sim_time_s " << buf << "\n";
  for (size_t q = 0; q < result.num_queries(); ++q) {
    out << q << ":";
    for (int i = 0; i < result.k(); ++i) {
      const Neighbor& n = result.row(q)[i];
      std::snprintf(buf, sizeof(buf), "%.9g", n.distance);
      out << " " << n.index << ":" << buf;
    }
    out << "\n";
  }
  return out.str();
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    std::printf("updated %s\n", path.c_str());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run this binary with --update_goldens to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  if (expected.str() == actual) return;
  // Point at the first differing line rather than dumping both files.
  std::istringstream a(expected.str());
  std::istringstream b(actual);
  std::string line_a;
  std::string line_b;
  size_t line_no = 1;
  while (std::getline(a, line_a)) {
    if (!std::getline(b, line_b)) line_b = "<missing>";
    if (line_a != line_b) break;
    ++line_no;
  }
  FAIL() << "golden mismatch for " << name << " at line " << line_no
         << "\n  golden: " << line_a << "\n  actual: " << line_b
         << "\nif the change is intentional, rerun with --update_goldens";
}

TEST(GoldenFileTest, Kegg) { CheckGolden("kegg", Snapshot("kegg", 0.02, 10)); }

TEST(GoldenFileTest, SpatialNetwork3D) {
  CheckGolden("3DNet", Snapshot("3DNet", 0.005, 10));
}

// --- Cluster leg -------------------------------------------------------------

/// The neighbor-table section of a golden snapshot: the "q: id:dist ..."
/// lines (they alone start with a digit). The counters above them are
/// engine-run artifacts; the neighbor rows are what any serving backend
/// must reproduce bit for bit.
std::string NeighborLines(const std::string& snapshot_text) {
  std::istringstream in(snapshot_text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && std::isdigit(static_cast<unsigned char>(line[0]))) {
      out << line << "\n";
    }
  }
  return out.str();
}

/// The same self-join the engine snapshot runs, answered by a
/// router/worker cluster, formatted as golden neighbor lines.
std::string ClusterNeighborSnapshot(const std::string& dataset_name,
                                    double size_factor, int k,
                                    const char* worker_binary) {
  const dataset::Dataset data = dataset::MakePaperDataset(
      dataset::PaperDatasetByName(dataset_name), size_factor);

  serve::RouterConfig config;
  config.service.num_shards = 2;
  config.num_workers = 2;
  config.worker_binary = worker_binary;
  Result<std::unique_ptr<serve::Router>> started =
      serve::Router::Start(data.points, config);
  if (!started.ok()) {
    ADD_FAILURE() << "Router::Start failed: "
                  << started.status().ToString();
    return "";
  }
  const Result<KnnResult> result =
      started.value()->JoinBatch(data.points, k);
  if (!result.ok()) {
    ADD_FAILURE() << "cluster JoinBatch failed: "
                  << result.status().ToString();
    return "";
  }
  std::ostringstream out;
  char buf[64];
  for (size_t q = 0; q < result.value().num_queries(); ++q) {
    out << q << ":";
    for (int i = 0; i < result.value().k(); ++i) {
      const Neighbor& n = result.value().row(q)[i];
      std::snprintf(buf, sizeof(buf), "%.9g", n.distance);
      out << " " << n.index << ":" << buf;
    }
    out << "\n";
  }
  return out.str();
}

void CheckGoldenNeighborsViaCluster(const std::string& name,
                                    double size_factor, int k) {
  const char* cli = std::getenv("SWEETKNN_CLI");
  if (cli == nullptr) {
    GTEST_SKIP() << "SWEETKNN_CLI not set; cluster leg needs the CLI binary";
  }
  if (g_update_goldens) {
    GTEST_SKIP() << "goldens are owned by the engine leg";
  }
  const std::string path = GoldenPath(name);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path;
  std::stringstream golden;
  golden << in.rdbuf();
  const std::string want = NeighborLines(golden.str());
  ASSERT_FALSE(want.empty()) << path << " holds no neighbor lines";
  const std::string got = ClusterNeighborSnapshot(name, size_factor, k, cli);
  if (::testing::Test::HasFailure()) return;
  if (want == got) return;
  std::istringstream a(want);
  std::istringstream b(got);
  std::string line_a;
  std::string line_b;
  size_t line_no = 1;
  while (std::getline(a, line_a)) {
    if (!std::getline(b, line_b)) line_b = "<missing>";
    if (line_a != line_b) break;
    ++line_no;
  }
  FAIL() << "cluster neighbor mismatch for " << name << " at neighbor line "
         << line_no << "\n  golden: " << line_a << "\n  cluster: " << line_b;
}

TEST(GoldenFileClusterTest, Kegg) {
  CheckGoldenNeighborsViaCluster("kegg", 0.02, 10);
}

TEST(GoldenFileClusterTest, SpatialNetwork3D) {
  CheckGoldenNeighborsViaCluster("3DNet", 0.005, 10);
}

}  // namespace
}  // namespace sweetknn

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update_goldens") {
      sweetknn::g_update_goldens = true;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
