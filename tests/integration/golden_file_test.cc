// Golden-file regression tests: the full KnnResult (neighbor ids and
// distances) plus the key aggregate KernelStats counters of a
// TiOptions::Sweet() run over two small paper-dataset stand-ins,
// snapshotted into checked-in text files. Any change to clustering,
// filtering, the simulator, or the cost model that shifts a neighbor,
// a distance bit, or a counter shows up as a golden diff.
//
// To regenerate after an intentional behavior change:
//   ./build/tests/golden_file_test --update_goldens
//
// The snapshots pin IEEE-754 float results produced by this repository's
// toolchain; distances are printed with %.9g (float round-trip) and
// simulated times with %.17g (double round-trip).

// A second leg pins the same neighbor tables through the multi-process
// serving path: a router/worker cluster (docs/distributed.md) over the
// same datasets must reproduce the golden neighbor lines byte for byte.
// That leg needs the worker binary and skips unless SWEETKNN_CLI points
// at the sweetknn_cli executable (ctest exports it).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>
#include <sstream>
#include <string>

#include "core/range_search.h"
#include "core/sweet_knn.h"
#include "core/ti_knn_gpu.h"
#include "dataset/paper_datasets.h"
#include "gtest/gtest.h"
#include "serve/router.h"

#ifndef SWEETKNN_GOLDEN_DIR
#define SWEETKNN_GOLDEN_DIR "tests/goldens"
#endif

namespace sweetknn {
namespace {

bool g_update_goldens = false;

std::string GoldenPath(const std::string& name) {
  return std::string(SWEETKNN_GOLDEN_DIR) + "/" + name + ".golden";
}

std::string Snapshot(const std::string& dataset_name, double size_factor,
                     int k) {
  const dataset::Dataset data = dataset::MakePaperDataset(
      dataset::PaperDatasetByName(dataset_name), size_factor);

  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  core::KnnRunStats stats;
  const KnnResult result = core::TiKnnEngine::RunOnce(
      &dev, data.points, data.points, k, core::TiOptions::Sweet(), &stats);

  const gpusim::KernelStats agg = stats.profile.AggregateStats();
  std::ostringstream out;
  out << "dataset " << dataset_name << " n " << data.n() << " d "
      << data.dims() << " k " << k << "\n";
  out << "distance_calcs " << stats.distance_calcs << " total_pairs "
      << stats.total_pairs << "\n";
  out << "landmarks_query " << stats.landmarks_query << " landmarks_target "
      << stats.landmarks_target << " threads_per_query "
      << stats.threads_per_query << "\n";
  out << "warp_instructions " << agg.warp_instructions << " active_lane_ops "
      << agg.active_lane_ops << " divergent_branches "
      << agg.divergent_branches << "\n";
  out << "global_transactions " << agg.global_transactions
      << " dram_transactions " << agg.dram_transactions
      << " atomic_operations " << agg.atomic_operations << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", stats.sim_time_s);
  out << "sim_time_s " << buf << "\n";
  for (size_t q = 0; q < result.num_queries(); ++q) {
    out << q << ":";
    for (int i = 0; i < result.k(); ++i) {
      const Neighbor& n = result.row(q)[i];
      std::snprintf(buf, sizeof(buf), "%.9g", n.distance);
      out << " " << n.index << ":" << buf;
    }
    out << "\n";
  }
  return out.str();
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    std::printf("updated %s\n", path.c_str());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run this binary with --update_goldens to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  if (expected.str() == actual) return;
  // Point at the first differing line rather than dumping both files.
  std::istringstream a(expected.str());
  std::istringstream b(actual);
  std::string line_a;
  std::string line_b;
  size_t line_no = 1;
  while (std::getline(a, line_a)) {
    if (!std::getline(b, line_b)) line_b = "<missing>";
    if (line_a != line_b) break;
    ++line_no;
  }
  FAIL() << "golden mismatch for " << name << " at line " << line_no
         << "\n  golden: " << line_a << "\n  actual: " << line_b
         << "\nif the change is intentional, rerun with --update_goldens";
}

TEST(GoldenFileTest, Kegg) { CheckGolden("kegg", Snapshot("kegg", 0.02, 10)); }

TEST(GoldenFileTest, SpatialNetwork3D) {
  CheckGolden("3DNet", Snapshot("3DNet", 0.005, 10));
}

// --- Range-modality goldens (docs/modalities.md) -----------------------------

/// RadiusSearch + SelfJoin snapshot over a paper dataset: the pruning
/// counters, every per-query match row ("q: id:dist ..."), and every
/// self-join pair ("p a b dist"). Radii are fixed per dataset, chosen so
/// rows hold a handful of matches each — big enough to exercise the TI
/// pruning, small enough to diff by eye.
std::string RangeSnapshot(const std::string& dataset_name, double size_factor,
                          float radius) {
  const dataset::Dataset data = dataset::MakePaperDataset(
      dataset::PaperDatasetByName(dataset_name), size_factor);

  SweetKnnIndex index(data.points, SweetKnn::Config());
  core::RangeScanStats stats;
  const RangeResult result = index.RadiusSearch(data.points, radius, &stats);
  const std::vector<SelfJoinPair> pairs = index.SelfJoin(radius);

  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", radius);
  out << "dataset " << dataset_name << " n " << data.n() << " d "
      << data.dims() << " radius " << buf << "\n";
  out << "candidates " << stats.candidates << " total_pairs "
      << stats.total_pairs << " clusters_pruned " << stats.clusters_pruned
      << " members_pruned " << stats.members_pruned << "\n";
  out << "matches " << result.total_matches() << " pairs " << pairs.size()
      << "\n";
  for (size_t q = 0; q < result.num_queries(); ++q) {
    out << q << ":";
    const Neighbor* row = result.begin(q);
    for (size_t i = 0; i < result.count(q); ++i) {
      std::snprintf(buf, sizeof(buf), "%.9g", row[i].distance);
      out << " " << row[i].index << ":" << buf;
    }
    out << "\n";
  }
  for (const SelfJoinPair& pair : pairs) {
    std::snprintf(buf, sizeof(buf), "%.9g", pair.distance);
    out << "p " << pair.a << " " << pair.b << " " << buf << "\n";
  }
  return out.str();
}

constexpr float kKeggRadius = 0.6f;
constexpr float k3DNetRadius = 0.2f;

TEST(GoldenFileTest, KeggRange) {
  CheckGolden("kegg_range", RangeSnapshot("kegg", 0.02, kKeggRadius));
}

TEST(GoldenFileTest, SpatialNetwork3DRange) {
  CheckGolden("3DNet_range", RangeSnapshot("3DNet", 0.005, k3DNetRadius));
}

// --- Cluster leg -------------------------------------------------------------

/// The neighbor-table section of a golden snapshot: the "q: id:dist ..."
/// lines (they alone start with a digit). The counters above them are
/// engine-run artifacts; the neighbor rows are what any serving backend
/// must reproduce bit for bit.
std::string NeighborLines(const std::string& snapshot_text) {
  std::istringstream in(snapshot_text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && std::isdigit(static_cast<unsigned char>(line[0]))) {
      out << line << "\n";
    }
  }
  return out.str();
}

/// The same self-join the engine snapshot runs, answered by a
/// router/worker cluster, formatted as golden neighbor lines.
std::string ClusterNeighborSnapshot(const std::string& dataset_name,
                                    double size_factor, int k,
                                    const char* worker_binary) {
  const dataset::Dataset data = dataset::MakePaperDataset(
      dataset::PaperDatasetByName(dataset_name), size_factor);

  serve::RouterConfig config;
  config.service.num_shards = 2;
  config.num_workers = 2;
  config.worker_binary = worker_binary;
  Result<std::unique_ptr<serve::Router>> started =
      serve::Router::Start(data.points, config);
  if (!started.ok()) {
    ADD_FAILURE() << "Router::Start failed: "
                  << started.status().ToString();
    return "";
  }
  const Result<KnnResult> result =
      started.value()->JoinBatch(data.points, k);
  if (!result.ok()) {
    ADD_FAILURE() << "cluster JoinBatch failed: "
                  << result.status().ToString();
    return "";
  }
  std::ostringstream out;
  char buf[64];
  for (size_t q = 0; q < result.value().num_queries(); ++q) {
    out << q << ":";
    for (int i = 0; i < result.value().k(); ++i) {
      const Neighbor& n = result.value().row(q)[i];
      std::snprintf(buf, sizeof(buf), "%.9g", n.distance);
      out << " " << n.index << ":" << buf;
    }
    out << "\n";
  }
  return out.str();
}

void CheckGoldenNeighborsViaCluster(const std::string& name,
                                    double size_factor, int k) {
  const char* cli = std::getenv("SWEETKNN_CLI");
  if (cli == nullptr) {
    GTEST_SKIP() << "SWEETKNN_CLI not set; cluster leg needs the CLI binary";
  }
  if (g_update_goldens) {
    GTEST_SKIP() << "goldens are owned by the engine leg";
  }
  const std::string path = GoldenPath(name);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path;
  std::stringstream golden;
  golden << in.rdbuf();
  const std::string want = NeighborLines(golden.str());
  ASSERT_FALSE(want.empty()) << path << " holds no neighbor lines";
  const std::string got = ClusterNeighborSnapshot(name, size_factor, k, cli);
  if (::testing::Test::HasFailure()) return;
  if (want == got) return;
  std::istringstream a(want);
  std::istringstream b(got);
  std::string line_a;
  std::string line_b;
  size_t line_no = 1;
  while (std::getline(a, line_a)) {
    if (!std::getline(b, line_b)) line_b = "<missing>";
    if (line_a != line_b) break;
    ++line_no;
  }
  FAIL() << "cluster neighbor mismatch for " << name << " at neighbor line "
         << line_no << "\n  golden: " << line_a << "\n  cluster: " << line_b;
}

TEST(GoldenFileClusterTest, Kegg) {
  CheckGoldenNeighborsViaCluster("kegg", 0.02, 10);
}

TEST(GoldenFileClusterTest, SpatialNetwork3D) {
  CheckGoldenNeighborsViaCluster("3DNet", 0.005, 10);
}

/// The match-row and pair sections of a range golden: "q: ..." lines
/// (leading digit) and "p a b dist" lines. The counter lines above them
/// are single-index scan artifacts; the match tables are what the
/// cluster must reproduce byte for byte.
std::string RangeTableLines(const std::string& snapshot_text) {
  std::istringstream in(snapshot_text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (std::isdigit(static_cast<unsigned char>(line[0])) ||
        line.compare(0, 2, "p ") == 0) {
      out << line << "\n";
    }
  }
  return out.str();
}

/// The same radius scan and self-join, answered through a 2-worker
/// cluster's wire-job pipeline, formatted as golden table lines.
std::string ClusterRangeSnapshot(const std::string& dataset_name,
                                 double size_factor, float radius,
                                 const char* worker_binary) {
  const dataset::Dataset data = dataset::MakePaperDataset(
      dataset::PaperDatasetByName(dataset_name), size_factor);

  serve::RouterConfig config;
  config.service.num_shards = 2;
  config.num_workers = 2;
  config.worker_binary = worker_binary;
  Result<std::unique_ptr<serve::Router>> started =
      serve::Router::Start(data.points, config);
  if (!started.ok()) {
    ADD_FAILURE() << "Router::Start failed: "
                  << started.status().ToString();
    return "";
  }
  const Result<RangeResult> result =
      started.value()->RadiusSearch(data.points, radius);
  if (!result.ok()) {
    ADD_FAILURE() << "cluster RadiusSearch failed: "
                  << result.status().ToString();
    return "";
  }
  const Result<std::vector<SelfJoinPair>> pairs =
      started.value()->SelfJoin(radius);
  if (!pairs.ok()) {
    ADD_FAILURE() << "cluster SelfJoin failed: "
                  << pairs.status().ToString();
    return "";
  }
  std::ostringstream out;
  char buf[64];
  for (size_t q = 0; q < result.value().num_queries(); ++q) {
    out << q << ":";
    const Neighbor* row = result.value().begin(q);
    for (size_t i = 0; i < result.value().count(q); ++i) {
      std::snprintf(buf, sizeof(buf), "%.9g", row[i].distance);
      out << " " << row[i].index << ":" << buf;
    }
    out << "\n";
  }
  for (const SelfJoinPair& pair : pairs.value()) {
    std::snprintf(buf, sizeof(buf), "%.9g", pair.distance);
    out << "p " << pair.a << " " << pair.b << " " << buf << "\n";
  }
  return out.str();
}

void CheckRangeGoldenViaCluster(const std::string& name,
                                const std::string& dataset_name,
                                double size_factor, float radius) {
  const char* cli = std::getenv("SWEETKNN_CLI");
  if (cli == nullptr) {
    GTEST_SKIP() << "SWEETKNN_CLI not set; cluster leg needs the CLI binary";
  }
  if (g_update_goldens) {
    GTEST_SKIP() << "goldens are owned by the engine leg";
  }
  const std::string path = GoldenPath(name);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path;
  std::stringstream golden;
  golden << in.rdbuf();
  const std::string want = RangeTableLines(golden.str());
  ASSERT_FALSE(want.empty()) << path << " holds no range table lines";
  const std::string got =
      ClusterRangeSnapshot(dataset_name, size_factor, radius, cli);
  if (::testing::Test::HasFailure()) return;
  if (want == got) return;
  std::istringstream a(want);
  std::istringstream b(got);
  std::string line_a;
  std::string line_b;
  size_t line_no = 1;
  while (std::getline(a, line_a)) {
    if (!std::getline(b, line_b)) line_b = "<missing>";
    if (line_a != line_b) break;
    ++line_no;
  }
  FAIL() << "cluster range mismatch for " << name << " at table line "
         << line_no << "\n  golden: " << line_a << "\n  cluster: " << line_b;
}

TEST(GoldenFileClusterTest, KeggRange) {
  CheckRangeGoldenViaCluster("kegg_range", "kegg", 0.02, kKeggRadius);
}

TEST(GoldenFileClusterTest, SpatialNetwork3DRange) {
  CheckRangeGoldenViaCluster("3DNet_range", "3DNet", 0.005, k3DNetRadius);
}

}  // namespace
}  // namespace sweetknn

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update_goldens") {
      sweetknn::g_update_goldens = true;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
