#include "baseline/brute_force_cpu.h"
#include "baseline/brute_force_gpu.h"
#include "baseline/ti_knn_cpu.h"
#include "core/sweet_knn.h"
#include "dataset/paper_datasets.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ExpectResultsMatch;

/// Every engine must produce identical neighbors on miniature versions of
/// every paper dataset (the full pipeline: generation, clustering,
/// 2-level filtering, adaptive decisions).
class PaperDatasetAgreement : public ::testing::TestWithParam<const char*> {
};

TEST_P(PaperDatasetAgreement, AllEnginesAgree) {
  const auto& info = dataset::PaperDatasetByName(GetParam());
  // Miniature: cap points and dims so the quadratic oracle stays fast.
  dataset::MixtureConfig cfg;
  cfg.n = std::min<size_t>(info.scaled_points, 300);
  cfg.dims = std::min<size_t>(info.scaled_dims, 48);
  cfg.clusters = std::min(info.gen_clusters, 12);
  cfg.spread = info.gen_spread;
  cfg.size_skew = info.gen_size_skew;
  cfg.intrinsic_dim = info.gen_intrinsic_dim;
  cfg.seed = info.seed;
  const dataset::Dataset data = dataset::MakeGaussianMixture(info.name, cfg);
  const int k = 5;

  const KnnResult oracle =
      baseline::BruteForceCpu(data.points, data.points, k);

  // Sequential TI.
  ExpectResultsMatch(oracle, baseline::TiKnnCpu(data.points, data.points, k));

  // GPU brute force (exact mode).
  {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    baseline::BruteForceOptions options;
    options.exact = true;
    ExpectResultsMatch(
        oracle,
        baseline::BruteForceGpu(&dev, data.points, data.points, k, options,
                                nullptr),
        5e-3f);
  }

  // Basic TI on GPU and Sweet KNN.
  {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    ExpectResultsMatch(oracle, core::TiKnnEngine::RunOnce(
                                   &dev, data.points, data.points, k,
                                   core::TiOptions::BasicTi(), nullptr));
  }
  {
    SweetKnn knn;
    ExpectResultsMatch(oracle, knn.SelfJoin(data.points, k));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperDatasets, PaperDatasetAgreement,
                         ::testing::Values("3DNet", "kegg", "keggD",
                                           "ipums", "skin", "arcene", "kdd",
                                           "dor", "blog"));

TEST(EndToEndTest, KSweepOnScaledDevice) {
  const HostMatrix points = testing::ClusteredPoints(400, 12, 8, 131);
  const auto oracle_for = [&](int k) {
    return baseline::BruteForceCpu(points, points, k);
  };
  SweetKnn::Config config;
  config.device =
      gpusim::DeviceSpec::ScaledK20c(dataset::ScaledDeviceMemoryBytes());
  for (int k : {1, 2, 10, 40, 120}) {
    SweetKnn knn(config);
    ExpectResultsMatch(oracle_for(k), knn.SelfJoin(points, k));
  }
}

TEST(EndToEndTest, AdaptivePartialFilterEndToEnd) {
  // d=2, k=20 -> k/d = 10 > 8 -> partial filter, verified exact.
  const HostMatrix points = testing::ClusteredPoints(500, 2, 6, 132);
  SweetKnn knn;
  core::KnnRunStats stats;
  const KnnResult result = knn.SelfJoin(points, 20, &stats);
  EXPECT_EQ(stats.filter_used, core::Level2Filter::kPartial);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 20), result);
}

TEST(EndToEndTest, DuplicatePointsAreHandled) {
  // Many exact duplicates stress tie-breaking and zero distances.
  HostMatrix points(120, 3);
  for (size_t i = 0; i < 120; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      points.at(i, j) = static_cast<float>((i / 10) * 10 + j);
    }
  }
  SweetKnn knn;
  const KnnResult result = knn.SelfJoin(points, 12);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 12), result);
}

TEST(EndToEndTest, OneDimensionalData) {
  const dataset::Dataset grid = dataset::MakeGrid1D("grid", 200);
  SweetKnn knn;
  const KnnResult result = knn.SelfJoin(grid.points, 3);
  // On a grid, the neighbors of interior point i are {i, i-1 or i+1, ...}.
  EXPECT_EQ(result.row(100)[0].index, 100u);
  EXPECT_FLOAT_EQ(result.row(100)[1].distance, 1.0f);
  EXPECT_FLOAT_EQ(result.row(100)[2].distance, 1.0f);
  ExpectResultsMatch(baseline::BruteForceCpu(grid.points, grid.points, 3),
                     result);
}

TEST(EndToEndTest, TinyInputs) {
  for (size_t n : {1, 2, 3, 33}) {
    const HostMatrix points = testing::UniformPoints(n, 4, 133 + n);
    SweetKnn knn;
    const KnnResult result =
        knn.SelfJoin(points, std::min<int>(3, static_cast<int>(n)));
    ExpectResultsMatch(
        baseline::BruteForceCpu(points, points,
                                std::min<int>(3, static_cast<int>(n))),
        result);
  }
}

}  // namespace
}  // namespace sweetknn
