// Adversarial and degenerate inputs: configurations that stress the
// bound logic, tie handling, and partitioning paths.

#include "baseline/brute_force_cpu.h"
#include "core/sweet_knn.h"
#include "common/rng.h"
#include "dataset/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn {
namespace {

using testing::ExpectResultsMatch;

void ExpectExact(const HostMatrix& points, int k) {
  SweetKnn knn;
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, k),
                     knn.SelfJoin(points, k));
}

TEST(AdversarialTest, AllPointsIdentical) {
  HostMatrix points(100, 5);
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 5; ++j) points.at(i, j) = 3.25f;
  }
  SweetKnn knn;
  const KnnResult result = knn.SelfJoin(points, 4);
  // All distances are zero; ties broken by index => neighbors 0,1,2,3.
  for (size_t q = 0; q < 100; ++q) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(result.row(q)[i].distance, 0.0f);
      EXPECT_EQ(result.row(q)[i].index, static_cast<uint32_t>(i));
    }
  }
}

TEST(AdversarialTest, CollinearPoints) {
  HostMatrix points(200, 3);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      points.at(i, j) = static_cast<float>(i) * 0.5f;
    }
  }
  ExpectExact(points, 5);
}

TEST(AdversarialTest, TwoDistantSingletonsAmongClusters) {
  HostMatrix points = testing::ClusteredPoints(300, 4, 4, 181, 0.01f);
  // Isolated outliers whose kth neighbor is far outside any cluster.
  for (size_t j = 0; j < 4; ++j) {
    points.at(0, j) = 100.0f;
    points.at(1, j) = -100.0f;
  }
  ExpectExact(points, 6);
}

TEST(AdversarialTest, DuplicatedBlocksExactTies) {
  // Every point duplicated 4x: massive distance ties everywhere.
  HostMatrix points(240, 3);
  Rng rng(182);
  for (size_t g = 0; g < 60; ++g) {
    float v[3] = {rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    for (size_t copy = 0; copy < 4; ++copy) {
      for (size_t j = 0; j < 3; ++j) points.at(g * 4 + copy, j) = v[j];
    }
  }
  ExpectExact(points, 7);
}

TEST(AdversarialTest, SingleCluster) {
  const HostMatrix points = testing::ClusteredPoints(150, 6, 1, 183);
  ExpectExact(points, 5);
}

TEST(AdversarialTest, HugeKNearlyWholeSet) {
  const HostMatrix points = testing::ClusteredPoints(120, 4, 3, 184);
  ExpectExact(points, 119);
  ExpectExact(points, 120);
}

TEST(AdversarialTest, ZeroVarianceDimensions) {
  HostMatrix points = testing::ClusteredPoints(200, 8, 4, 185);
  for (size_t i = 0; i < 200; ++i) {
    points.at(i, 3) = 0.0f;
    points.at(i, 7) = 42.0f;
  }
  ExpectExact(points, 5);
}

TEST(AdversarialTest, ExtremeCoordinateMagnitudes) {
  HostMatrix points(100, 2);
  Rng rng(186);
  for (size_t i = 0; i < 100; ++i) {
    points.at(i, 0) = 1e6f + rng.NextFloat();
    points.at(i, 1) = 1e-6f * rng.NextFloat();
  }
  // Relative tolerance: distances carry the 1e6 offset's rounding.
  SweetKnn knn;
  const KnnResult result = knn.SelfJoin(points, 4);
  const KnnResult oracle = baseline::BruteForceCpu(points, points, 4);
  std::string msg;
  EXPECT_EQ(CountResultMismatches(oracle, result, 1e-3f, &msg), 0u) << msg;
}

TEST(AdversarialTest, HighlySkewedClusterSizes) {
  dataset::MixtureConfig cfg;
  cfg.n = 400;
  cfg.dims = 5;
  cfg.clusters = 8;
  cfg.size_skew = 6.0f;  // Largest component ~e^6 times the smallest.
  cfg.seed = 187;
  const dataset::Dataset data = dataset::MakeGaussianMixture("skew", cfg);
  ExpectExact(data.points, 9);
}

TEST(AdversarialTest, QueriesDisjointFromTargets) {
  // Query cloud entirely outside the target clusters.
  const HostMatrix target = testing::ClusteredPoints(250, 3, 4, 188);
  HostMatrix query(40, 3);
  Rng rng(189);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      query.at(i, j) = 50.0f + rng.NextFloat();
    }
  }
  SweetKnn knn;
  ExpectResultsMatch(baseline::BruteForceCpu(query, target, 5),
                     knn.Join(query, target, 5));
}

TEST(AdversarialTest, SingleTargetPoint) {
  const HostMatrix query = testing::UniformPoints(30, 4, 190);
  HostMatrix target(1, 4);
  SweetKnn knn;
  const KnnResult result = knn.Join(query, target, 3);
  for (size_t q = 0; q < 30; ++q) {
    EXPECT_EQ(result.row(q)[0].index, 0u);
    EXPECT_EQ(result.row(q)[1].index, kInvalidNeighbor);
  }
}

}  // namespace
}  // namespace sweetknn
