// Cluster-vs-local differential harness: a multi-process router/worker
// cluster (serve/router.h + `sweetknn_cli shard-worker` processes) must
// answer BIT-IDENTICALLY to a single-process KnnService over the same
// target and the same seeded query/mutation sequence — across worker
// counts, with and without replicas, and before/during/after a worker
// is SIGKILLed mid-stream (replica failover). Both backends host the
// identical ShardHost code (serve/shard_backend.h), so any divergence
// is a transport, placement, or failover bug.
//
// On a mismatch each sequence prints a one-line repro extending the
// mutation-fuzz format (tests/integration/mutation_fuzz_test.cc) with
// the cluster dimensions:
//   tier=cluster seed=S n0=N d=D ops=O clusters=C shards=SH
//   workers=W replicas=R kill_at=K metric=M
//
// The suite needs the worker binary: it skips unless SWEETKNN_CLI points
// at the sweetknn_cli executable (ctest exports it; CI runs the fast
// tier as the cluster stage).
//
// Tiers:
//   ClusterFast.*: one/two-worker runs plus a kill+failover leg — the
//                  CI cluster stage.
//   ClusterSlow.*: the full sweep W in {1,2,4} x replicas in {0,1},
//                  several seeds each, plus RestoreReplication followed
//                  by a second kill.

#include <signal.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "serve/router.h"
#include "test_util.h"

namespace sweetknn {
namespace {

constexpr uint64_t kBaseSeed = 20260809;

const char* CliBinary() { return std::getenv("SWEETKNN_CLI"); }

struct ClusterFuzzConfig {
  uint64_t seed = 0;
  size_t n0 = 0;
  size_t dims = 0;
  int ops = 0;
  int clusters = 1;
  int shards = 1;
  int workers = 1;
  int replicas = 0;
  /// Op index at which a worker is SIGKILLed (-1 = never). Requires
  /// replicas >= 1 and workers >= 2, or shards would be lost.
  int kill_at = -1;
  core::Metric metric = core::Metric::kEuclidean;
};

std::string Repro(const ClusterFuzzConfig& cfg) {
  std::ostringstream out;
  out << "tier=cluster seed=" << cfg.seed << " n0=" << cfg.n0
      << " d=" << cfg.dims << " ops=" << cfg.ops
      << " clusters=" << cfg.clusters << " shards=" << cfg.shards
      << " workers=" << cfg.workers << " replicas=" << cfg.replicas
      << " kill_at=" << cfg.kill_at << " metric="
      << (cfg.metric == core::Metric::kEuclidean ? "euclidean"
                                                 : "manhattan");
  return out.str();
}

ClusterFuzzConfig DrawConfig(uint64_t seed, int workers, int replicas) {
  Rng rng(seed);
  ClusterFuzzConfig cfg;
  cfg.seed = seed;
  cfg.n0 = 16 + rng.NextBounded(48);
  cfg.dims = 1 + rng.NextBounded(6);
  cfg.ops = 14 + static_cast<int>(rng.NextBounded(14));
  cfg.clusters = 1 + static_cast<int>(rng.NextBounded(3));
  cfg.shards = 1 + static_cast<int>(rng.NextBounded(4));
  cfg.workers = workers;
  cfg.replicas = replicas;
  cfg.metric = rng.NextBounded(2) == 0 ? core::Metric::kEuclidean
                                       : core::Metric::kManhattan;
  if (replicas >= 1 && workers >= 2 && rng.NextBounded(2) == 0) {
    cfg.kill_at = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(cfg.ops)));
  }
  return cfg;
}

bool ExpectBitIdentical(const KnnResult& want, const KnnResult& got,
                        const std::string& what) {
  if (want.num_queries() != got.num_queries() || want.k() != got.k()) {
    ADD_FAILURE() << what << ": shape mismatch (" << want.num_queries()
                  << "x" << want.k() << " vs " << got.num_queries() << "x"
                  << got.k() << ")";
    return false;
  }
  for (size_t q = 0; q < want.num_queries(); ++q) {
    for (int i = 0; i < want.k(); ++i) {
      const Neighbor& w = want.row(q)[i];
      const Neighbor& g = got.row(q)[i];
      if (w.index != g.index ||
          std::memcmp(&w.distance, &g.distance, sizeof(float)) != 0) {
        ADD_FAILURE() << what << ": query " << q << " rank " << i
                      << " local (" << w.index << ", " << w.distance
                      << ") cluster (" << g.index << ", " << g.distance
                      << ")";
        return false;
      }
    }
  }
  return true;
}

HostMatrix RandomQueries(Rng* rng, size_t rows, size_t dims) {
  HostMatrix queries(rows, dims);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t j = 0; j < dims; ++j) queries.at(r, j) = rng->NextFloat();
  }
  return queries;
}

/// One lockstep sequence: the same ops against the local service and the
/// cluster, every query byte-compared. Returns early on the first
/// failure (the SCOPED_TRACE repro line identifies the sequence).
void RunClusterSequence(const ClusterFuzzConfig& cfg) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n0, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);

  serve::ServiceConfig service_config;
  service_config.num_shards = cfg.shards;
  service_config.max_batch_size = 8;
  service_config.max_batch_wait = std::chrono::microseconds(200);
  service_config.options.metric = cfg.metric;
  service_config.auto_compact = false;  // compactions run in lockstep
  serve::KnnService local(target, service_config);

  serve::RouterConfig router_config;
  router_config.service = service_config;
  router_config.num_workers = cfg.workers;
  router_config.replicas = cfg.replicas;
  router_config.worker_binary = CliBinary();
  Result<std::unique_ptr<serve::Router>> started =
      serve::Router::Start(target, router_config);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  serve::Router& cluster = *started.value();

  // The light model: live ids and the allocator position, to draw
  // realistic removes and k values. Correctness is local-vs-cluster.
  std::set<uint32_t> live;
  for (uint32_t i = 0; i < cfg.n0; ++i) live.insert(i);
  uint32_t next_id = static_cast<uint32_t>(cfg.n0);

  Rng rng(SplitMix64(cfg.seed + 51));
  for (int op = 0; op < cfg.ops; ++op) {
    if (op == cfg.kill_at) {
      // Kill the primary of shard 0 mid-stream; with replicas >= 1 every
      // shard it hosted fails over and answers must not change by a bit.
      const int victim = 0 % cluster.num_workers();
      ASSERT_EQ(::kill(cluster.worker_pid(victim), SIGKILL), 0);
    }
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 22) {
      std::vector<float> point(cfg.dims);
      for (float& x : point) x = rng.NextFloat();
      const Result<uint32_t> local_id = local.Insert(point);
      const Result<uint32_t> cluster_id = cluster.Insert(point);
      ASSERT_TRUE(local_id.ok()) << local_id.status().ToString();
      ASSERT_TRUE(cluster_id.ok()) << cluster_id.status().ToString();
      if (local_id.value() != cluster_id.value() ||
          local_id.value() != next_id) {
        ADD_FAILURE() << "op " << op << ": id skew (local "
                      << local_id.value() << ", cluster "
                      << cluster_id.value() << ", expected " << next_id
                      << ")";
        break;
      }
      live.insert(next_id);
      ++next_id;
    } else if (dice < 42) {
      uint32_t id;
      if (!live.empty() && rng.NextBounded(4) != 0) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(live.size())));
        id = *it;
      } else {
        id = static_cast<uint32_t>(rng.NextBounded(next_id + 3));
      }
      const Result<bool> local_found = local.Remove(id);
      const Result<bool> cluster_found = cluster.Remove(id);
      ASSERT_TRUE(local_found.ok()) << local_found.status().ToString();
      ASSERT_TRUE(cluster_found.ok()) << cluster_found.status().ToString();
      if (local_found.value() != cluster_found.value()) {
        ADD_FAILURE() << "op " << op << ": Remove(" << id << ") local "
                      << local_found.value() << ", cluster "
                      << cluster_found.value();
        break;
      }
      live.erase(id);
    } else if (dice < 50) {
      const int shard = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(cfg.shards)));
      const Status local_status = local.CompactShard(shard);
      const Status cluster_status = cluster.CompactShard(shard);
      ASSERT_TRUE(local_status.ok()) << local_status.ToString();
      ASSERT_TRUE(cluster_status.ok()) << cluster_status.ToString();
    } else {
      const size_t m = 1 + rng.NextBounded(3);
      const HostMatrix queries = RandomQueries(&rng, m, cfg.dims);
      const int k =
          1 + static_cast<int>(rng.NextBounded(
                  std::min<uint64_t>(live.empty() ? 4 : live.size(), 10)));
      const Result<KnnResult> want = local.JoinBatch(queries, k);
      const Result<KnnResult> got = cluster.JoinBatch(queries, k);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (!ExpectBitIdentical(want.value(), got.value(),
                              "op " + std::to_string(op) + " query")) {
        break;
      }
    }
  }

  // Epilogue: a wider batch, then full lockstep compaction, then the
  // same batch again — both still byte-identical.
  if (!::testing::Test::HasFailure()) {
    const HostMatrix queries = RandomQueries(&rng, 5, cfg.dims);
    const int k = live.empty()
                      ? 3
                      : 1 + static_cast<int>(rng.NextBounded(
                                std::min<uint64_t>(live.size(), 10)));
    Result<KnnResult> want = local.JoinBatch(queries, k);
    Result<KnnResult> got = cluster.JoinBatch(queries, k);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectBitIdentical(want.value(), got.value(), "epilogue query");

    ASSERT_TRUE(local.CompactAll().ok());
    ASSERT_TRUE(cluster.CompactAll().ok());
    want = local.JoinBatch(queries, k);
    got = cluster.JoinBatch(queries, k);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectBitIdentical(want.value(), got.value(),
                       "post-CompactAll epilogue query");
  }

  // Job modalities (docs/modalities.md): the same offline jobs against
  // both backends — cluster jobs run through the kJobSubmit/kJobPoll/
  // kJobResult wire protocol and must still be byte-equal to local.
  if (!::testing::Test::HasFailure()) {
    const float radius = 0.05f + rng.NextFloat() * 0.5f;
    const HostMatrix range_queries = RandomQueries(&rng, 3, cfg.dims);
    const Result<RangeResult> local_range =
        local.RadiusSearch(range_queries, radius);
    const Result<RangeResult> cluster_range =
        cluster.RadiusSearch(range_queries, radius);
    ASSERT_TRUE(local_range.ok()) << local_range.status().ToString();
    ASSERT_TRUE(cluster_range.ok()) << cluster_range.status().ToString();
    EXPECT_TRUE(BitIdentical(local_range.value(), cluster_range.value()))
        << "RadiusSearch(r=" << radius << ") diverged local vs cluster";

    const Result<std::vector<SelfJoinPair>> local_join =
        local.SelfJoin(radius);
    const Result<std::vector<SelfJoinPair>> cluster_join =
        cluster.SelfJoin(radius);
    ASSERT_TRUE(local_join.ok()) << local_join.status().ToString();
    ASSERT_TRUE(cluster_join.ok()) << cluster_join.status().ToString();
    ASSERT_EQ(local_join.value().size(), cluster_join.value().size())
        << "SelfJoin(r=" << radius << ") pair counts diverged";
    for (size_t i = 0; i < local_join.value().size(); ++i) {
      const SelfJoinPair& w = local_join.value()[i];
      const SelfJoinPair& g = cluster_join.value()[i];
      ASSERT_TRUE(w == g) << "SelfJoin pair " << i << ": local (" << w.a
                          << "," << w.b << "," << w.distance
                          << ") cluster (" << g.a << "," << g.b << ","
                          << g.distance << ")";
    }

    if (!live.empty()) {
      const int graph_k = 1 + static_cast<int>(rng.NextBounded(
                                  std::min<uint64_t>(live.size(), 6)));
      const Result<serve::JobOutput> local_graph = local.KnnGraph(graph_k);
      const Result<serve::JobOutput> cluster_graph =
          cluster.KnnGraph(graph_k);
      ASSERT_TRUE(local_graph.ok()) << local_graph.status().ToString();
      ASSERT_TRUE(cluster_graph.ok()) << cluster_graph.status().ToString();
      ASSERT_EQ(local_graph.value().query_ids, cluster_graph.value().query_ids)
          << "KnnGraph(k=" << graph_k << ") id order diverged";
      ExpectBitIdentical(local_graph.value().graph,
                         cluster_graph.value().graph,
                         "KnnGraph(k=" + std::to_string(graph_k) + ")");
    }
  }

  EXPECT_EQ(local.target_rows(), cluster.target_rows());
  cluster.Shutdown();
  local.Shutdown();
}

void RunSweep(uint64_t seed_offset, int count, int workers, int replicas) {
  if (CliBinary() == nullptr) {
    GTEST_SKIP() << "SWEETKNN_CLI not set; this suite needs the CLI binary";
  }
  for (int i = 0; i < count; ++i) {
    const ClusterFuzzConfig cfg = DrawConfig(
        kBaseSeed + seed_offset + static_cast<uint64_t>(i), workers,
        replicas);
    SCOPED_TRACE(Repro(cfg));
    RunClusterSequence(cfg);
    if (::testing::Test::HasFailure()) break;  // first repro is enough
  }
}

// --- Fast tier: the CI cluster stage ---------------------------------------

TEST(ClusterFast, SingleWorkerBitIdentical) {
  RunSweep(/*seed_offset=*/0, /*count=*/2, /*workers=*/1, /*replicas=*/0);
}

TEST(ClusterFast, TwoWorkersBitIdentical) {
  RunSweep(/*seed_offset=*/100, /*count=*/2, /*workers=*/2, /*replicas=*/0);
}

TEST(ClusterFast, KillWithReplicaFailsOverBitIdentically) {
  if (CliBinary() == nullptr) {
    GTEST_SKIP() << "SWEETKNN_CLI not set; this suite needs the CLI binary";
  }
  // A deterministic kill mid-sequence rather than a drawn one: the
  // failover leg must run every time the fast tier does.
  ClusterFuzzConfig cfg = DrawConfig(kBaseSeed + 200, /*workers=*/2,
                                     /*replicas=*/1);
  cfg.kill_at = cfg.ops / 2;
  SCOPED_TRACE(Repro(cfg));
  RunClusterSequence(cfg);
}

// --- Slow tier: the full sweep ----------------------------------------------

TEST(ClusterSlow, OneWorkerSweep) { RunSweep(1000, 3, 1, 0); }
TEST(ClusterSlow, TwoWorkerSweep) { RunSweep(2000, 3, 2, 0); }
TEST(ClusterSlow, TwoWorkerReplicatedSweep) { RunSweep(3000, 3, 2, 1); }
TEST(ClusterSlow, FourWorkerSweep) { RunSweep(4000, 3, 4, 0); }
TEST(ClusterSlow, FourWorkerReplicatedSweep) { RunSweep(5000, 3, 4, 1); }

// RestoreReplication: after a first kill and catch-up, the cluster
// survives a SECOND worker death — and stays bit-identical throughout.
TEST(ClusterSlow, ReplicaCatchUpSurvivesSecondKill) {
  if (CliBinary() == nullptr) {
    GTEST_SKIP() << "SWEETKNN_CLI not set; this suite needs the CLI binary";
  }
  const size_t dims = 4;
  const HostMatrix target =
      testing::ClusteredPoints(64, dims, 3, SplitMix64(kBaseSeed + 7), 0.08f);

  serve::ServiceConfig service_config;
  service_config.num_shards = 4;
  service_config.max_batch_size = 8;
  service_config.max_batch_wait = std::chrono::microseconds(200);
  service_config.auto_compact = false;
  serve::KnnService local(target, service_config);

  serve::RouterConfig router_config;
  router_config.service = service_config;
  router_config.num_workers = 4;
  router_config.replicas = 1;
  router_config.worker_binary = CliBinary();
  Result<std::unique_ptr<serve::Router>> started =
      serve::Router::Start(target, router_config);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  serve::Router& cluster = *started.value();

  Rng rng(SplitMix64(kBaseSeed + 71));
  auto check = [&](const char* what) {
    const HostMatrix queries = RandomQueries(&rng, 3, dims);
    const Result<KnnResult> want = local.JoinBatch(queries, 5);
    const Result<KnnResult> got = cluster.JoinBatch(queries, 5);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(want.value(), got.value(), what);
  };

  // Mutate a little so catch-up snapshots carry a real overlay.
  for (int i = 0; i < 6; ++i) {
    std::vector<float> point(dims);
    for (float& x : point) x = rng.NextFloat();
    ASSERT_TRUE(local.Insert(point).ok());
    ASSERT_TRUE(cluster.Insert(point).ok());
  }
  ASSERT_TRUE(local.Remove(3).value());
  ASSERT_TRUE(cluster.Remove(3).value());
  check("before first kill");

  ASSERT_EQ(::kill(cluster.worker_pid(1), SIGKILL), 0);
  check("after first kill (failover)");
  EXPECT_FALSE(cluster.worker_alive(1));

  const Status restored = cluster.RestoreReplication();
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  EXPECT_GE(cluster.stats().replicas_restored, 1u);
  check("after catch-up");

  // Mutations after catch-up must reach the restored replicas too...
  for (int i = 0; i < 4; ++i) {
    std::vector<float> point(dims);
    for (float& x : point) x = rng.NextFloat();
    ASSERT_TRUE(local.Insert(point).ok());
    ASSERT_TRUE(cluster.Insert(point).ok());
  }
  // ...because the second death makes them authoritative for every
  // shard the dead worker was primary of.
  ASSERT_EQ(::kill(cluster.worker_pid(2), SIGKILL), 0);
  check("after second kill");
  EXPECT_EQ(local.target_rows(), cluster.target_rows());

  cluster.Shutdown();
  local.Shutdown();
}

}  // namespace
}  // namespace sweetknn
