// Differential fuzzing: ~200 seeded random configurations of the TI
// engine (n, d, k, metric, filter strength, placement, layout,
// sim_threads, ...) checked against the BruteForceCpu oracle, and — for
// the serving layer's exactness guarantee — a sharded KnnService driven
// by concurrent clients checked bit-for-bit against the single-engine
// result of the same options. A second sweep proves the persistence
// guarantee: an index saved to a snapshot and warm-loaded answers
// bit-identically to the cold-built one under every fuzzed
// configuration. A third sweep covers the approximate tier's recall
// SLA: seeded ANN configs measure true recall@k against the oracle and
// demand each config's recall_target, while exact traffic on the same
// ANN-enabled index/service stays bit-identical to an ANN-free build.
// Any mismatch prints a one-line repro of the failing seed/config.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "baseline/brute_force_cpu.h"
#include "common/rng.h"
#include "core/sweet_knn.h"
#include "core/ti_knn_gpu.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "simd/simd_kernels.h"
#include "test_util.h"

namespace sweetknn {
namespace {

constexpr uint64_t kBaseSeed = 20260806;
constexpr int kNumConfigs = 200;

struct FuzzConfig {
  uint64_t seed = 0;
  size_t n = 0;
  size_t query_n = 0;  // == n for self-joins
  size_t dims = 0;
  int k = 0;
  bool self_join = false;
  int clusters = 1;
  int service_shards = 2;
  core::TiOptions options;
};

const char* FilterName(const std::optional<core::Level2Filter>& f) {
  if (!f.has_value()) return "adaptive";
  return *f == core::Level2Filter::kFull ? "full" : "partial";
}

const char* PlacementName(
    const std::optional<core::KnearestsPlacement>& p) {
  if (!p.has_value()) return "adaptive";
  switch (*p) {
    case core::KnearestsPlacement::kGlobal: return "global";
    case core::KnearestsPlacement::kShared: return "shared";
    case core::KnearestsPlacement::kRegisters: return "registers";
  }
  return "?";
}

/// One-line repro of a failing config, pasteable into a bug report.
std::string Repro(const FuzzConfig& cfg) {
  std::ostringstream out;
  out << "seed=" << cfg.seed << " n=" << cfg.n << " m=" << cfg.query_n
      << " d=" << cfg.dims << " k=" << cfg.k
      << " self_join=" << (cfg.self_join ? 1 : 0)
      << " clusters=" << cfg.clusters << " metric="
      << (cfg.options.metric == core::Metric::kEuclidean ? "euclidean"
                                                         : "manhattan")
      << " filter=" << FilterName(cfg.options.filter_override)
      << " placement=" << PlacementName(cfg.options.placement_override)
      << " layout="
      << (cfg.options.layout == core::PointLayout::kRowMajor ? "row" : "col")
      << " vec=" << cfg.options.point_vector_width
      << " knl="
      << (cfg.options.knearests_layout == core::KnearestsLayout::kBlocked
              ? "blocked"
              : "interleaved")
      << " remap=" << (cfg.options.remap_threads ? 1 : 0)
      << " elastic=" << (cfg.options.elastic_parallelism ? 1 : 0)
      << " tpq=" << cfg.options.threads_per_query_override
      << " sim_threads=" << cfg.options.sim_threads
      << " shards=" << cfg.service_shards;
  return out.str();
}

FuzzConfig DrawConfig(uint64_t seed) {
  Rng rng(seed);
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.n = 24 + rng.NextBounded(233);
  cfg.dims = 1 + rng.NextBounded(16);
  cfg.k = 1 + static_cast<int>(
                  rng.NextBounded(std::min<uint64_t>(cfg.n, 48)));
  cfg.self_join = rng.NextBounded(2) == 0;
  cfg.query_n = cfg.self_join ? cfg.n : 8 + rng.NextBounded(cfg.n);
  cfg.clusters = 1 + static_cast<int>(rng.NextBounded(5));
  cfg.service_shards = 2 + static_cast<int>(rng.NextBounded(2));

  core::TiOptions& opt = cfg.options;
  opt.metric = rng.NextBounded(2) == 0 ? core::Metric::kEuclidean
                                       : core::Metric::kManhattan;
  opt.layout = rng.NextBounded(2) == 0 ? core::PointLayout::kRowMajor
                                       : core::PointLayout::kColumnMajor;
  opt.point_vector_width = rng.NextBounded(2) == 0 ? 4 : 1;
  opt.knearests_layout = rng.NextBounded(2) == 0
                             ? core::KnearestsLayout::kInterleaved
                             : core::KnearestsLayout::kBlocked;
  opt.remap_threads = rng.NextBounded(2) == 0;
  opt.elastic_parallelism = rng.NextBounded(2) == 0;
  switch (rng.NextBounded(3)) {
    case 0: break;  // adaptive
    case 1: opt.filter_override = core::Level2Filter::kFull; break;
    case 2: opt.filter_override = core::Level2Filter::kPartial; break;
  }
  switch (rng.NextBounded(4)) {
    case 0: break;  // adaptive
    case 1: opt.placement_override = core::KnearestsPlacement::kGlobal;
      break;
    case 2:
      // A forced shared-memory kNearests must actually fit in shared
      // memory (the adaptive scheme only picks it when it does).
      if (opt.block_threads * 4 * cfg.k <= 40 * 1024) {
        opt.placement_override = core::KnearestsPlacement::kShared;
      }
      break;
    case 3: opt.placement_override = core::KnearestsPlacement::kRegisters;
      break;
  }
  const uint64_t tpq = rng.NextBounded(4);
  opt.threads_per_query_override = tpq < 2 ? 0 : static_cast<int>(tpq);
  opt.sim_threads = rng.NextBounded(2) == 0 ? 1 : 4;
  return cfg;
}

void RunConfig(const FuzzConfig& cfg) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);
  const HostMatrix distinct_query =
      cfg.self_join ? HostMatrix()
                    : testing::ClusteredPoints(cfg.query_n, cfg.dims,
                                               cfg.clusters,
                                               SplitMix64(cfg.seed + 1),
                                               0.08f);
  const HostMatrix& queries = cfg.self_join ? target : distinct_query;

  const KnnResult oracle = baseline::BruteForceCpu(
      queries, target, cfg.k, cfg.options.metric);

  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  const KnnResult engine_result = core::TiKnnEngine::RunOnce(
      &dev, queries, target, cfg.k, cfg.options, nullptr);

  std::string mismatch;
  const size_t bad =
      CountResultMismatches(oracle, engine_result, 2e-4f, &mismatch);
  if (bad != 0) {
    ADD_FAILURE() << "engine vs oracle: " << bad << " bad slots ("
                  << mismatch << ") — repro: " << Repro(cfg);
    return;
  }

  // Serving layer: sharded + micro-batched + concurrent clients must be
  // bit-identical to the single-engine result above.
  serve::ServiceConfig service_config;
  service_config.num_shards = cfg.service_shards;
  service_config.max_batch_size = 16;
  service_config.max_batch_wait = std::chrono::microseconds(300);
  service_config.options = cfg.options;
  serve::KnnService service(target, service_config);

  constexpr int kClients = 4;
  std::vector<KnnResult> answers(kClients);
  std::vector<size_t> begins(kClients);
  std::vector<std::thread> clients;
  const size_t per_client = (queries.rows() + kClients - 1) / kClients;
  for (int c = 0; c < kClients; ++c) {
    const size_t begin = std::min(queries.rows(), c * per_client);
    const size_t end = std::min(queries.rows(), begin + per_client);
    begins[static_cast<size_t>(c)] = begin;
    if (begin == end) continue;
    clients.emplace_back([&, c, begin, end] {
      HostMatrix slice(end - begin, queries.cols());
      for (size_t r = begin; r < end; ++r) {
        for (size_t j = 0; j < queries.cols(); ++j) {
          slice.at(r - begin, j) = queries.at(r, j);
        }
      }
      answers[static_cast<size_t>(c)] =
          service.JoinBatch(slice, cfg.k).value();
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    const KnnResult& answer = answers[static_cast<size_t>(c)];
    for (size_t r = 0; r < answer.num_queries(); ++r) {
      const size_t global = begins[static_cast<size_t>(c)] + r;
      for (int i = 0; i < cfg.k; ++i) {
        const Neighbor& want = engine_result.row(global)[i];
        const Neighbor& got = answer.row(r)[i];
        if (want.index != got.index || want.distance != got.distance) {
          ADD_FAILURE() << "service vs single engine: query " << global
                        << " rank " << i << " want (" << want.index << ", "
                        << want.distance << ") got (" << got.index << ", "
                        << got.distance << ") — repro: " << Repro(cfg);
          return;
        }
      }
    }
  }

  // Persistence: the same service warm-started from per-shard snapshots
  // must also be bit-identical to the single-engine result.
  const std::string snapshot_dir =
      ::testing::TempDir() + "/fuzz_service_snapshots";
  std::filesystem::remove_all(snapshot_dir);
  const Status saved = service.SaveSnapshots(snapshot_dir);
  if (!saved.ok()) {
    ADD_FAILURE() << "SaveSnapshots failed: " << saved.ToString()
                  << " — repro: " << Repro(cfg);
    return;
  }
  serve::ServiceConfig warm_config = service_config;
  warm_config.snapshot_dir = snapshot_dir;
  serve::KnnService warm_service(target, warm_config);
  if (warm_service.stats().warm_started_shards !=
      static_cast<uint64_t>(warm_service.num_shards())) {
    ADD_FAILURE() << "service fell back to a cold build — repro: "
                  << Repro(cfg);
    std::filesystem::remove_all(snapshot_dir);
    return;
  }
  const KnnResult warm_answer =
      warm_service.JoinBatch(queries, cfg.k).value();
  for (size_t q = 0; q < warm_answer.num_queries(); ++q) {
    if (std::memcmp(engine_result.row(q), warm_answer.row(q),
                    static_cast<size_t>(cfg.k) * sizeof(Neighbor)) != 0) {
      ADD_FAILURE() << "warm-started service diverged at query " << q
                    << " — repro: " << Repro(cfg);
      break;
    }
  }
  std::filesystem::remove_all(snapshot_dir);
}

TEST(DifferentialFuzzTest, SweepMatchesOracleAndServiceIsBitIdentical) {
  for (int i = 0; i < kNumConfigs; ++i) {
    const FuzzConfig cfg = DrawConfig(kBaseSeed + static_cast<uint64_t>(i));
    SCOPED_TRACE(Repro(cfg));
    RunConfig(cfg);
    if (::testing::Test::HasFailure()) break;  // first repro is enough
  }
}

/// Cold-built index vs Save → Load of the same index: every answer must
/// be bit-identical under the fuzzed options, not merely close.
void RunWarmStartConfig(const FuzzConfig& cfg, const std::string& path) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);
  const HostMatrix queries = testing::ClusteredPoints(
      cfg.query_n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed + 1), 0.08f);

  SweetKnn::Config config;
  config.options = cfg.options;
  SweetKnnIndex cold(target, config);
  const Status saved = cold.Save(path, "warm-start-fuzz");
  if (!saved.ok()) {
    ADD_FAILURE() << "Save failed: " << saved.ToString()
                  << " — repro: " << Repro(cfg);
    return;
  }
  Result<std::unique_ptr<SweetKnnIndex>> warm =
      SweetKnnIndex::Load(path, config);
  if (!warm.ok()) {
    ADD_FAILURE() << "Load failed: " << warm.status().ToString()
                  << " — repro: " << Repro(cfg);
    return;
  }

  const KnnResult want = cold.Query(queries, cfg.k);
  const KnnResult got = warm.value()->Query(queries, cfg.k);
  ASSERT_EQ(want.num_queries(), got.num_queries());
  for (size_t q = 0; q < want.num_queries(); ++q) {
    if (std::memcmp(want.row(q), got.row(q),
                    static_cast<size_t>(cfg.k) * sizeof(Neighbor)) != 0) {
      ADD_FAILURE() << "warm-loaded index diverged at query " << q
                    << " — repro: " << Repro(cfg);
      return;
    }
  }
}

TEST(DifferentialFuzzTest, WarmStartedIndexIsBitIdenticalAcrossConfigs) {
  const std::string path = ::testing::TempDir() + "/fuzz_warm.sksnap";
  constexpr int kWarmConfigs = 40;
  for (int i = 0; i < kWarmConfigs; ++i) {
    const FuzzConfig cfg = DrawConfig(kBaseSeed + 1000 +
                                      static_cast<uint64_t>(i));
    SCOPED_TRACE(Repro(cfg));
    RunWarmStartConfig(cfg, path);
    if (::testing::Test::HasFailure()) break;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Approximate tier: the recall SLA, checked against the oracle
// (docs/approx.md). Every seeded config computes TRUE recall@k of the
// approx answers against BruteForceCpu and demands the config's
// recall_target is met, while the exact path of the very same
// ANN-enabled index/service stays bit-identical to an ANN-free build.
// ---------------------------------------------------------------------------

struct ApproxFuzzConfig {
  uint64_t seed = 0;
  size_t n = 0;
  size_t query_n = 0;
  size_t dims = 0;
  int k = 0;
  int clusters = 1;
  int service_shards = 2;
  double recall_target = 0.9;
  core::Metric metric = core::Metric::kEuclidean;
};

std::string ApproxRepro(const ApproxFuzzConfig& cfg) {
  std::ostringstream out;
  out << "approx seed=" << cfg.seed << " n=" << cfg.n
      << " m=" << cfg.query_n << " d=" << cfg.dims << " k=" << cfg.k
      << " clusters=" << cfg.clusters << " shards=" << cfg.service_shards
      << " recall_target=" << cfg.recall_target << " metric="
      << (cfg.metric == core::Metric::kEuclidean ? "euclidean"
                                                 : "manhattan");
  return out.str();
}

ApproxFuzzConfig DrawApproxConfig(uint64_t seed) {
  Rng rng(seed);
  ApproxFuzzConfig cfg;
  cfg.seed = seed;
  // Large enough that the default candidate budget (>= 64) cannot fall
  // back to the exact full scan: the graph search itself is under test.
  // k and the query count stay high enough that mean recall is a
  // fine-grained statistic — at k=1 a handful of queries each contribute
  // 0-or-1 and the mean cannot resolve a 0.95 SLA.
  cfg.n = 500 + rng.NextBounded(1000);
  cfg.query_n = 48 + rng.NextBounded(33);
  cfg.dims = 2 + rng.NextBounded(9);
  cfg.k = 4 + static_cast<int>(rng.NextBounded(13));
  cfg.clusters = 4 + static_cast<int>(rng.NextBounded(7));
  cfg.service_shards = 2 + static_cast<int>(rng.NextBounded(2));
  switch (rng.NextBounded(3)) {
    case 0: cfg.recall_target = 0.9; break;
    case 1: cfg.recall_target = 0.95; break;
    case 2: cfg.recall_target = 0.99; break;
  }
  cfg.metric = rng.NextBounded(2) == 0 ? core::Metric::kEuclidean
                                       : core::Metric::kManhattan;
  return cfg;
}

double MeanRecall(const KnnResult& truth, const KnnResult& got, int k) {
  double sum = 0.0;
  size_t measured = 0;
  for (size_t q = 0; q < truth.num_queries(); ++q) {
    std::set<uint32_t> want;
    for (int j = 0; j < k; ++j) {
      if (truth.row(q)[j].index == kInvalidNeighbor) break;
      want.insert(truth.row(q)[j].index);
    }
    if (want.empty()) continue;
    size_t hits = 0;
    for (int j = 0; j < k; ++j) {
      if (want.count(got.row(q)[j].index) != 0) ++hits;
    }
    sum += static_cast<double>(hits) / static_cast<double>(want.size());
    ++measured;
  }
  return measured == 0 ? 1.0 : sum / static_cast<double>(measured);
}

void RunApproxConfig(const ApproxFuzzConfig& cfg) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);
  const HostMatrix queries = testing::ClusteredPoints(
      cfg.query_n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed + 1), 0.08f);
  const KnnResult oracle = baseline::BruteForceCpu(
      queries, target, cfg.k, cfg.metric);
  const ann::SearchMode mode = ann::SearchMode::Approx(cfg.recall_target);

  // Index tier: exact answers of the ANN-enabled index are bit-identical
  // to an ANN-free build; approx answers meet the SLA against the oracle.
  SweetKnn::Config plain_config;
  plain_config.options.metric = cfg.metric;
  SweetKnn::Config ann_config = plain_config;
  ann_config.enable_ann = true;
  SweetKnnIndex plain(target, plain_config);
  SweetKnnIndex index(target, ann_config);
  const KnnResult exact_plain = plain.Query(queries, cfg.k);
  const KnnResult exact_ann = index.Query(queries, cfg.k);
  for (size_t q = 0; q < exact_plain.num_queries(); ++q) {
    if (std::memcmp(exact_plain.row(q), exact_ann.row(q),
                    static_cast<size_t>(cfg.k) * sizeof(Neighbor)) != 0) {
      ADD_FAILURE() << "enabling the ANN tier changed an exact answer at "
                    << "query " << q << " — repro: " << ApproxRepro(cfg);
      return;
    }
  }
  ann::AnnSearchStats ann_stats;
  const KnnResult approx =
      index.Query(queries, cfg.k, mode, nullptr, &ann_stats);
  const double recall = MeanRecall(oracle, approx, cfg.k);
  if (recall < cfg.recall_target) {
    ADD_FAILURE() << "index approx recall " << recall << " misses target "
                  << cfg.recall_target << " — repro: " << ApproxRepro(cfg);
    return;
  }
  if (ann_stats.hops + ann_stats.full_scans == 0) {
    ADD_FAILURE() << "approx query did not run the ANN tier — repro: "
                  << ApproxRepro(cfg);
    return;
  }

  // Service tier: the sharded approx merge must meet the same SLA, and
  // exact service traffic must stay bit-identical to the exact index.
  serve::ServiceConfig service_config;
  service_config.num_shards = cfg.service_shards;
  service_config.max_batch_size = 16;
  service_config.max_batch_wait = std::chrono::microseconds(300);
  service_config.options.metric = cfg.metric;
  service_config.enable_ann = true;
  serve::KnnService service(target, service_config);
  const Result<KnnResult> service_exact = service.JoinBatch(queries, cfg.k);
  ASSERT_TRUE(service_exact.ok()) << service_exact.status().ToString();
  for (size_t q = 0; q < exact_plain.num_queries(); ++q) {
    if (std::memcmp(exact_plain.row(q), service_exact.value().row(q),
                    static_cast<size_t>(cfg.k) * sizeof(Neighbor)) != 0) {
      ADD_FAILURE() << "ANN-enabled service diverged on exact traffic at "
                    << "query " << q << " — repro: " << ApproxRepro(cfg);
      service.Shutdown();
      return;
    }
  }
  const Result<KnnResult> service_approx =
      service.JoinBatch(queries, cfg.k, mode);
  ASSERT_TRUE(service_approx.ok()) << service_approx.status().ToString();
  const double service_recall =
      MeanRecall(oracle, service_approx.value(), cfg.k);
  if (service_recall < cfg.recall_target) {
    ADD_FAILURE() << "service approx recall " << service_recall
                  << " misses target " << cfg.recall_target
                  << " — repro: " << ApproxRepro(cfg);
  }
  service.Shutdown();
}

TEST(DifferentialFuzzTest, ApproxSweepMeetsRecallSlaOnEveryConfig) {
  constexpr int kApproxConfigs = 25;
  for (int i = 0; i < kApproxConfigs; ++i) {
    const ApproxFuzzConfig cfg =
        DrawApproxConfig(kBaseSeed + 2000 + static_cast<uint64_t>(i));
    SCOPED_TRACE(ApproxRepro(cfg));
    RunApproxConfig(cfg);
    if (::testing::Test::HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Range modalities (docs/modalities.md): RadiusSearch, SelfJoin, and
// KnnGraph vs their brute-force oracles, ≥200 seeded configs per
// modality. Every config runs the modality through a fuzzed planner
// route at a fuzzed SIMD dispatch tier, then re-runs it through the
// OPPOSITE forced route at a DIFFERENT tier and demands the two answers
// be bit-identical — the canonical accumulation order is what makes
// that hold, and these sweeps are its proof for the unbounded-
// cardinality result shape. Mutations (inserts + removes) run before
// the scan so the delta overlay and tombstone masking are on the
// fuzzed path too.
// ---------------------------------------------------------------------------

struct RangeFuzzConfig {
  uint64_t seed = 0;
  size_t n = 0;
  size_t query_n = 0;
  size_t dims = 0;
  int clusters = 1;
  int mutations = 0;
  float radius = 0.0f;
  int graph_k = 1;
  core::Metric metric = core::Metric::kEuclidean;
  core::PlannerMode mode = core::PlannerMode::kAuto;
  int simd_level = -1;  ///< simd::ForceLevelForTest arg; -1 = detected.
};

const char* ModeName(core::PlannerMode mode) {
  switch (mode) {
    case core::PlannerMode::kAuto: return "auto";
    case core::PlannerMode::kForceDevice: return "device";
    case core::PlannerMode::kForceHost: return "host";
  }
  return "?";
}

std::string RangeRepro(const char* kind, const RangeFuzzConfig& cfg) {
  std::ostringstream out;
  out << kind << " seed=" << cfg.seed << " n=" << cfg.n
      << " m=" << cfg.query_n << " d=" << cfg.dims
      << " clusters=" << cfg.clusters << " muts=" << cfg.mutations
      << " r=" << cfg.radius << " gk=" << cfg.graph_k << " metric="
      << (cfg.metric == core::Metric::kEuclidean ? "euclidean"
                                                 : "manhattan")
      << " route=" << ModeName(cfg.mode) << " simd=" << cfg.simd_level;
  return out.str();
}

RangeFuzzConfig DrawRangeConfig(uint64_t seed) {
  Rng rng(seed);
  RangeFuzzConfig cfg;
  cfg.seed = seed;
  cfg.n = 16 + rng.NextBounded(180);
  cfg.query_n = 1 + rng.NextBounded(12);
  cfg.dims = 1 + rng.NextBounded(12);
  cfg.clusters = 1 + static_cast<int>(rng.NextBounded(5));
  cfg.mutations = static_cast<int>(rng.NextBounded(25));
  // Cluster centers land in the unit cube (spread 0.08), so this spans
  // empty rows, partial balls, and near-total matches.
  cfg.radius = 0.02f + rng.NextFloat() * 0.9f;
  cfg.graph_k = 1 + static_cast<int>(rng.NextBounded(12));
  cfg.metric = rng.NextBounded(2) == 0 ? core::Metric::kEuclidean
                                       : core::Metric::kManhattan;
  switch (rng.NextBounded(3)) {
    case 0: cfg.mode = core::PlannerMode::kAuto; break;
    case 1: cfg.mode = core::PlannerMode::kForceDevice; break;
    case 2: cfg.mode = core::PlannerMode::kForceHost; break;
  }
  const uint64_t level = rng.NextBounded(4);
  cfg.simd_level = level == 3 ? -1 : static_cast<int>(level);
  return cfg;
}

simd::Dist RangeDistKind(core::Metric metric) {
  return metric == core::Metric::kEuclidean ? simd::Dist::kEuclidean
                                            : simd::Dist::kManhattan;
}

/// Restores normal SIMD dispatch on scope exit, whatever the sweep
/// pinned it to.
struct SimdLevelGuard {
  ~SimdLevelGuard() { simd::ForceLevelForTest(-1); }
};

/// Builds the config's index (metric + planner route) and replays its
/// seeded mutation tape. Insert/remove draws come from a dedicated Rng
/// so every replay — primary route, alternate route — sees the identical
/// live set.
std::unique_ptr<SweetKnnIndex> BuildMutatedIndex(const RangeFuzzConfig& cfg,
                                                 core::PlannerMode mode) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);
  SweetKnn::Config config;
  config.options.metric = cfg.metric;
  config.planner.mode = mode;
  auto index = std::make_unique<SweetKnnIndex>(target, config);
  Rng rng(SplitMix64(cfg.seed + 2));
  uint32_t next_id = static_cast<uint32_t>(cfg.n);
  std::vector<uint32_t> live;
  for (uint32_t i = 0; i < cfg.n; ++i) live.push_back(i);
  for (int op = 0; op < cfg.mutations; ++op) {
    if (rng.NextBounded(2) == 0) {
      std::vector<float> point(cfg.dims);
      for (float& v : point) v = rng.NextFloat();
      const uint32_t id = index->Insert(point);
      EXPECT_EQ(id, next_id);  // replays depend on deterministic ids
      live.push_back(next_id++);
    } else if (!live.empty()) {
      const size_t victim = rng.NextBounded(live.size());
      EXPECT_TRUE(index->Remove(live[victim]));
      live.erase(live.begin() + static_cast<long>(victim));
    }
  }
  return index;
}

/// Closed-ball oracle row over the live (id, point) set, canonical
/// distance order, sorted under NeighborLess.
std::vector<Neighbor> OracleRangeRow(const float* query,
                                     const std::vector<uint32_t>& ids,
                                     const HostMatrix& points, float radius,
                                     core::Metric metric) {
  std::vector<Neighbor> out;
  if (points.rows() == 0) return out;
  std::vector<float> dists(points.rows());
  simd::QueryBlockDistances(query, points.data(), points.rows(),
                            points.cols(), RangeDistKind(metric),
                            dists.data());
  for (size_t i = 0; i < points.rows(); ++i) {
    if (dists[i] <= radius) out.push_back(Neighbor{ids[i], dists[i]});
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

/// The alternate leg of each config: the opposite forced route at a
/// different SIMD tier (ForceLevelForTest clamps unavailable tiers to
/// scalar, which still exercises the dispatch seam).
core::PlannerMode OppositeRoute(core::PlannerMode mode) {
  return mode == core::PlannerMode::kForceHost
             ? core::PlannerMode::kForceDevice
             : core::PlannerMode::kForceHost;
}

int AlternateSimdLevel(int level) { return level == 0 ? 2 : 0; }

void RunRadiusConfig(const RangeFuzzConfig& cfg) {
  SimdLevelGuard guard;
  simd::ForceLevelForTest(cfg.simd_level);
  const std::unique_ptr<SweetKnnIndex> index =
      BuildMutatedIndex(cfg, cfg.mode);
  const HostMatrix queries = testing::ClusteredPoints(
      cfg.query_n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed + 1), 0.08f);
  std::vector<uint32_t> ids;
  HostMatrix live;
  index->ExportLive(&ids, &live);

  const RangeResult got = index->RadiusSearch(queries, cfg.radius);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const std::vector<Neighbor> want = OracleRangeRow(
        queries.row(q), ids, live, cfg.radius, cfg.metric);
    if (got.count(q) != want.size()) {
      ADD_FAILURE() << "query " << q << " cardinality: want " << want.size()
                    << " got " << got.count(q) << " — repro: "
                    << RangeRepro("radius", cfg);
      return;
    }
    const Neighbor* row = got.begin(q);
    for (size_t i = 0; i < want.size(); ++i) {
      if (row[i].index != want[i].index ||
          row[i].distance != want[i].distance) {
        ADD_FAILURE() << "query " << q << " slot " << i << ": want ("
                      << want[i].index << ", " << want[i].distance
                      << ") got (" << row[i].index << ", "
                      << row[i].distance << ") — repro: "
                      << RangeRepro("radius", cfg);
        return;
      }
    }
  }

  // Opposite route, different tier: bit-identical or bust.
  simd::ForceLevelForTest(AlternateSimdLevel(cfg.simd_level));
  const std::unique_ptr<SweetKnnIndex> alternate =
      BuildMutatedIndex(cfg, OppositeRoute(cfg.mode));
  const RangeResult other = alternate->RadiusSearch(queries, cfg.radius);
  if (!BitIdentical(got, other)) {
    ADD_FAILURE() << "routes diverged — repro: " << RangeRepro("radius", cfg);
  }
}

TEST(DifferentialFuzzTest, RadiusSearchSweepMatchesOracle) {
  constexpr int kRangeConfigs = 200;
  for (int i = 0; i < kRangeConfigs; ++i) {
    const RangeFuzzConfig cfg =
        DrawRangeConfig(kBaseSeed + 3000 + static_cast<uint64_t>(i));
    SCOPED_TRACE(RangeRepro("radius", cfg));
    RunRadiusConfig(cfg);
    if (::testing::Test::HasFailure()) break;
  }
}

bool SelfJoinPairLess(const SelfJoinPair& x, const SelfJoinPair& y) {
  if (x.a != y.a) return x.a < y.a;
  if (x.distance != y.distance) return x.distance < y.distance;
  return x.b < y.b;
}

void RunSelfJoinConfig(const RangeFuzzConfig& cfg) {
  SimdLevelGuard guard;
  simd::ForceLevelForTest(cfg.simd_level);
  const std::unique_ptr<SweetKnnIndex> index =
      BuildMutatedIndex(cfg, cfg.mode);
  std::vector<uint32_t> ids;
  HostMatrix live;
  index->ExportLive(&ids, &live);

  // O(n^2) oracle: one emission per unordered pair, b > a, ordered by
  // ascending a then (distance, b) — the documented SelfJoin contract.
  std::vector<SelfJoinPair> want;
  for (size_t i = 0; i < live.rows(); ++i) {
    for (const Neighbor& nb : OracleRangeRow(live.row(i), ids, live,
                                             cfg.radius, cfg.metric)) {
      if (nb.index > ids[i]) {
        want.push_back(SelfJoinPair{ids[i], nb.index, nb.distance});
      }
    }
  }
  std::sort(want.begin(), want.end(), SelfJoinPairLess);

  const std::vector<SelfJoinPair> got = index->SelfJoin(cfg.radius);
  if (got.size() != want.size()) {
    ADD_FAILURE() << "pair count: want " << want.size() << " got "
                  << got.size() << " — repro: "
                  << RangeRepro("selfjoin", cfg);
    return;
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (!(got[i] == want[i])) {
      ADD_FAILURE() << "pair " << i << ": want (" << want[i].a << ","
                    << want[i].b << "," << want[i].distance << ") got ("
                    << got[i].a << "," << got[i].b << ","
                    << got[i].distance << ") — repro: "
                    << RangeRepro("selfjoin", cfg);
      return;
    }
  }

  simd::ForceLevelForTest(AlternateSimdLevel(cfg.simd_level));
  const std::unique_ptr<SweetKnnIndex> alternate =
      BuildMutatedIndex(cfg, OppositeRoute(cfg.mode));
  const std::vector<SelfJoinPair> other = alternate->SelfJoin(cfg.radius);
  if (other.size() != got.size() ||
      !std::equal(got.begin(), got.end(), other.begin())) {
    ADD_FAILURE() << "routes diverged — repro: "
                  << RangeRepro("selfjoin", cfg);
  }
}

TEST(DifferentialFuzzTest, SelfJoinSweepMatchesOracle) {
  constexpr int kRangeConfigs = 200;
  for (int i = 0; i < kRangeConfigs; ++i) {
    const RangeFuzzConfig cfg =
        DrawRangeConfig(kBaseSeed + 4000 + static_cast<uint64_t>(i));
    SCOPED_TRACE(RangeRepro("selfjoin", cfg));
    RunSelfJoinConfig(cfg);
    if (::testing::Test::HasFailure()) break;
  }
}

void RunKnnGraphConfig(const RangeFuzzConfig& cfg) {
  SimdLevelGuard guard;
  simd::ForceLevelForTest(cfg.simd_level);
  const std::unique_ptr<SweetKnnIndex> index =
      BuildMutatedIndex(cfg, cfg.mode);
  std::vector<uint32_t> ids;
  HostMatrix live;
  index->ExportLive(&ids, &live);

  const SweetKnnIndex::KnnGraphResult got = index->KnnGraph(cfg.graph_k);
  if (got.ids != ids) {
    ADD_FAILURE() << "graph id order != ascending live ids — repro: "
                  << RangeRepro("graph", cfg);
    return;
  }
  if (got.neighbors.num_queries() != ids.size()) {
    ADD_FAILURE() << "graph rows: want " << ids.size() << " got "
                  << got.neighbors.num_queries() << " — repro: "
                  << RangeRepro("graph", cfg);
    return;
  }
  const size_t k = static_cast<size_t>(cfg.graph_k);
  for (size_t q = 0; q < live.rows(); ++q) {
    // Brute top-k of everything-but-self (by position, so duplicate
    // points of the self row survive), padded with kInvalidNeighbor.
    std::vector<Neighbor> want;
    if (live.rows() > 1) {
      std::vector<float> dists(live.rows());
      simd::QueryBlockDistances(live.row(q), live.data(), live.rows(),
                                live.cols(), RangeDistKind(cfg.metric),
                                dists.data());
      for (size_t i = 0; i < live.rows(); ++i) {
        if (i == q) continue;
        want.push_back(Neighbor{ids[i], dists[i]});
      }
      std::sort(want.begin(), want.end(), NeighborLess);
      if (want.size() > k) want.resize(k);
    }
    want.resize(k, Neighbor{kInvalidNeighbor, 0.0f});
    const Neighbor* row = got.neighbors.row(q);
    for (size_t i = 0; i < k; ++i) {
      const bool pad = want[i].index == kInvalidNeighbor;
      if (row[i].index != want[i].index ||
          (!pad && row[i].distance != want[i].distance)) {
        ADD_FAILURE() << "graph row " << q << " slot " << i << ": want ("
                      << want[i].index << ", " << want[i].distance
                      << ") got (" << row[i].index << ", "
                      << row[i].distance << ") — repro: "
                      << RangeRepro("graph", cfg);
        return;
      }
    }
  }

  simd::ForceLevelForTest(AlternateSimdLevel(cfg.simd_level));
  const std::unique_ptr<SweetKnnIndex> alternate =
      BuildMutatedIndex(cfg, OppositeRoute(cfg.mode));
  const SweetKnnIndex::KnnGraphResult other =
      alternate->KnnGraph(cfg.graph_k);
  if (other.ids != got.ids) {
    ADD_FAILURE() << "routes diverged on ids — repro: "
                  << RangeRepro("graph", cfg);
    return;
  }
  for (size_t q = 0; q < got.neighbors.num_queries(); ++q) {
    if (std::memcmp(got.neighbors.row(q), other.neighbors.row(q),
                    k * sizeof(Neighbor)) != 0) {
      ADD_FAILURE() << "routes diverged at graph row " << q << " — repro: "
                    << RangeRepro("graph", cfg);
      return;
    }
  }
}

TEST(DifferentialFuzzTest, KnnGraphSweepMatchesOracle) {
  constexpr int kRangeConfigs = 200;
  for (int i = 0; i < kRangeConfigs; ++i) {
    const RangeFuzzConfig cfg =
        DrawRangeConfig(kBaseSeed + 5000 + static_cast<uint64_t>(i));
    SCOPED_TRACE(RangeRepro("graph", cfg));
    RunKnnGraphConfig(cfg);
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace sweetknn
