// Differential fuzzing: ~200 seeded random configurations of the TI
// engine (n, d, k, metric, filter strength, placement, layout,
// sim_threads, ...) checked against the BruteForceCpu oracle, and — for
// the serving layer's exactness guarantee — a sharded KnnService driven
// by concurrent clients checked bit-for-bit against the single-engine
// result of the same options. A second sweep proves the persistence
// guarantee: an index saved to a snapshot and warm-loaded answers
// bit-identically to the cold-built one under every fuzzed
// configuration. Any mismatch prints a one-line repro of the failing
// seed/config.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "baseline/brute_force_cpu.h"
#include "common/rng.h"
#include "core/sweet_knn.h"
#include "core/ti_knn_gpu.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "test_util.h"

namespace sweetknn {
namespace {

constexpr uint64_t kBaseSeed = 20260806;
constexpr int kNumConfigs = 200;

struct FuzzConfig {
  uint64_t seed = 0;
  size_t n = 0;
  size_t query_n = 0;  // == n for self-joins
  size_t dims = 0;
  int k = 0;
  bool self_join = false;
  int clusters = 1;
  int service_shards = 2;
  core::TiOptions options;
};

const char* FilterName(const std::optional<core::Level2Filter>& f) {
  if (!f.has_value()) return "adaptive";
  return *f == core::Level2Filter::kFull ? "full" : "partial";
}

const char* PlacementName(
    const std::optional<core::KnearestsPlacement>& p) {
  if (!p.has_value()) return "adaptive";
  switch (*p) {
    case core::KnearestsPlacement::kGlobal: return "global";
    case core::KnearestsPlacement::kShared: return "shared";
    case core::KnearestsPlacement::kRegisters: return "registers";
  }
  return "?";
}

/// One-line repro of a failing config, pasteable into a bug report.
std::string Repro(const FuzzConfig& cfg) {
  std::ostringstream out;
  out << "seed=" << cfg.seed << " n=" << cfg.n << " m=" << cfg.query_n
      << " d=" << cfg.dims << " k=" << cfg.k
      << " self_join=" << (cfg.self_join ? 1 : 0)
      << " clusters=" << cfg.clusters << " metric="
      << (cfg.options.metric == core::Metric::kEuclidean ? "euclidean"
                                                         : "manhattan")
      << " filter=" << FilterName(cfg.options.filter_override)
      << " placement=" << PlacementName(cfg.options.placement_override)
      << " layout="
      << (cfg.options.layout == core::PointLayout::kRowMajor ? "row" : "col")
      << " vec=" << cfg.options.point_vector_width
      << " knl="
      << (cfg.options.knearests_layout == core::KnearestsLayout::kBlocked
              ? "blocked"
              : "interleaved")
      << " remap=" << (cfg.options.remap_threads ? 1 : 0)
      << " elastic=" << (cfg.options.elastic_parallelism ? 1 : 0)
      << " tpq=" << cfg.options.threads_per_query_override
      << " sim_threads=" << cfg.options.sim_threads
      << " shards=" << cfg.service_shards;
  return out.str();
}

FuzzConfig DrawConfig(uint64_t seed) {
  Rng rng(seed);
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.n = 24 + rng.NextBounded(233);
  cfg.dims = 1 + rng.NextBounded(16);
  cfg.k = 1 + static_cast<int>(
                  rng.NextBounded(std::min<uint64_t>(cfg.n, 48)));
  cfg.self_join = rng.NextBounded(2) == 0;
  cfg.query_n = cfg.self_join ? cfg.n : 8 + rng.NextBounded(cfg.n);
  cfg.clusters = 1 + static_cast<int>(rng.NextBounded(5));
  cfg.service_shards = 2 + static_cast<int>(rng.NextBounded(2));

  core::TiOptions& opt = cfg.options;
  opt.metric = rng.NextBounded(2) == 0 ? core::Metric::kEuclidean
                                       : core::Metric::kManhattan;
  opt.layout = rng.NextBounded(2) == 0 ? core::PointLayout::kRowMajor
                                       : core::PointLayout::kColumnMajor;
  opt.point_vector_width = rng.NextBounded(2) == 0 ? 4 : 1;
  opt.knearests_layout = rng.NextBounded(2) == 0
                             ? core::KnearestsLayout::kInterleaved
                             : core::KnearestsLayout::kBlocked;
  opt.remap_threads = rng.NextBounded(2) == 0;
  opt.elastic_parallelism = rng.NextBounded(2) == 0;
  switch (rng.NextBounded(3)) {
    case 0: break;  // adaptive
    case 1: opt.filter_override = core::Level2Filter::kFull; break;
    case 2: opt.filter_override = core::Level2Filter::kPartial; break;
  }
  switch (rng.NextBounded(4)) {
    case 0: break;  // adaptive
    case 1: opt.placement_override = core::KnearestsPlacement::kGlobal;
      break;
    case 2:
      // A forced shared-memory kNearests must actually fit in shared
      // memory (the adaptive scheme only picks it when it does).
      if (opt.block_threads * 4 * cfg.k <= 40 * 1024) {
        opt.placement_override = core::KnearestsPlacement::kShared;
      }
      break;
    case 3: opt.placement_override = core::KnearestsPlacement::kRegisters;
      break;
  }
  const uint64_t tpq = rng.NextBounded(4);
  opt.threads_per_query_override = tpq < 2 ? 0 : static_cast<int>(tpq);
  opt.sim_threads = rng.NextBounded(2) == 0 ? 1 : 4;
  return cfg;
}

void RunConfig(const FuzzConfig& cfg) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);
  const HostMatrix distinct_query =
      cfg.self_join ? HostMatrix()
                    : testing::ClusteredPoints(cfg.query_n, cfg.dims,
                                               cfg.clusters,
                                               SplitMix64(cfg.seed + 1),
                                               0.08f);
  const HostMatrix& queries = cfg.self_join ? target : distinct_query;

  const KnnResult oracle = baseline::BruteForceCpu(
      queries, target, cfg.k, cfg.options.metric);

  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  const KnnResult engine_result = core::TiKnnEngine::RunOnce(
      &dev, queries, target, cfg.k, cfg.options, nullptr);

  std::string mismatch;
  const size_t bad =
      CountResultMismatches(oracle, engine_result, 2e-4f, &mismatch);
  if (bad != 0) {
    ADD_FAILURE() << "engine vs oracle: " << bad << " bad slots ("
                  << mismatch << ") — repro: " << Repro(cfg);
    return;
  }

  // Serving layer: sharded + micro-batched + concurrent clients must be
  // bit-identical to the single-engine result above.
  serve::ServiceConfig service_config;
  service_config.num_shards = cfg.service_shards;
  service_config.max_batch_size = 16;
  service_config.max_batch_wait = std::chrono::microseconds(300);
  service_config.options = cfg.options;
  serve::KnnService service(target, service_config);

  constexpr int kClients = 4;
  std::vector<KnnResult> answers(kClients);
  std::vector<size_t> begins(kClients);
  std::vector<std::thread> clients;
  const size_t per_client = (queries.rows() + kClients - 1) / kClients;
  for (int c = 0; c < kClients; ++c) {
    const size_t begin = std::min(queries.rows(), c * per_client);
    const size_t end = std::min(queries.rows(), begin + per_client);
    begins[static_cast<size_t>(c)] = begin;
    if (begin == end) continue;
    clients.emplace_back([&, c, begin, end] {
      HostMatrix slice(end - begin, queries.cols());
      for (size_t r = begin; r < end; ++r) {
        for (size_t j = 0; j < queries.cols(); ++j) {
          slice.at(r - begin, j) = queries.at(r, j);
        }
      }
      answers[static_cast<size_t>(c)] =
          service.JoinBatch(slice, cfg.k).value();
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    const KnnResult& answer = answers[static_cast<size_t>(c)];
    for (size_t r = 0; r < answer.num_queries(); ++r) {
      const size_t global = begins[static_cast<size_t>(c)] + r;
      for (int i = 0; i < cfg.k; ++i) {
        const Neighbor& want = engine_result.row(global)[i];
        const Neighbor& got = answer.row(r)[i];
        if (want.index != got.index || want.distance != got.distance) {
          ADD_FAILURE() << "service vs single engine: query " << global
                        << " rank " << i << " want (" << want.index << ", "
                        << want.distance << ") got (" << got.index << ", "
                        << got.distance << ") — repro: " << Repro(cfg);
          return;
        }
      }
    }
  }

  // Persistence: the same service warm-started from per-shard snapshots
  // must also be bit-identical to the single-engine result.
  const std::string snapshot_dir =
      ::testing::TempDir() + "/fuzz_service_snapshots";
  std::filesystem::remove_all(snapshot_dir);
  const Status saved = service.SaveSnapshots(snapshot_dir);
  if (!saved.ok()) {
    ADD_FAILURE() << "SaveSnapshots failed: " << saved.ToString()
                  << " — repro: " << Repro(cfg);
    return;
  }
  serve::ServiceConfig warm_config = service_config;
  warm_config.snapshot_dir = snapshot_dir;
  serve::KnnService warm_service(target, warm_config);
  if (warm_service.stats().warm_started_shards !=
      static_cast<uint64_t>(warm_service.num_shards())) {
    ADD_FAILURE() << "service fell back to a cold build — repro: "
                  << Repro(cfg);
    std::filesystem::remove_all(snapshot_dir);
    return;
  }
  const KnnResult warm_answer =
      warm_service.JoinBatch(queries, cfg.k).value();
  for (size_t q = 0; q < warm_answer.num_queries(); ++q) {
    if (std::memcmp(engine_result.row(q), warm_answer.row(q),
                    static_cast<size_t>(cfg.k) * sizeof(Neighbor)) != 0) {
      ADD_FAILURE() << "warm-started service diverged at query " << q
                    << " — repro: " << Repro(cfg);
      break;
    }
  }
  std::filesystem::remove_all(snapshot_dir);
}

TEST(DifferentialFuzzTest, SweepMatchesOracleAndServiceIsBitIdentical) {
  for (int i = 0; i < kNumConfigs; ++i) {
    const FuzzConfig cfg = DrawConfig(kBaseSeed + static_cast<uint64_t>(i));
    SCOPED_TRACE(Repro(cfg));
    RunConfig(cfg);
    if (::testing::Test::HasFailure()) break;  // first repro is enough
  }
}

/// Cold-built index vs Save → Load of the same index: every answer must
/// be bit-identical under the fuzzed options, not merely close.
void RunWarmStartConfig(const FuzzConfig& cfg, const std::string& path) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);
  const HostMatrix queries = testing::ClusteredPoints(
      cfg.query_n, cfg.dims, cfg.clusters, SplitMix64(cfg.seed + 1), 0.08f);

  SweetKnn::Config config;
  config.options = cfg.options;
  SweetKnnIndex cold(target, config);
  const Status saved = cold.Save(path, "warm-start-fuzz");
  if (!saved.ok()) {
    ADD_FAILURE() << "Save failed: " << saved.ToString()
                  << " — repro: " << Repro(cfg);
    return;
  }
  Result<std::unique_ptr<SweetKnnIndex>> warm =
      SweetKnnIndex::Load(path, config);
  if (!warm.ok()) {
    ADD_FAILURE() << "Load failed: " << warm.status().ToString()
                  << " — repro: " << Repro(cfg);
    return;
  }

  const KnnResult want = cold.Query(queries, cfg.k);
  const KnnResult got = warm.value()->Query(queries, cfg.k);
  ASSERT_EQ(want.num_queries(), got.num_queries());
  for (size_t q = 0; q < want.num_queries(); ++q) {
    if (std::memcmp(want.row(q), got.row(q),
                    static_cast<size_t>(cfg.k) * sizeof(Neighbor)) != 0) {
      ADD_FAILURE() << "warm-loaded index diverged at query " << q
                    << " — repro: " << Repro(cfg);
      return;
    }
  }
}

TEST(DifferentialFuzzTest, WarmStartedIndexIsBitIdenticalAcrossConfigs) {
  const std::string path = ::testing::TempDir() + "/fuzz_warm.sksnap";
  constexpr int kWarmConfigs = 40;
  for (int i = 0; i < kWarmConfigs; ++i) {
    const FuzzConfig cfg = DrawConfig(kBaseSeed + 1000 +
                                      static_cast<uint64_t>(i));
    SCOPED_TRACE(Repro(cfg));
    RunWarmStartConfig(cfg, path);
    if (::testing::Test::HasFailure()) break;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sweetknn
