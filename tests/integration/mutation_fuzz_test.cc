// Mutation-differential fuzzing: thousands of seeded interleavings of
// insert / remove / query against a mutable SweetKnnIndex (index tier)
// and a mutable KnnService (service tier), each query checked
// BIT-IDENTICALLY against a BruteForceCpu oracle over the model's live
// point set in ascending stable-id order. (The engine itself is
// bit-identical to BruteForceCpu — the differential fuzz suite proves
// that — so the oracle stands in for a cold-built index at every checked
// step.) Checkpoints additionally rebuild a cold index over the final
// live set and round-trip the mutated state through .sksnap snapshots
// (Save/Load for the index, SaveSnapshots/FromSnapshots for the
// service), all bit-exact. Any mismatch prints a one-line repro of the
// failing sequence.
//
// Every step also randomly flips the two knobs that are contractually
// invisible in the answers: the hybrid planner's route (auto / force-
// device / force-host) and the SIMD dispatch tier (forced scalar vs
// best available). The bit-identical oracle check therefore proves
// route and vector-width independence across every interleaving, not
// just in dedicated equivalence tests. The flips are derived from the
// sequence seed, so a repro line replays them exactly.
//
// The ANN tier is enabled in every sequence, so all of the bit-identical
// checks above double as proof that enabling the approximate tier never
// perturbs exact answers under mutation, and every snapshot round trip
// carries (and restores) a kNN graph. Each sequence then ends with two
// approx checkpoints: a saturated-budget approx query (ef >= every
// shard's base) that must be BIT-IDENTICAL to the oracle — the full-scan
// escape hatch composed with tombstone masking and the delta merge — and
// a default-budget approx query held to the 0.9 recall SLA.
//
// Tiers (the totals satisfy the >= 2000 sequence acceptance bar):
//   MutationFuzzFastTier:  150 short sequences — the CI fast stage.
//   MutationFuzzSlow:     1200 index + 800 service sequences, sharded
//                         into parallel ctest cases.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/brute_force_cpu.h"
#include "common/rng.h"
#include "core/sweet_knn.h"
#include "gtest/gtest.h"
#include "serve/knn_service.h"
#include "simd/simd_kernels.h"
#include "test_util.h"

namespace sweetknn {
namespace {

constexpr uint64_t kBaseSeed = 20260807;

/// Restores normal SIMD dispatch when a sequence ends (including the
/// early-return failure paths).
struct ScopedSimdDispatch {
  ~ScopedSimdDispatch() { simd::ForceLevelForTest(-1); }
};

/// Per-step flip of the answer-invisible knobs: planner route and SIMD
/// dispatch tier. `planner` is the live router of the index or service
/// under test.
void ToggleInvisibleKnobs(Rng* rng, core::RoutePlanner* planner) {
  switch (rng->NextBounded(4)) {
    case 0: planner->set_mode(core::PlannerMode::kAuto); break;
    case 1: planner->set_mode(core::PlannerMode::kForceDevice); break;
    case 2: planner->set_mode(core::PlannerMode::kForceHost); break;
    default: break;  // keep the current mode
  }
  simd::ForceLevelForTest(rng->NextBounded(2) == 0 ? 0 : -1);
}

struct MutationFuzzConfig {
  uint64_t seed = 0;
  size_t n0 = 0;      // initial live points (stable ids 0..n0-1)
  size_t dims = 0;
  int ops = 0;        // mutation/query operations per sequence
  int clusters = 1;
  int service_shards = 1;
  double compact_fraction = 0.25;  // <= 0 disables auto-compaction
  bool auto_compact = true;        // service tier only
  size_t cache_capacity = 0;       // service tier only
  core::Metric metric = core::Metric::kEuclidean;
};

std::string Repro(const char* tier, const MutationFuzzConfig& cfg) {
  std::ostringstream out;
  out << "tier=" << tier << " seed=" << cfg.seed << " n0=" << cfg.n0
      << " d=" << cfg.dims << " ops=" << cfg.ops
      << " clusters=" << cfg.clusters << " shards=" << cfg.service_shards
      << " fraction=" << cfg.compact_fraction
      << " auto_compact=" << (cfg.auto_compact ? 1 : 0)
      << " cache=" << cfg.cache_capacity << " metric="
      << (cfg.metric == core::Metric::kEuclidean ? "euclidean"
                                                 : "manhattan");
  return out.str();
}

MutationFuzzConfig DrawConfig(uint64_t seed, bool fast) {
  Rng rng(seed);
  MutationFuzzConfig cfg;
  cfg.seed = seed;
  cfg.n0 = (fast ? 10 : 14) + rng.NextBounded(fast ? 30 : 90);
  cfg.dims = 1 + rng.NextBounded(8);
  cfg.ops = (fast ? 12 : 20) + static_cast<int>(
                                   rng.NextBounded(fast ? 12 : 40));
  cfg.clusters = 1 + static_cast<int>(rng.NextBounded(4));
  cfg.service_shards = 1 + static_cast<int>(rng.NextBounded(3));
  switch (rng.NextBounded(3)) {
    case 0: cfg.compact_fraction = 0.0; break;   // compaction off
    case 1: cfg.compact_fraction = 0.08; break;  // compacts eagerly
    case 2: cfg.compact_fraction = 0.35; break;
  }
  cfg.auto_compact = rng.NextBounded(2) == 0;
  cfg.cache_capacity = rng.NextBounded(3) == 0 ? 8 : 0;
  cfg.metric = rng.NextBounded(2) == 0 ? core::Metric::kEuclidean
                                       : core::Metric::kManhattan;
  return cfg;
}

/// The reference model: the set of live points keyed by stable id.
using Model = std::map<uint32_t, std::vector<float>>;

HostMatrix ModelMatrix(const Model& model, size_t dims,
                       std::vector<uint32_t>* ids) {
  HostMatrix points(model.size(), dims);
  ids->clear();
  size_t row = 0;
  for (const auto& [id, coords] : model) {
    std::memcpy(points.mutable_row(row++), coords.data(),
                dims * sizeof(float));
    ids->push_back(id);
  }
  return points;
}

/// Ground truth: brute force over the live set in ascending stable-id
/// order, local indices mapped back to stable ids. Exact ties order by
/// stable id on both sides (local index order IS stable-id order here),
/// so the comparison below can demand bit identity, not tolerance.
KnnResult ExpectedTopK(const Model& model, size_t dims,
                       const HostMatrix& queries, int k,
                       core::Metric metric) {
  if (model.empty()) {
    KnnResult padding(queries.rows(), k);
    for (size_t q = 0; q < queries.rows(); ++q) padding.SetRow(q, {});
    return padding;
  }
  std::vector<uint32_t> ids;
  const HostMatrix points = ModelMatrix(model, dims, &ids);
  KnnResult expected = baseline::BruteForceCpu(queries, points, k, metric);
  for (size_t q = 0; q < expected.num_queries(); ++q) {
    Neighbor* row = expected.mutable_row(q);
    for (int i = 0; i < k; ++i) {
      if (row[i].index != kInvalidNeighbor) row[i] = {ids[row[i].index],
                                                      row[i].distance};
    }
  }
  return expected;
}

/// Bit-exact comparison; returns false (with one ADD_FAILURE) on the
/// first diverging slot.
bool ExpectBitIdentical(const KnnResult& want, const KnnResult& got,
                        const std::string& what) {
  if (want.num_queries() != got.num_queries() || want.k() != got.k()) {
    ADD_FAILURE() << what << ": shape mismatch (" << want.num_queries()
                  << "x" << want.k() << " vs " << got.num_queries() << "x"
                  << got.k() << ")";
    return false;
  }
  for (size_t q = 0; q < want.num_queries(); ++q) {
    for (int i = 0; i < want.k(); ++i) {
      const Neighbor& w = want.row(q)[i];
      const Neighbor& g = got.row(q)[i];
      if (w.index != g.index ||
          std::memcmp(&w.distance, &g.distance, sizeof(float)) != 0) {
        ADD_FAILURE() << what << ": query " << q << " rank " << i
                      << " want (" << w.index << ", " << w.distance
                      << ") got (" << g.index << ", " << g.distance << ")";
        return false;
      }
    }
  }
  return true;
}

/// Closed-ball oracle row over the model's live (id, point) set, in the
/// canonical distance order, sorted under NeighborLess — the ground
/// truth of the range-modality checkpoints (docs/modalities.md).
std::vector<Neighbor> ExpectedRangeRow(const float* query,
                                       const std::vector<uint32_t>& ids,
                                       const HostMatrix& points, float radius,
                                       core::Metric metric) {
  std::vector<Neighbor> out;
  if (points.rows() == 0) return out;
  std::vector<float> dists(points.rows());
  simd::QueryBlockDistances(query, points.data(), points.rows(),
                            points.cols(),
                            metric == core::Metric::kEuclidean
                                ? simd::Dist::kEuclidean
                                : simd::Dist::kManhattan,
                            dists.data());
  for (size_t i = 0; i < points.rows(); ++i) {
    if (dists[i] <= radius) out.push_back(Neighbor{ids[i], dists[i]});
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

bool ExpectRangeMatchesModel(const Model& model, size_t dims,
                             const HostMatrix& queries, float radius,
                             core::Metric metric, const RangeResult& got,
                             const std::string& what) {
  std::vector<uint32_t> ids;
  const HostMatrix live = ModelMatrix(model, dims, &ids);
  if (got.num_queries() != queries.rows()) {
    ADD_FAILURE() << what << ": row count " << got.num_queries() << " != "
                  << queries.rows();
    return false;
  }
  for (size_t q = 0; q < queries.rows(); ++q) {
    const std::vector<Neighbor> want =
        ExpectedRangeRow(queries.row(q), ids, live, radius, metric);
    if (got.count(q) != want.size()) {
      ADD_FAILURE() << what << ": query " << q << " cardinality "
                    << got.count(q) << " != " << want.size();
      return false;
    }
    const Neighbor* row = got.begin(q);
    for (size_t i = 0; i < want.size(); ++i) {
      if (row[i].index != want[i].index ||
          std::memcmp(&row[i].distance, &want[i].distance,
                      sizeof(float)) != 0) {
        ADD_FAILURE() << what << ": query " << q << " slot " << i
                      << " want (" << want[i].index << ", "
                      << want[i].distance << ") got (" << row[i].index
                      << ", " << row[i].distance << ")";
        return false;
      }
    }
  }
  return true;
}

bool ExpectSelfJoinMatchesModel(const Model& model, size_t dims,
                                float radius, core::Metric metric,
                                const std::vector<SelfJoinPair>& got,
                                const std::string& what) {
  std::vector<uint32_t> ids;
  const HostMatrix live = ModelMatrix(model, dims, &ids);
  std::vector<SelfJoinPair> want;
  for (size_t i = 0; i < live.rows(); ++i) {
    for (const Neighbor& nb :
         ExpectedRangeRow(live.row(i), ids, live, radius, metric)) {
      if (nb.index > ids[i]) {
        want.push_back(SelfJoinPair{ids[i], nb.index, nb.distance});
      }
    }
  }
  std::sort(want.begin(), want.end(),
            [](const SelfJoinPair& x, const SelfJoinPair& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.distance != y.distance) return x.distance < y.distance;
              return x.b < y.b;
            });
  if (got.size() != want.size()) {
    ADD_FAILURE() << what << ": pair count " << got.size() << " != "
                  << want.size();
    return false;
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (!(got[i] == want[i])) {
      ADD_FAILURE() << what << ": pair " << i << " want (" << want[i].a
                    << "," << want[i].b << "," << want[i].distance
                    << ") got (" << got[i].a << "," << got[i].b << ","
                    << got[i].distance << ")";
      return false;
    }
  }
  return true;
}

/// A candidate budget no shard's base can exceed, so approx queries with
/// it must take the exact full-scan hatch on every shard.
constexpr int kSaturatingEf = 1 << 20;

/// Mean recall@k of `got` against the oracle `want` (both in stable-id
/// space). Queries whose oracle row is all padding are skipped.
double ApproxRecall(const KnnResult& want, const KnnResult& got) {
  double sum = 0.0;
  size_t measured = 0;
  for (size_t q = 0; q < want.num_queries(); ++q) {
    std::set<uint32_t> truth;
    for (int i = 0; i < want.k(); ++i) {
      if (want.row(q)[i].index == kInvalidNeighbor) break;
      truth.insert(want.row(q)[i].index);
    }
    if (truth.empty()) continue;
    size_t hits = 0;
    for (int i = 0; i < got.k(); ++i) {
      if (truth.count(got.row(q)[i].index) != 0) ++hits;
    }
    sum += static_cast<double>(hits) / static_cast<double>(truth.size());
    ++measured;
  }
  return measured == 0 ? 1.0 : sum / static_cast<double>(measured);
}

HostMatrix RandomQueries(Rng* rng, size_t rows, size_t dims) {
  HostMatrix queries(rows, dims);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t j = 0; j < dims; ++j) {
      queries.at(r, j) = rng->NextFloat();
    }
  }
  return queries;
}

std::vector<float> RandomPoint(Rng* rng, size_t dims) {
  std::vector<float> point(dims);
  for (float& x : point) x = rng->NextFloat();
  return point;
}

int DrawK(Rng* rng, const Model& model) {
  // Mostly within the live count; sometimes beyond it, to exercise the
  // padding path.
  const size_t live = model.size();
  if (live == 0 || rng->NextBounded(8) == 0) {
    return 1 + static_cast<int>(rng->NextBounded(4));
  }
  return 1 + static_cast<int>(rng->NextBounded(std::min<size_t>(live, 10)));
}

/// Picks a remove target: usually a live id, sometimes a dead or
/// never-allocated one (the miss path).
uint32_t DrawRemoveId(Rng* rng, const Model& model, uint32_t next_id) {
  if (!model.empty() && rng->NextBounded(4) != 0) {
    auto it = model.begin();
    std::advance(it, static_cast<long>(rng->NextBounded(model.size())));
    return it->first;
  }
  return static_cast<uint32_t>(rng->NextBounded(next_id + 3));
}

// ---------------------------------------------------------------------------
// Index tier
// ---------------------------------------------------------------------------

void RunIndexSequence(const MutationFuzzConfig& cfg) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n0, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);
  SweetKnn::Config config;
  config.options.metric = cfg.metric;
  config.compact_delta_fraction =
      cfg.auto_compact ? cfg.compact_fraction : 0.0;
  config.enable_ann = true;
  SweetKnnIndex index(target, config);

  Model model;
  for (size_t i = 0; i < cfg.n0; ++i) {
    model[static_cast<uint32_t>(i)] = std::vector<float>(
        target.row(i), target.row(i) + cfg.dims);
  }
  uint32_t expected_next_id = static_cast<uint32_t>(cfg.n0);

  ScopedSimdDispatch dispatch_guard;
  Rng toggle_rng(SplitMix64(cfg.seed + 91));
  Rng rng(SplitMix64(cfg.seed + 17));
  for (int op = 0; op < cfg.ops; ++op) {
    ToggleInvisibleKnobs(&toggle_rng, &index.planner());
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 30) {
      const std::vector<float> point = RandomPoint(&rng, cfg.dims);
      const uint32_t id = index.Insert(point);
      if (id != expected_next_id) {
        ADD_FAILURE() << "op " << op << ": Insert returned id " << id
                      << ", expected " << expected_next_id;
        return;
      }
      model[id] = point;
      ++expected_next_id;
    } else if (dice < 55) {
      const uint32_t id = DrawRemoveId(&rng, model, expected_next_id);
      const bool want = model.count(id) > 0;
      const bool got = index.Remove(id);
      if (want != got) {
        ADD_FAILURE() << "op " << op << ": Remove(" << id << ") returned "
                      << got << ", model says " << want;
        return;
      }
      model.erase(id);
    } else if (dice < 60) {
      index.Compact();
    } else {
      const size_t m = 1 + rng.NextBounded(3);
      const HostMatrix queries = RandomQueries(&rng, m, cfg.dims);
      const int k = DrawK(&rng, model);
      const KnnResult want =
          ExpectedTopK(model, cfg.dims, queries, k, cfg.metric);
      const KnnResult got = index.Query(queries, k);
      if (!ExpectBitIdentical(want, got,
                              "op " + std::to_string(op) + " query")) {
        return;
      }
    }
    if (index.size() != model.size()) {
      ADD_FAILURE() << "op " << op << ": index.size()=" << index.size()
                    << " model=" << model.size();
      return;
    }
  }

  // Checkpoint 1: a cold index built from scratch over the final live
  // set (ascending stable-id order) answers bit-identically.
  const HostMatrix checkpoint_queries = RandomQueries(&rng, 4, cfg.dims);
  const int checkpoint_k =
      1 + static_cast<int>(rng.NextBounded(
              std::max<size_t>(std::min<size_t>(model.size(), 10), 1)));
  const KnnResult mutated_answer =
      index.Query(checkpoint_queries, checkpoint_k);
  if (!model.empty()) {
    std::vector<uint32_t> ids;
    const HostMatrix live = ModelMatrix(model, cfg.dims, &ids);
    SweetKnnIndex cold(live, config);
    KnnResult cold_answer = cold.Query(checkpoint_queries, checkpoint_k);
    for (size_t q = 0; q < cold_answer.num_queries(); ++q) {
      Neighbor* row = cold_answer.mutable_row(q);
      for (int i = 0; i < checkpoint_k; ++i) {
        if (row[i].index != kInvalidNeighbor) row[i].index = ids[row[i].index];
      }
    }
    if (!ExpectBitIdentical(cold_answer, mutated_answer,
                            "cold-rebuild checkpoint")) {
      return;
    }
  }

  // Checkpoint 2: the overlay survives a snapshot round trip (v2 when
  // mutated) and the loaded index answers bit-identically.
  const std::string path = ::testing::TempDir() + "/mutfuzz_" +
                           std::to_string(cfg.seed) + ".sksnap";
  const Status saved = index.Save(path, "mutation-fuzz");
  if (!saved.ok()) {
    ADD_FAILURE() << "Save failed: " << saved.ToString();
    return;
  }
  Result<std::unique_ptr<SweetKnnIndex>> loaded =
      SweetKnnIndex::Load(path, config);
  std::remove(path.c_str());
  if (!loaded.ok()) {
    ADD_FAILURE() << "Load failed: " << loaded.status().ToString();
    return;
  }
  if (!ExpectBitIdentical(
          mutated_answer,
          loaded.value()->Query(checkpoint_queries, checkpoint_k),
          "snapshot round-trip checkpoint")) {
    return;
  }

  // Checkpoint (range modalities): RadiusSearch and SelfJoin over the
  // mutated overlay match the brute-force closed-ball oracle over the
  // model, under one more random flip of the invisible knobs.
  ToggleInvisibleKnobs(&toggle_rng, &index.planner());
  const float checkpoint_radius = 0.05f + rng.NextFloat() * 0.6f;
  if (!ExpectRangeMatchesModel(
          model, cfg.dims, checkpoint_queries, checkpoint_radius,
          cfg.metric, index.RadiusSearch(checkpoint_queries,
                                         checkpoint_radius),
          "range checkpoint")) {
    return;
  }
  if (!ExpectSelfJoinMatchesModel(model, cfg.dims, checkpoint_radius,
                                  cfg.metric,
                                  index.SelfJoin(checkpoint_radius),
                                  "self-join checkpoint")) {
    return;
  }

  // Checkpoint 3 (approx): a saturated budget forces the full-scan hatch,
  // so the whole approx pipeline — over-query, tombstone mask, delta
  // merge — must be bit-identical to the exact answer; the default
  // budget must still meet the 0.9 recall SLA over the mutated state.
  const ann::SearchMode saturated =
      ann::SearchMode::Approx(0.9, kSaturatingEf);
  if (!ExpectBitIdentical(mutated_answer,
                          index.Query(checkpoint_queries, checkpoint_k,
                                      saturated),
                          "saturated-approx checkpoint")) {
    return;
  }
  const KnnResult approx_answer = index.Query(
      checkpoint_queries, checkpoint_k, ann::SearchMode::Approx(0.9));
  const double recall = ApproxRecall(mutated_answer, approx_answer);
  EXPECT_GE(recall, 0.9) << "approx checkpoint recall " << recall;
}

// ---------------------------------------------------------------------------
// Service tier
// ---------------------------------------------------------------------------

void RunServiceSequence(const MutationFuzzConfig& cfg) {
  const HostMatrix target = testing::ClusteredPoints(
      cfg.n0, cfg.dims, cfg.clusters, SplitMix64(cfg.seed), 0.08f);
  serve::ServiceConfig config;
  config.num_shards = cfg.service_shards;
  config.max_batch_size = 8;
  config.max_batch_wait = std::chrono::microseconds(200);
  config.cache_capacity = cfg.cache_capacity;
  config.options.metric = cfg.metric;
  config.compact_delta_fraction = cfg.compact_fraction;
  config.auto_compact = cfg.auto_compact;
  config.enable_ann = true;
  serve::KnnService service(target, config);

  Model model;
  for (size_t i = 0; i < cfg.n0; ++i) {
    model[static_cast<uint32_t>(i)] = std::vector<float>(
        target.row(i), target.row(i) + cfg.dims);
  }
  uint32_t expected_next_id = static_cast<uint32_t>(cfg.n0);
  uint64_t inserts = 0;
  uint64_t removes = 0;

  ScopedSimdDispatch dispatch_guard;
  Rng toggle_rng(SplitMix64(cfg.seed + 93));
  Rng rng(SplitMix64(cfg.seed + 31));
  for (int op = 0; op < cfg.ops; ++op) {
    ToggleInvisibleKnobs(&toggle_rng, &service.planner());
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 22) {
      const std::vector<float> point = RandomPoint(&rng, cfg.dims);
      const Result<uint32_t> id = service.Insert(point);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      if (id.value() != expected_next_id) {
        ADD_FAILURE() << "op " << op << ": Insert returned id "
                      << id.value() << ", expected " << expected_next_id;
        return;
      }
      model[id.value()] = point;
      ++expected_next_id;
      ++inserts;
    } else if (dice < 30) {
      const size_t rows = 1 + rng.NextBounded(4);
      HostMatrix points = RandomQueries(&rng, rows, cfg.dims);
      const Result<std::vector<uint32_t>> ids = service.InsertBatch(points);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      for (size_t r = 0; r < rows; ++r) {
        if (ids.value()[r] != expected_next_id) {
          ADD_FAILURE() << "op " << op << ": InsertBatch row " << r
                        << " got id " << ids.value()[r] << ", expected "
                        << expected_next_id;
          return;
        }
        model[ids.value()[r]] = std::vector<float>(
            points.row(r), points.row(r) + cfg.dims);
        ++expected_next_id;
        ++inserts;
      }
    } else if (dice < 52) {
      const uint32_t id = DrawRemoveId(&rng, model, expected_next_id);
      const bool want = model.count(id) > 0;
      const Result<bool> got = service.Remove(id);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (want != got.value()) {
        ADD_FAILURE() << "op " << op << ": Remove(" << id << ") returned "
                      << got.value() << ", model says " << want;
        return;
      }
      if (want) ++removes;
      model.erase(id);
    } else if (dice < 58) {
      const int shard = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(service.num_shards())));
      const Status status = rng.NextBounded(3) == 0
                                ? service.CompactAll()
                                : service.CompactShard(shard);
      // Unavailable = a background compaction of the same shard is in
      // flight; anything else is a real failure.
      if (!status.ok() && status.code() != StatusCode::kUnavailable) {
        ADD_FAILURE() << "op " << op
                      << ": compaction failed: " << status.ToString();
        return;
      }
    } else {
      const size_t m = 1 + rng.NextBounded(3);
      const HostMatrix queries = RandomQueries(&rng, m, cfg.dims);
      const int k = DrawK(&rng, model);
      const KnnResult want =
          ExpectedTopK(model, cfg.dims, queries, k, cfg.metric);
      if (m == 1 && cfg.cache_capacity > 0 && rng.NextBounded(2) == 0) {
        // Exercise the cached single-row path; mutations must have
        // invalidated anything stale.
        const std::vector<float> point(queries.row(0),
                                       queries.row(0) + cfg.dims);
        const Result<std::vector<Neighbor>> got = service.Search(point, k);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        KnnResult got_result(1, k);
        got_result.SetRow(0, got.value());
        if (!ExpectBitIdentical(want, got_result,
                                "op " + std::to_string(op) + " search")) {
          return;
        }
      } else {
        const Result<KnnResult> got = service.JoinBatch(queries, k);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        if (!ExpectBitIdentical(want, got.value(),
                                "op " + std::to_string(op) + " join")) {
          return;
        }
      }
    }
  }

  // Counter sanity: the service saw exactly the model's mutations.
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.inserts, inserts);
  EXPECT_EQ(stats.removes, removes);
  EXPECT_EQ(service.target_rows(), model.size());

  // Checkpoint: the live set's answers survive CompactAll and a full
  // SaveSnapshots -> FromSnapshots round trip, bit-identically.
  const HostMatrix checkpoint_queries = RandomQueries(&rng, 4, cfg.dims);
  const int checkpoint_k = DrawK(&rng, model);
  const KnnResult want = ExpectedTopK(model, cfg.dims, checkpoint_queries,
                                      checkpoint_k, cfg.metric);
  const Status compacted = service.CompactAll();
  if (!compacted.ok() && compacted.code() != StatusCode::kUnavailable) {
    ADD_FAILURE() << "CompactAll failed: " << compacted.ToString();
    return;
  }
  Result<KnnResult> after_compact =
      service.JoinBatch(checkpoint_queries, checkpoint_k);
  ASSERT_TRUE(after_compact.ok()) << after_compact.status().ToString();
  if (!ExpectBitIdentical(want, after_compact.value(),
                          "post-CompactAll checkpoint")) {
    return;
  }

  const std::string dir = ::testing::TempDir() + "/mutfuzz_service_" +
                          std::to_string(cfg.seed);
  std::filesystem::remove_all(dir);
  const Status saved = service.SaveSnapshots(dir);
  if (!saved.ok()) {
    ADD_FAILURE() << "SaveSnapshots failed: " << saved.ToString();
    return;
  }
  Result<std::unique_ptr<serve::KnnService>> adopted =
      serve::KnnService::FromSnapshots(dir, config);
  if (!adopted.ok()) {
    ADD_FAILURE() << "FromSnapshots failed: "
                  << adopted.status().ToString();
    std::filesystem::remove_all(dir);
    return;
  }
  EXPECT_EQ(adopted.value()->target_rows(), model.size());
  Result<KnnResult> adopted_answer =
      adopted.value()->JoinBatch(checkpoint_queries, checkpoint_k);
  ASSERT_TRUE(adopted_answer.ok()) << adopted_answer.status().ToString();
  if (!ExpectBitIdentical(want, adopted_answer.value(),
                          "FromSnapshots checkpoint")) {
    std::filesystem::remove_all(dir);
    return;
  }
  std::filesystem::remove_all(dir);

  // Checkpoint (range modalities): the service's RadiusSearch goes
  // through admission + the batch scheduler, SelfJoin through the whole
  // job pipeline (submit, snapshot, chunks, reduce) — both must match
  // the model's closed-ball oracle bit-for-bit.
  ToggleInvisibleKnobs(&toggle_rng, &service.planner());
  const float checkpoint_radius = 0.05f + rng.NextFloat() * 0.6f;
  const Result<RangeResult> range_got =
      service.RadiusSearch(checkpoint_queries, checkpoint_radius);
  ASSERT_TRUE(range_got.ok()) << range_got.status().ToString();
  if (!ExpectRangeMatchesModel(model, cfg.dims, checkpoint_queries,
                               checkpoint_radius, cfg.metric,
                               range_got.value(),
                               "service range checkpoint")) {
    return;
  }
  const Result<std::vector<SelfJoinPair>> join_got =
      service.SelfJoin(checkpoint_radius);
  ASSERT_TRUE(join_got.ok()) << join_got.status().ToString();
  if (!ExpectSelfJoinMatchesModel(model, cfg.dims, checkpoint_radius,
                                  cfg.metric, join_got.value(),
                                  "service self-join checkpoint")) {
    return;
  }

  // Approx checkpoints, on both the mutated service and the one adopted
  // from its snapshots (whose graphs just round-tripped through disk):
  // the saturated budget is bit-identical to the oracle, the default
  // budget meets the 0.9 recall SLA.
  const ann::SearchMode saturated =
      ann::SearchMode::Approx(0.9, kSaturatingEf);
  const ann::SearchMode default_budget = ann::SearchMode::Approx(0.9);
  struct { serve::KnnService* svc; const char* what; } tiers[] = {
      {&service, "service"}, {adopted.value().get(), "adopted service"}};
  for (const auto& t : tiers) {
    Result<KnnResult> sat =
        t.svc->JoinBatch(checkpoint_queries, checkpoint_k, saturated);
    ASSERT_TRUE(sat.ok()) << sat.status().ToString();
    if (!ExpectBitIdentical(want, sat.value(),
                            std::string(t.what) +
                                " saturated-approx checkpoint")) {
      return;
    }
    Result<KnnResult> approx =
        t.svc->JoinBatch(checkpoint_queries, checkpoint_k, default_budget);
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    const double recall = ApproxRecall(want, approx.value());
    EXPECT_GE(recall, 0.9) << t.what << " approx checkpoint recall "
                           << recall;
  }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

void RunIndexTier(uint64_t seed_offset, int count, bool fast) {
  for (int i = 0; i < count; ++i) {
    const MutationFuzzConfig cfg =
        DrawConfig(kBaseSeed + seed_offset + static_cast<uint64_t>(i), fast);
    SCOPED_TRACE(Repro("index", cfg));
    RunIndexSequence(cfg);
    if (::testing::Test::HasFailure()) break;  // first repro is enough
  }
}

void RunServiceTier(uint64_t seed_offset, int count, bool fast) {
  for (int i = 0; i < count; ++i) {
    const MutationFuzzConfig cfg =
        DrawConfig(kBaseSeed + seed_offset + static_cast<uint64_t>(i), fast);
    SCOPED_TRACE(Repro("service", cfg));
    RunServiceSequence(cfg);
    if (::testing::Test::HasFailure()) break;
  }
}

// The fast tier: 150 short sequences, run as the CI mutation-fuzz stage
// (see .github/workflows/ci.yml) and cheap enough for local iteration.
TEST(MutationFuzzFastTier, IndexSequences) {
  RunIndexTier(/*seed_offset=*/0, /*count=*/100, /*fast=*/true);
}
TEST(MutationFuzzFastTier, ServiceSequences) {
  RunServiceTier(/*seed_offset=*/10000, /*count=*/50, /*fast=*/true);
}

// The slow tiers: 1200 index + 800 service sequences, sharded so ctest
// can run them in parallel. Together with the fast tier this checks
// 2150 seeded interleavings.
TEST(MutationFuzzSlow, IndexTierShard0) { RunIndexTier(20000, 300, false); }
TEST(MutationFuzzSlow, IndexTierShard1) { RunIndexTier(21000, 300, false); }
TEST(MutationFuzzSlow, IndexTierShard2) { RunIndexTier(22000, 300, false); }
TEST(MutationFuzzSlow, IndexTierShard3) { RunIndexTier(23000, 300, false); }
TEST(MutationFuzzSlow, ServiceTierShard0) {
  RunServiceTier(30000, 200, false);
}
TEST(MutationFuzzSlow, ServiceTierShard1) {
  RunServiceTier(31000, 200, false);
}
TEST(MutationFuzzSlow, ServiceTierShard2) {
  RunServiceTier(32000, 200, false);
}
TEST(MutationFuzzSlow, ServiceTierShard3) {
  RunServiceTier(33000, 200, false);
}

}  // namespace
}  // namespace sweetknn
