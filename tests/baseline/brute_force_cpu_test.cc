#include "baseline/brute_force_cpu.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::baseline {
namespace {

TEST(BruteForceCpuTest, HandComputedCase) {
  HostMatrix points(4, 1);
  points.at(0, 0) = 0.0f;
  points.at(1, 0) = 1.0f;
  points.at(2, 0) = 3.0f;
  points.at(3, 0) = 7.0f;
  const KnnResult r = BruteForceCpu(points, points, 2);
  // Query 0: itself (0), then point 1 (distance 1).
  EXPECT_EQ(r.row(0)[0].index, 0u);
  EXPECT_EQ(r.row(0)[1].index, 1u);
  EXPECT_FLOAT_EQ(r.row(0)[1].distance, 1.0f);
  // Query 3: itself, then point 2 (distance 4).
  EXPECT_EQ(r.row(3)[1].index, 2u);
  EXPECT_FLOAT_EQ(r.row(3)[1].distance, 4.0f);
}

TEST(BruteForceCpuTest, SelfJoinNearestIsSelf) {
  const HostMatrix points = testing::UniformPoints(50, 3, 21);
  const KnnResult r = BruteForceCpu(points, points, 1);
  for (size_t q = 0; q < 50; ++q) {
    EXPECT_EQ(r.row(q)[0].index, static_cast<uint32_t>(q));
    EXPECT_FLOAT_EQ(r.row(q)[0].distance, 0.0f);
  }
}

TEST(BruteForceCpuTest, DistinctQueryTargetSets) {
  HostMatrix query(1, 2);
  query.at(0, 0) = 0.5f;
  query.at(0, 1) = 0.5f;
  HostMatrix target(3, 2);
  target.at(0, 0) = 0.0f;
  target.at(1, 0) = 0.5f;
  target.at(1, 1) = 0.6f;
  target.at(2, 0) = 2.0f;
  const KnnResult r = BruteForceCpu(query, target, 3);
  EXPECT_EQ(r.row(0)[0].index, 1u);
}

TEST(BruteForceCpuTest, KLargerThanTargetsPads) {
  const HostMatrix query = testing::UniformPoints(3, 2, 22);
  const HostMatrix target = testing::UniformPoints(2, 2, 23);
  const KnnResult r = BruteForceCpu(query, target, 5);
  EXPECT_NE(r.row(0)[0].index, kInvalidNeighbor);
  EXPECT_NE(r.row(0)[1].index, kInvalidNeighbor);
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(r.row(0)[i].index, kInvalidNeighbor);
  }
}

TEST(BruteForceCpuTest, RowsAreAscending) {
  const HostMatrix points = testing::UniformPoints(60, 4, 24);
  const KnnResult r = BruteForceCpu(points, points, 10);
  for (size_t q = 0; q < 60; ++q) {
    for (int i = 1; i < 10; ++i) {
      EXPECT_LE(r.row(q)[i - 1].distance, r.row(q)[i].distance);
    }
  }
}

}  // namespace
}  // namespace sweetknn::baseline
