#include "baseline/brute_force_gpu.h"

#include "baseline/brute_force_cpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::baseline {
namespace {

using testing::ClusteredPoints;
using testing::ExpectResultsMatch;

TEST(BruteForceGpuTest, ExactModeMatchesCpuOracle) {
  const HostMatrix points = ClusteredPoints(200, 6, 4, 41);
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  BruteForceOptions options;
  options.exact = true;
  BruteForceStats stats;
  const KnnResult r = BruteForceGpu(&dev, points, points, 5, options,
                                    &stats);
  ExpectResultsMatch(BruteForceCpu(points, points, 5), r,
                     /*tolerance=*/5e-3f);  // Norm-trick loses precision.
  EXPECT_EQ(stats.query_partitions, 1);
  EXPECT_GT(stats.sim_time_s, 0.0);
}

TEST(BruteForceGpuTest, PartitionsWhenMatrixExceedsMemory) {
  const HostMatrix points = ClusteredPoints(512, 4, 4, 42);
  // Memory fits points but not the 512 x 512 distance matrix.
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::ScaledK20c(300 * 1024);
  gpusim::Device dev(spec);
  BruteForceOptions options;
  options.exact = true;
  BruteForceStats stats;
  const KnnResult r = BruteForceGpu(&dev, points, points, 3, options,
                                    &stats);
  EXPECT_GT(stats.query_partitions, 1);
  ExpectResultsMatch(BruteForceCpu(points, points, 3), r, 5e-3f);
}

TEST(BruteForceGpuTest, ModeledModeProducesProfileOnly) {
  const HostMatrix points = ClusteredPoints(300, 8, 4, 43);
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  BruteForceOptions options;
  options.exact = false;
  BruteForceStats stats;
  BruteForceGpu(&dev, points, points, 5, options, &stats);
  EXPECT_GT(stats.sim_time_s, 0.0);
  bool saw_gemm = false;
  bool saw_select = false;
  for (const auto& launch : stats.profile.launches) {
    saw_gemm |= launch.kernel_name == "cublas_sgemm";
    saw_select |= launch.kernel_name == "bf_select";
  }
  EXPECT_TRUE(saw_gemm);
  EXPECT_TRUE(saw_select);
}

TEST(BruteForceGpuTest, ModeledAndExactChargeSimilarTime) {
  // The pseudo-distance control flow should cost about the same as the
  // real one (selection is scan-dominated).
  const HostMatrix points = ClusteredPoints(256, 5, 4, 44);
  BruteForceStats exact_stats;
  BruteForceStats modeled_stats;
  {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    BruteForceOptions options;
    options.exact = true;
    BruteForceGpu(&dev, points, points, 8, options, &exact_stats);
  }
  {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    BruteForceOptions options;
    options.exact = false;
    BruteForceGpu(&dev, points, points, 8, options, &modeled_stats);
  }
  EXPECT_NEAR(modeled_stats.sim_time_s / exact_stats.sim_time_s, 1.0, 0.2);
}

TEST(BruteForceGpuTest, LargerKTakesLonger) {
  const HostMatrix points = ClusteredPoints(400, 4, 4, 45);
  BruteForceOptions options;
  options.exact = false;
  BruteForceStats k_small;
  BruteForceStats k_large;
  {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    BruteForceGpu(&dev, points, points, 2, options, &k_small);
  }
  {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    BruteForceGpu(&dev, points, points, 64, options, &k_large);
  }
  EXPECT_GT(k_large.sim_time_s, k_small.sim_time_s);
}

TEST(BruteForceGpuTest, PureCudaVariantMatchesOracle) {
  const HostMatrix points = ClusteredPoints(180, 5, 4, 46);
  gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
  BruteForceOptions options;
  options.variant = BruteForceVariant::kPureCuda;
  options.exact = true;
  BruteForceStats stats;
  const KnnResult r =
      BruteForceGpu(&dev, points, points, 6, options, &stats);
  ExpectResultsMatch(baseline::BruteForceCpu(points, points, 6), r);
  bool saw_kernel = false;
  for (const auto& launch : stats.profile.launches) {
    saw_kernel |= launch.kernel_name == "bf_pure_cuda";
  }
  EXPECT_TRUE(saw_kernel);
}

TEST(BruteForceGpuTest, CublasVariantBeatsPureCudaAtScale) {
  // The paper's stated reason for the CUBLAS baseline.
  const HostMatrix points = ClusteredPoints(2048, 29, 16, 47);
  BruteForceOptions options;
  options.exact = false;
  BruteForceStats cublas;
  BruteForceStats cuda;
  {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    options.variant = BruteForceVariant::kCublas;
    BruteForceGpu(&dev, points, points, 20, options, &cublas);
  }
  {
    gpusim::Device dev(gpusim::DeviceSpec::TeslaK20c());
    options.variant = BruteForceVariant::kPureCuda;
    BruteForceGpu(&dev, points, points, 20, options, &cuda);
  }
  EXPECT_LT(cublas.profile.TotalKernelTime(),
            cuda.profile.TotalKernelTime());
}

}  // namespace
}  // namespace sweetknn::baseline
