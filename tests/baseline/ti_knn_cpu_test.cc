#include "baseline/ti_knn_cpu.h"

#include <tuple>

#include "baseline/brute_force_cpu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sweetknn::baseline {
namespace {

using testing::ClusteredPoints;
using testing::ExpectResultsMatch;
using testing::UniformPoints;

TEST(TiKnnCpuTest, MatchesBruteForceOnClusteredData) {
  const HostMatrix points = ClusteredPoints(300, 8, 5, 31);
  const KnnResult expected = BruteForceCpu(points, points, 6);
  TiCpuStats stats;
  const KnnResult actual = TiKnnCpu(points, points, 6, 0, &stats);
  ExpectResultsMatch(expected, actual);
  EXPECT_GT(stats.SavedFraction(), 0.3);
  EXPECT_EQ(stats.total_pairs, 300u * 300u);
}

TEST(TiKnnCpuTest, MatchesBruteForceOnUniformData) {
  const HostMatrix points = UniformPoints(200, 6, 32);
  ExpectResultsMatch(BruteForceCpu(points, points, 4),
                     TiKnnCpu(points, points, 4));
}

TEST(TiKnnCpuTest, DistinctSets) {
  const HostMatrix query = ClusteredPoints(80, 5, 3, 33);
  const HostMatrix target = ClusteredPoints(220, 5, 4, 34);
  ExpectResultsMatch(BruteForceCpu(query, target, 7),
                     TiKnnCpu(query, target, 7));
}

TEST(TiKnnCpuTest, LandmarkOverrideStillExact) {
  const HostMatrix points = ClusteredPoints(250, 4, 4, 35);
  for (int landmarks : {1, 4, 16, 64, 250}) {
    ExpectResultsMatch(BruteForceCpu(points, points, 5),
                       TiKnnCpu(points, points, 5, landmarks));
  }
}

TEST(TiKnnCpuTest, TighterClustersSaveMore) {
  const HostMatrix loose = ClusteredPoints(400, 8, 8, 36, /*spread=*/0.3f);
  const HostMatrix tight = ClusteredPoints(400, 8, 8, 36, /*spread=*/0.01f);
  TiCpuStats loose_stats;
  TiCpuStats tight_stats;
  TiKnnCpu(loose, loose, 5, 0, &loose_stats);
  TiKnnCpu(tight, tight, 5, 0, &tight_stats);
  EXPECT_GT(tight_stats.SavedFraction(), loose_stats.SavedFraction());
}

// Parameterized sweep over (n, dims, k).
class TiCpuSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TiCpuSweep, AlwaysExact) {
  const auto [n, dims, k] = GetParam();
  const HostMatrix points =
      ClusteredPoints(static_cast<size_t>(n), static_cast<size_t>(dims), 4,
                      static_cast<uint64_t>(n * 100 + dims * 10 + k));
  ExpectResultsMatch(BruteForceCpu(points, points, k),
                     TiKnnCpu(points, points, k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiCpuSweep,
    ::testing::Combine(::testing::Values(30, 100, 320),
                       ::testing::Values(2, 9, 33),
                       ::testing::Values(1, 5, 17)));

}  // namespace
}  // namespace sweetknn::baseline
