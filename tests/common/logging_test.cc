#include "common/logging.h"

#include "gtest/gtest.h"

namespace sweetknn {
namespace {

TEST(LoggingTest, MinSeverityRoundTrip) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, InfoMessagesDoNotAbort) {
  SK_LOG(Info) << "informational " << 42;
  SK_LOG(Warning) << "warning";
  SK_LOG(Error) << "error (non-fatal)";
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(SK_LOG(Fatal) << "boom", "boom");
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  const int x = 1;
  EXPECT_DEATH(SK_CHECK(x == 2) << "x was " << x, "Check failed");
}

TEST(LoggingDeathTest, CheckOpPrintsOperands) {
  EXPECT_DEATH(SK_CHECK_EQ(3, 4), "3 vs 4");
  EXPECT_DEATH(SK_CHECK_LT(9, 2), "9 vs 2");
}

TEST(LoggingTest, PassingChecksAreSilent) {
  SK_CHECK(true);
  SK_CHECK_EQ(1, 1);
  SK_CHECK_NE(1, 2);
  SK_CHECK_LE(1, 1);
  SK_CHECK_GE(2, 1);
  SK_CHECK_GT(2, 1);
  SK_CHECK_LT(1, 2);
}

TEST(LoggingTest, DcheckActiveMatchesBuildMode) {
#ifdef NDEBUG
  SK_DCHECK(false);  // Compiled out in release builds.
#else
  EXPECT_DEATH(SK_DCHECK(false), "Check failed");
#endif
}

}  // namespace
}  // namespace sweetknn
