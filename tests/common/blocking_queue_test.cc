#include "common/blocking_queue.h"

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sweetknn::common {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 5u);
  int value = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.TryPop(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.TryPop(&value));
}

TEST(BlockingQueueTest, WaitPopBlocksUntilPush) {
  BlockingQueue<int> queue;
  int value = 0;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.Push(42);
  });
  EXPECT_TRUE(queue.WaitPop(&value));
  EXPECT_EQ(value, 42);
  producer.join();
}

TEST(BlockingQueueTest, WaitPopForTimesOutEmpty) {
  BlockingQueue<int> queue;
  int value = 0;
  EXPECT_FALSE(queue.WaitPopFor(&value, std::chrono::microseconds(200)));
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // rejected after close
  int value = 0;
  EXPECT_TRUE(queue.WaitPop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.WaitPop(&value));
  EXPECT_EQ(value, 2);
  EXPECT_FALSE(queue.WaitPop(&value));  // empty + closed
  EXPECT_TRUE(queue.closed());
}

TEST(BlockingQueueTest, CloseWakesBlockedWaiter) {
  BlockingQueue<int> queue;
  std::thread waiter([&] {
    int value = 0;
    EXPECT_FALSE(queue.WaitPop(&value));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Close();
  waiter.join();
}

TEST(BlockingQueueTest, PeakDepthIsHighWaterMark) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 7; ++i) queue.Push(i);
  int value = 0;
  while (queue.TryPop(&value)) {
  }
  queue.Push(0);
  EXPECT_EQ(queue.peak_depth(), 7u);
}

TEST(BlockingQueueTest, ManyProducersOneConsumer) {
  BlockingQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&] {
    int value = 0;
    while (queue.WaitPop(&value)) seen.push_back(value);
  });
  for (std::thread& t : producers) t.join();
  queue.Close();
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace sweetknn::common
