#include "common/blocking_queue.h"

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sweetknn::common {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 5u);
  int value = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.TryPop(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.TryPop(&value));
}

TEST(BlockingQueueTest, WaitPopBlocksUntilPush) {
  BlockingQueue<int> queue;
  int value = 0;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.Push(42);
  });
  EXPECT_TRUE(queue.WaitPop(&value));
  EXPECT_EQ(value, 42);
  producer.join();
}

TEST(BlockingQueueTest, WaitPopForTimesOutEmpty) {
  BlockingQueue<int> queue;
  int value = 0;
  EXPECT_EQ(queue.WaitPopFor(&value, std::chrono::microseconds(200)),
            PopResult::kTimeout);
}

TEST(BlockingQueueTest, WaitPopUntilHonorsAbsoluteDeadline) {
  BlockingQueue<int> queue;
  int value = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(
      queue.WaitPopUntil(&value, start + std::chrono::milliseconds(30)),
      PopResult::kTimeout);
  // An absolute deadline must not restart on spurious wakeups: the wait
  // ends close to the deadline, never multiples of it.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(2000));
}

TEST(BlockingQueueTest, WaitPopUntilPopsAvailableItemPastDeadline) {
  // A deadline already in the past still drains available items — the
  // router's reply collection depends on this (replies that raced the
  // deadline are not lost).
  BlockingQueue<int> queue;
  queue.Push(7);
  int value = 0;
  EXPECT_EQ(queue.WaitPopUntil(
                &value,
                std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(10)),
            PopResult::kItem);
  EXPECT_EQ(value, 7);
  EXPECT_EQ(queue.WaitPopUntil(
                &value,
                std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(10)),
            PopResult::kTimeout);
}

TEST(BlockingQueueTest, WaitPopUntilWakesOnPush) {
  BlockingQueue<int> queue;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Push(11);
  });
  int value = 0;
  EXPECT_EQ(queue.WaitPopUntil(
                &value,
                std::chrono::steady_clock::now() + std::chrono::seconds(10)),
            PopResult::kItem);
  EXPECT_EQ(value, 11);
  producer.join();
}

TEST(BlockingQueueTest, WaitPopUntilWakesOnClose) {
  BlockingQueue<int> queue;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Close();
  });
  int value = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.WaitPopUntil(&value, start + std::chrono::seconds(30)),
            PopResult::kClosed);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
  closer.join();
}

// Regression: the timed pops used to return bool, conflating "timed out
// but still open" with "closed and drained" — a consumer could not tell
// an idle queue from a dead one. The tri-state must report kTimeout
// while the queue is open, and kClosed only once it is BOTH closed and
// fully drained.
TEST(BlockingQueueTest, TimedPopsDistinguishTimeoutFromClosed) {
  BlockingQueue<int> queue;
  int value = 0;
  // Open and empty: timeout, not closed.
  EXPECT_EQ(queue.WaitPopFor(&value, std::chrono::microseconds(100)),
            PopResult::kTimeout);
  EXPECT_EQ(queue.WaitPopUntil(&value,
                               std::chrono::steady_clock::now() -
                                   std::chrono::milliseconds(1)),
            PopResult::kTimeout);
  // Closed with a backlog: still kItem until drained (the shutdown
  // drain guarantee), THEN kClosed — never kTimeout again.
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  EXPECT_EQ(queue.WaitPopFor(&value, std::chrono::microseconds(100)),
            PopResult::kItem);
  EXPECT_EQ(value, 1);
  EXPECT_EQ(queue.WaitPopUntil(&value,
                               std::chrono::steady_clock::now() -
                                   std::chrono::milliseconds(1)),
            PopResult::kItem);
  EXPECT_EQ(value, 2);
  EXPECT_EQ(queue.WaitPopFor(&value, std::chrono::microseconds(100)),
            PopResult::kClosed);
  EXPECT_EQ(queue.WaitPopUntil(&value,
                               std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(1)),
            PopResult::kClosed);
}

TEST(BlockingQueueTest, ClosedPopReturnsImmediately) {
  // kClosed must not burn the full timeout: a closed-and-empty queue
  // answers immediately even with a far-future deadline.
  BlockingQueue<int> queue;
  queue.Close();
  int value = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.WaitPopFor(&value, std::chrono::seconds(30)),
            PopResult::kClosed);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // rejected after close
  int value = 0;
  EXPECT_TRUE(queue.WaitPop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.WaitPop(&value));
  EXPECT_EQ(value, 2);
  EXPECT_FALSE(queue.WaitPop(&value));  // empty + closed
  EXPECT_TRUE(queue.closed());
}

TEST(BlockingQueueTest, CloseWakesBlockedWaiter) {
  BlockingQueue<int> queue;
  std::thread waiter([&] {
    int value = 0;
    EXPECT_FALSE(queue.WaitPop(&value));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Close();
  waiter.join();
}

TEST(BlockingQueueTest, PeakDepthIsHighWaterMark) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 7; ++i) queue.Push(i);
  int value = 0;
  while (queue.TryPop(&value)) {
  }
  queue.Push(0);
  EXPECT_EQ(queue.peak_depth(), 7u);
}

TEST(BlockingQueueTest, ManyProducersOneConsumer) {
  BlockingQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&] {
    int value = 0;
    while (queue.WaitPop(&value)) seen.push_back(value);
  });
  for (std::thread& t : producers) t.join();
  queue.Close();
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace sweetknn::common
