#include "common/knn_result.h"

#include <cmath>

#include "gtest/gtest.h"

namespace sweetknn {
namespace {

TEST(KnnResultTest, Dimensions) {
  KnnResult result(10, 3);
  EXPECT_EQ(result.k(), 3);
  EXPECT_EQ(result.num_queries(), 10u);
}

TEST(KnnResultTest, SetRowStoresSorted) {
  KnnResult result(2, 3);
  result.SetRow(0, {{4, 0.1f}, {7, 0.2f}, {9, 0.3f}});
  EXPECT_EQ(result.row(0)[0].index, 4u);
  EXPECT_EQ(result.row(0)[2].index, 9u);
}

TEST(KnnResultTest, SetRowPadsShortLists) {
  KnnResult result(1, 4);
  result.SetRow(0, {{1, 0.5f}});
  EXPECT_EQ(result.row(0)[0].index, 1u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(result.row(0)[i].index, kInvalidNeighbor);
    EXPECT_TRUE(std::isinf(result.row(0)[i].distance));
  }
}

TEST(KnnResultTest, MatchIgnoresIndexOnEqualDistance) {
  KnnResult a(1, 2);
  KnnResult b(1, 2);
  a.SetRow(0, {{1, 0.5f}, {2, 0.7f}});
  b.SetRow(0, {{9, 0.5f}, {8, 0.7f}});
  EXPECT_TRUE(ResultsMatch(a, b));
}

TEST(KnnResultTest, MismatchDetected) {
  KnnResult a(1, 2);
  KnnResult b(1, 2);
  a.SetRow(0, {{1, 0.5f}, {2, 0.7f}});
  b.SetRow(0, {{1, 0.5f}, {2, 0.9f}});
  std::string description;
  EXPECT_EQ(CountResultMismatches(a, b, 1e-4f, &description), 1u);
  EXPECT_NE(description.find("rank 1"), std::string::npos);
}

TEST(KnnResultTest, ToleranceIsRelative) {
  KnnResult a(1, 1);
  KnnResult b(1, 1);
  a.SetRow(0, {{1, 1000.0f}});
  b.SetRow(0, {{1, 1000.05f}});
  // 0.05 absolute, but 5e-5 relative: passes at 1e-4 tolerance.
  EXPECT_TRUE(ResultsMatch(a, b, 1e-4f));
  EXPECT_FALSE(ResultsMatch(a, b, 1e-6f));
}

TEST(KnnResultTest, InfinitePaddingMatches) {
  KnnResult a(1, 2);
  KnnResult b(1, 2);
  a.SetRow(0, {{1, 0.5f}});
  b.SetRow(0, {{1, 0.5f}});
  EXPECT_TRUE(ResultsMatch(a, b));
}

}  // namespace
}  // namespace sweetknn
