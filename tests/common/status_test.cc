#include "common/status.h"

#include "gtest/gtest.h"

namespace sweetknn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SK_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ReturnIfErrorTest, PassesOk) {
  auto succeeds = [] { return Status::Ok(); };
  auto wrapper = [&]() -> Status {
    SK_RETURN_IF_ERROR(succeeds());
    return Status::Ok();
  };
  EXPECT_TRUE(wrapper().ok());
}

}  // namespace
}  // namespace sweetknn
