#include "common/rng.h"

#include <cmath>

#include "gtest/gtest.h"

namespace sweetknn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, FloatInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.NextFloat();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsAreRoughlyStandard) {
  Rng rng(10);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMixTest, IsDeterministicAndSpreads) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  // Avalanche sanity: flipping one input bit flips many output bits.
  const uint64_t a = SplitMix64(0x1234);
  const uint64_t b = SplitMix64(0x1235);
  int diff_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff_bits, 16);
}

TEST(PairHashTest, DeterministicUnitRange) {
  EXPECT_EQ(PairHash01(3, 4), PairHash01(3, 4));
  EXPECT_NE(PairHash01(3, 4), PairHash01(4, 3));
  for (uint64_t a = 0; a < 30; ++a) {
    for (uint64_t b = 0; b < 30; ++b) {
      const float v = PairHash01(a, b);
      EXPECT_GE(v, 0.0f);
      EXPECT_LT(v, 1.0f);
    }
  }
}

}  // namespace
}  // namespace sweetknn
