#include "common/matrix.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace sweetknn {
namespace {

TEST(HostMatrixTest, DefaultIsEmpty) {
  HostMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(HostMatrixTest, ZeroInitialized) {
  HostMatrix m(3, 4);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m.at(r, c), 0.0f);
    }
  }
}

TEST(HostMatrixTest, RowMajorLayout) {
  HostMatrix m(2, 3);
  m.at(1, 2) = 7.0f;
  EXPECT_EQ(m.data()[1 * 3 + 2], 7.0f);
  EXPECT_EQ(m.row(1)[2], 7.0f);
}

TEST(HostMatrixTest, MutableRowWrites) {
  HostMatrix m(2, 2);
  m.mutable_row(0)[1] = 3.0f;
  EXPECT_EQ(m.at(0, 1), 3.0f);
}

TEST(DistanceTest, KnownValues) {
  const float a[] = {0.0f, 0.0f};
  const float b[] = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(SquaredDistance(a, b, 2), 25.0f);
  EXPECT_FLOAT_EQ(EuclideanDistance(a, b, 2), 5.0f);
}

TEST(DistanceTest, SelfDistanceIsZero) {
  const float a[] = {1.5f, -2.0f, 0.25f};
  EXPECT_FLOAT_EQ(EuclideanDistance(a, a, 3), 0.0f);
}

TEST(DistanceTest, SymmetryProperty) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    float a[8];
    float b[8];
    for (int i = 0; i < 8; ++i) {
      a[i] = rng.NextFloat();
      b[i] = rng.NextFloat();
    }
    EXPECT_FLOAT_EQ(EuclideanDistance(a, b, 8), EuclideanDistance(b, a, 8));
  }
}

TEST(DistanceTest, TriangleInequalityProperty) {
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    float a[4];
    float b[4];
    float c[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = rng.NextFloat();
      b[i] = rng.NextFloat();
      c[i] = rng.NextFloat();
    }
    const float ab = EuclideanDistance(a, b, 4);
    const float bc = EuclideanDistance(b, c, 4);
    const float ac = EuclideanDistance(a, c, 4);
    EXPECT_LE(ac, ab + bc + 1e-5f);
  }
}

}  // namespace
}  // namespace sweetknn
