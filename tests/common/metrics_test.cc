// The metrics library: bucket edges, percentile extraction, exporter
// formats and their round-trips, and concurrent recording.

#include "common/metrics.h"

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sweetknn::common {
namespace {

TEST(CounterTest, AccumulatesDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.Increment();
  c.Increment(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(7.0);
  g.Add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  // Prometheus semantics: a bucket's `le` edge includes the edge value.
  Histogram h({1.0, 2.0, 5.0});
  h.Observe(0.5);   // bucket 0 (le 1)
  h.Observe(1.0);   // bucket 0 — exactly on the edge
  h.Observe(1.001);  // bucket 1 (le 2)
  h.Observe(5.0);   // bucket 2 — exactly on the edge
  h.Observe(9.0);   // overflow
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.001 + 5.0 + 9.0);
  EXPECT_DOUBLE_EQ(snap.max, 9.0);
}

TEST(HistogramTest, LatencyBucketsAscendAndCoverMicrosToTenSeconds) {
  const std::vector<double> bounds = LatencyBucketsSeconds();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 10.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << i;
  }
}

TEST(HistogramTest, PercentilesInterpolateAndClampToMax) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 50; ++i) h.Observe(5.0);    // bucket 0
  for (int i = 0; i < 40; ++i) h.Observe(15.0);   // bucket 1
  for (int i = 0; i < 10; ++i) h.Observe(25.0);   // bucket 2
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  // p50: rank 50 is the last of bucket 0 → interpolates to its top edge.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.50), 10.0);
  // p90: rank 90 closes bucket 1 → its top edge.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.90), 20.0);
  // p92: 2 ranks into bucket 2 of width 10 holding 10 observations.
  EXPECT_NEAR(snap.Percentile(0.92), 22.0, 1e-9);
  // p99 interpolates to 29 but clamps to the observed max (25): a
  // percentile never exceeds a real observation.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 25.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 25.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 0.0);
  // Empty histogram: all percentiles are 0.
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Snapshot().Percentile(0.99), 0.0);
}

TEST(HistogramTest, OverflowObservationsReportTheMax) {
  Histogram h({1.0});
  h.Observe(4.0);
  h.Observe(8.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(0.50), 8.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 8.0);
}

TEST(HistogramTest, ConcurrentObservationsAllLand) {
  Histogram h(LatencyBucketsSeconds());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucketed = 0;
  for (const uint64_t c : snap.counts) bucketed += c;
  EXPECT_EQ(bucketed, snap.count);
  EXPECT_DOUBLE_EQ(snap.max, 8e-6);
  // 5000 observations of t µs for t = 1..8.
  EXPECT_NEAR(snap.sum, 5000.0 * 36.0 * 1e-6, 1e-9);
}

TEST(RegistryTest, ConcurrentCountersAreExact) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("storm_total", "concurrent increments");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  // Each increment adds exactly 1.0; 80000 is far below 2^53, so the
  // double accumulation is exact.
  EXPECT_DOUBLE_EQ(c->value(), kThreads * static_cast<double>(kPerThread));
}

TEST(RegistryTest, GetIsIdempotentPerName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "help");
  Counter* b = registry.GetCounter("x_total", "ignored on re-get");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("h", "help", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", "help", {9.0});  // bounds kept
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotHistogramOfUnknownNameIsEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.SnapshotHistogram("nope").count, 0u);
}

MetricsRegistry* FillRegistry(MetricsRegistry* r) {
  r->GetCounter("alpha_total", "a counter")->Increment(41.5);
  r->GetGauge("beta_depth", "a gauge")->Set(-3.0);
  Histogram* h = r->GetHistogram("gamma_seconds", "a histogram",
                                 {0.001, 0.01, 0.1, 1.0});
  h->Observe(0.0004);
  h->Observe(0.02);
  h->Observe(0.02);
  h->Observe(2.5);  // overflow
  return r;
}

TEST(ExportTest, JsonCarriesRawBucketsAndDerivedPercentiles) {
  MetricsRegistry registry;
  const std::string json = FillRegistry(&registry)->ExportJson();
  EXPECT_NE(json.find("\"name\": \"alpha_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 41.5"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"beta_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"le\": [0.001, 0.01, 0.1, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0, 2, 0, 1]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"max\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ExportTest, PrometheusTextIsCumulativeWithInfBucket) {
  MetricsRegistry registry;
  const std::string text =
      FillRegistry(&registry)->ExportPrometheusText();
  EXPECT_NE(text.find("# HELP alpha_total a counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE alpha_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("\nalpha_total 41.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE beta_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gamma_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets: 1, 1, 3, 3, then +Inf == _count.
  EXPECT_NE(text.find("gamma_seconds_bucket{le=\"0.001\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("gamma_seconds_bucket{le=\"0.01\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("gamma_seconds_bucket{le=\"0.1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("gamma_seconds_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("gamma_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("gamma_seconds_count 4\n"), std::string::npos);
}

TEST(ExportTest, JsonRoundTripsBitIdentically) {
  MetricsRegistry registry;
  const std::string json = FillRegistry(&registry)->ExportJson();
  MetricsRegistry parsed;
  ASSERT_TRUE(ParseMetricsJson(json, &parsed).ok());
  EXPECT_EQ(parsed.ExportJson(), json);
  // And the reconstructed histogram state is numerically identical.
  const HistogramSnapshot a = registry.SnapshotHistogram("gamma_seconds");
  const HistogramSnapshot b = parsed.SnapshotHistogram("gamma_seconds");
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.Percentile(0.9), b.Percentile(0.9));
}

TEST(ExportTest, PrometheusTextRoundTripsBitIdentically) {
  MetricsRegistry registry;
  const std::string text =
      FillRegistry(&registry)->ExportPrometheusText();
  MetricsRegistry parsed;
  ASSERT_TRUE(ParseMetricsPrometheusText(text, &parsed).ok());
  EXPECT_EQ(parsed.ExportPrometheusText(), text);
}

TEST(ExportTest, AwkwardDoublesSurviveTheJsonRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("pi_total", "")->Increment(3.141592653589793);
  registry.GetCounter("tiny_total", "")->Increment(1.0000000000000002);
  registry.GetGauge("micro", "")->Set(1e-6);
  const std::string json = registry.ExportJson();
  MetricsRegistry parsed;
  ASSERT_TRUE(ParseMetricsJson(json, &parsed).ok());
  EXPECT_EQ(parsed.GetCounter("pi_total", "")->value(), 3.141592653589793);
  EXPECT_EQ(parsed.GetCounter("tiny_total", "")->value(),
            1.0000000000000002);
  EXPECT_EQ(parsed.GetGauge("micro", "")->value(), 1e-6);
  EXPECT_EQ(parsed.ExportJson(), json);
}

TEST(ExportTest, ParsersRejectMalformedInput) {
  MetricsRegistry r1;
  EXPECT_FALSE(ParseMetricsJson("not json", &r1).ok());
  MetricsRegistry r2;
  EXPECT_FALSE(ParseMetricsJson("{\"metrics\": 3}", &r2).ok());
  MetricsRegistry r3;
  EXPECT_FALSE(
      ParseMetricsJson("{\"metrics\": [{\"name\": \"x\"}]}", &r3).ok());
  MetricsRegistry r4;
  // A histogram whose buckets never get their _count line is truncated.
  EXPECT_FALSE(ParseMetricsPrometheusText(
                   "# TYPE h histogram\nh_bucket{le=\"1\"} 2\n", &r4)
                   .ok());
  MetricsRegistry r5;
  EXPECT_FALSE(
      ParseMetricsPrometheusText("mystery_sample 4\n", &r5).ok());
}

TEST(ExportTest, FormatTableRendersEveryMetric) {
  MetricsRegistry registry;
  const std::string table = FillRegistry(&registry)->FormatTable();
  EXPECT_NE(table.find("alpha_total"), std::string::npos);
  EXPECT_NE(table.find("41.5"), std::string::npos);
  EXPECT_NE(table.find("beta_depth"), std::string::npos);
  EXPECT_NE(table.find("gamma_seconds"), std::string::npos);
  EXPECT_NE(table.find("count 4"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

TEST(LabeledMetricsTest, SeriesAreIndependentPerLabelSet) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("req_total", TenantLabel("alpha"), "h");
  Counter* b = registry.GetCounter("req_total", TenantLabel("beta"), "h");
  EXPECT_NE(a, b);
  a->Increment(3);
  b->Increment(5);
  EXPECT_EQ(a->value(), 3.0);
  EXPECT_EQ(b->value(), 5.0);
  // Same (name, labels) pair returns the same series.
  EXPECT_EQ(registry.GetCounter("req_total", TenantLabel("alpha"), "h"), a);
}

TEST(LabeledMetricsTest, LabelValuesEscapeQuotesAndBackslashes) {
  EXPECT_EQ(MetricLabel("tenant", "plain"), "tenant=\"plain\"");
  EXPECT_EQ(MetricLabel("tenant", "a\"b\\c"), "tenant=\"a\\\"b\\\\c\"");
  EXPECT_EQ(TenantLabel("x"), "tenant=\"x\"");
}

TEST(LabeledMetricsTest, PrometheusExportUsesNativeLabelSyntax) {
  MetricsRegistry registry;
  registry.GetCounter("req_total", TenantLabel("alpha"), "per-tenant")
      ->Increment(2);
  registry.GetGauge("depth", TenantLabel("beta"), "")->Set(7);
  registry.GetHistogram("lat_seconds", TenantLabel("alpha"), "",
                        std::vector<double>{1.0, 2.0})
      ->Observe(1.5);
  const std::string text = registry.ExportPrometheusText();
  EXPECT_NE(text.find("req_total{tenant=\"alpha\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("depth{tenant=\"beta\"} 7\n"), std::string::npos);
  // Histogram series labels fold in front of le inside one brace block.
  EXPECT_NE(text.find("lat_seconds_bucket{tenant=\"alpha\",le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum{tenant=\"alpha\"} 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count{tenant=\"alpha\"} 1\n"),
            std::string::npos);
  // HELP/TYPE name the family, not the series.
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE req_total{"), std::string::npos);
}

TEST(LabeledMetricsTest, LabeledSeriesRoundTripBothFormats) {
  MetricsRegistry registry;
  // A family with an unlabeled series AND two labeled ones, plus a
  // labeled histogram — the hard cases for both parsers.
  registry.GetCounter("req_total", "base")->Increment(1);
  registry.GetCounter("req_total", TenantLabel("alpha"), "base")
      ->Increment(2);
  registry.GetCounter("req_total", TenantLabel("beta"), "base")
      ->Increment(3);
  Histogram* h = registry.GetHistogram(
      "lat_seconds", TenantLabel("alpha"), "lat", LatencyBucketsSeconds());
  h->Observe(0.004);
  h->Observe(0.9);
  registry.GetHistogram("lat_seconds", TenantLabel("beta"), "lat",
                        LatencyBucketsSeconds());

  const std::string json = registry.ExportJson();
  MetricsRegistry from_json;
  ASSERT_TRUE(ParseMetricsJson(json, &from_json).ok());
  EXPECT_EQ(from_json.ExportJson(), json);

  const std::string text = registry.ExportPrometheusText();
  MetricsRegistry from_text;
  ASSERT_TRUE(ParseMetricsPrometheusText(text, &from_text).ok());
  EXPECT_EQ(from_text.ExportPrometheusText(), text);

  // The reconstructed labeled series carry the right values.
  EXPECT_EQ(from_json.GetCounter("req_total", "base")->value(), 1.0);
  EXPECT_EQ(
      from_json.GetCounter("req_total", TenantLabel("beta"), "base")->value(),
      3.0);
  const HistogramSnapshot snap =
      from_text.SnapshotHistogram("lat_seconds{tenant=\"alpha\"}");
  EXPECT_EQ(snap.count, 2u);
}

TEST(FormatMetricValueTest, ShortestRoundTrip) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(1.0), "1");
  EXPECT_EQ(FormatMetricValue(41.5), "41.5");
  EXPECT_EQ(FormatMetricValue(1e-6), "1e-06");
  // Round-trip exactness on an awkward mantissa.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(FormatMetricValue(v).c_str(), nullptr), v);
}

}  // namespace
}  // namespace sweetknn::common
