#include "common/topk.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace sweetknn {
namespace {

TEST(TopKTest, EmptyHeapHasInfiniteMax) {
  TopK heap(3);
  EXPECT_EQ(heap.size(), 0);
  EXPECT_FALSE(heap.full());
  EXPECT_TRUE(std::isinf(heap.max()));
}

TEST(TopKTest, FillsUpToK) {
  TopK heap(2);
  EXPECT_TRUE(heap.PushIfCloser({0, 5.0f}));
  EXPECT_FALSE(heap.full());
  EXPECT_TRUE(heap.PushIfCloser({1, 7.0f}));
  EXPECT_TRUE(heap.full());
  EXPECT_FLOAT_EQ(heap.max(), 7.0f);
}

TEST(TopKTest, RejectsWorseCandidatesWhenFull) {
  TopK heap(2);
  heap.PushIfCloser({0, 1.0f});
  heap.PushIfCloser({1, 2.0f});
  EXPECT_FALSE(heap.PushIfCloser({2, 3.0f}));
  EXPECT_FLOAT_EQ(heap.max(), 2.0f);
}

TEST(TopKTest, EvictsMaxOnBetterCandidate) {
  TopK heap(2);
  heap.PushIfCloser({0, 1.0f});
  heap.PushIfCloser({1, 2.0f});
  EXPECT_TRUE(heap.PushIfCloser({2, 1.5f}));
  EXPECT_FLOAT_EQ(heap.max(), 1.5f);
  const auto sorted = heap.Sorted();
  EXPECT_EQ(sorted[0].index, 0u);
  EXPECT_EQ(sorted[1].index, 2u);
}

TEST(TopKTest, TieBreaksOnIndex) {
  TopK heap(1);
  heap.PushIfCloser({5, 1.0f});
  // Equal distance, smaller index wins.
  EXPECT_TRUE(heap.PushIfCloser({2, 1.0f}));
  EXPECT_EQ(heap.Sorted()[0].index, 2u);
  // Equal distance, larger index loses.
  EXPECT_FALSE(heap.PushIfCloser({9, 1.0f}));
}

TEST(TopKTest, SortedIsAscending) {
  Rng rng(11);
  TopK heap(8);
  for (int i = 0; i < 100; ++i) {
    heap.PushIfCloser({static_cast<uint32_t>(i), rng.NextFloat()});
  }
  const auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), 8u);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].distance, sorted[i].distance);
  }
}

// Property: TopK over a random stream equals sort-based selection.
class TopKPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKPropertyTest, MatchesSortBasedSelection) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k) * 977);
  std::vector<Neighbor> all;
  TopK heap(k);
  for (uint32_t i = 0; i < 500; ++i) {
    const Neighbor n{i, rng.NextFloat()};
    all.push_back(n);
    heap.PushIfCloser(n);
  }
  std::sort(all.begin(), all.end(), NeighborLess);
  const auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), static_cast<size_t>(std::min(k, 500)));
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], all[i]) << "rank " << i << " for k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 20, 64, 100, 499,
                                           500, 501));

TEST(MergeSortedTopKTest, MergesDisjointLists) {
  std::vector<std::vector<Neighbor>> lists = {
      {{0, 0.1f}, {1, 0.4f}},
      {{2, 0.2f}, {3, 0.5f}},
      {{4, 0.3f}},
  };
  const auto merged = MergeSortedTopK(lists, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].index, 0u);
  EXPECT_EQ(merged[1].index, 2u);
  EXPECT_EQ(merged[2].index, 4u);
}

TEST(MergeSortedTopKTest, DropsExactDuplicates) {
  std::vector<std::vector<Neighbor>> lists = {
      {{7, 0.1f}, {8, 0.2f}},
      {{7, 0.1f}, {9, 0.3f}},
  };
  const auto merged = MergeSortedTopK(lists, 4);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].index, 7u);
}

TEST(MergeSortedTopKTest, HandlesEmptyLists) {
  std::vector<std::vector<Neighbor>> lists = {{}, {{1, 0.5f}}, {}};
  const auto merged = MergeSortedTopK(lists, 2);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].index, 1u);
}

TEST(MergeSortedTopKTest, PropertyMatchesGlobalSelection) {
  Rng rng(42);
  std::vector<std::vector<Neighbor>> lists(6);
  std::vector<Neighbor> all;
  uint32_t id = 0;
  for (auto& list : lists) {
    for (int i = 0; i < 20; ++i) {
      list.push_back({id++, rng.NextFloat()});
    }
    std::sort(list.begin(), list.end(), NeighborLess);
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end(), NeighborLess);
  const auto merged = MergeSortedTopK(lists, 15);
  ASSERT_EQ(merged.size(), 15u);
  for (size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i], all[i]);
}

}  // namespace
}  // namespace sweetknn
