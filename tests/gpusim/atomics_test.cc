#include "gpusim/device.h"
#include "gpusim/warp.h"
#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

class AtomicsTest : public ::testing::Test {
 protected:
  AtomicsTest() : dev_(DeviceSpec::TeslaK20c()) {}

  template <typename F>
  KernelStats RunWarp(F&& body) {
    const LaunchRecord& rec =
        dev_.Launch(KernelMeta{"test", 32, 0}, LaunchConfig{1, 32},
                    [&](Warp& w) { body(w); });
    return rec.stats;
  }

  Device dev_;
};

TEST_F(AtomicsTest, AtomicAddAccumulatesAndReturnsOld) {
  auto counter = dev_.Alloc<uint32_t>(1, "c");
  std::vector<uint32_t> olds(32);
  RunWarp([&](Warp& w) {
    w.AtomicAdd(
        counter, [](int) { return 0; }, [](int) { return uint32_t{1}; },
        [&](int lane, uint32_t old) { olds[static_cast<size_t>(lane)] = old; });
  });
  EXPECT_EQ(counter[0], 32u);
  // Old values are the sequence 0..31 (warp-serialized).
  std::sort(olds.begin(), olds.end());
  for (uint32_t i = 0; i < 32; ++i) EXPECT_EQ(olds[i], i);
}

TEST_F(AtomicsTest, SameAddressConflictsSerialize) {
  auto counter = dev_.Alloc<uint32_t>(1, "c");
  const KernelStats s = RunWarp([&](Warp& w) {
    w.AtomicAdd(
        counter, [](int) { return 0; }, [](int) { return uint32_t{1}; },
        [](int, uint32_t) {});
  });
  EXPECT_EQ(s.atomic_operations, 32u);
  EXPECT_EQ(s.atomic_serializations, 31u);
}

TEST_F(AtomicsTest, DistinctAddressesDoNotSerialize) {
  auto counters = dev_.Alloc<uint32_t>(32, "c");
  const KernelStats s = RunWarp([&](Warp& w) {
    w.AtomicAdd(
        counters, [](int lane) { return lane; },
        [](int) { return uint32_t{1}; }, [](int, uint32_t) {});
  });
  EXPECT_EQ(s.atomic_operations, 32u);
  EXPECT_EQ(s.atomic_serializations, 0u);
}

TEST_F(AtomicsTest, AtomicMinFloatKeepsMinimum) {
  auto cell = dev_.Alloc<float>(1, "c");
  cell[0] = 100.0f;
  RunWarp([&](Warp& w) {
    w.AtomicMinFloat(cell, [](int) { return 0; }, [](int lane) {
      return static_cast<float>(lane + 5);
    });
  });
  EXPECT_FLOAT_EQ(cell[0], 5.0f);
}

TEST_F(AtomicsTest, AtomicMaxFloatKeepsMaximum) {
  auto cell = dev_.Alloc<float>(1, "c");
  RunWarp([&](Warp& w) {
    w.AtomicMaxFloat(cell, [](int) { return 0; }, [](int lane) {
      return static_cast<float>(lane);
    });
  });
  EXPECT_FLOAT_EQ(cell[0], 31.0f);
}

TEST_F(AtomicsTest, AtomicMinU64PackedArgmin) {
  auto cell = dev_.Alloc<uint64_t>(1, "c");
  cell[0] = ~uint64_t{0};
  RunWarp([&](Warp& w) {
    w.AtomicMin(cell, [](int) { return 0; }, [](int lane) {
      // Key = (value << 32) | lane; lane 7 has the smallest value.
      const uint64_t value = static_cast<uint64_t>((lane * 13) % 29);
      return (value << 32) | static_cast<uint64_t>(lane);
    });
  });
  // lane 9: (9*13)%29 = 117%29 = 1; lane 0 gives 0 -> smallest.
  EXPECT_EQ(cell[0] >> 32, 0u);
  EXPECT_EQ(cell[0] & 0xffffffffu, 0u);
}

TEST_F(AtomicsTest, MaskedAtomicOnlyActiveLanes) {
  auto counter = dev_.Alloc<uint32_t>(1, "c");
  RunWarp([&](Warp& w) {
    const LaneMask low = w.Ballot([](int lane) { return lane < 4; });
    w.If(low, [&] {
      w.AtomicAdd(
          counter, [](int) { return 0; }, [](int) { return uint32_t{1}; },
          [](int, uint32_t) {});
    });
  });
  EXPECT_EQ(counter[0], 4u);
}

}  // namespace
}  // namespace sweetknn::gpusim
