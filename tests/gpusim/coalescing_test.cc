#include "gpusim/device.h"
#include "gpusim/warp.h"
#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

/// Device with a huge cold cache so DRAM counts equal transaction counts
/// unless a test wants hits.
class CoalescingTest : public ::testing::Test {
 protected:
  CoalescingTest() : dev_(DeviceSpec::TeslaK20c()) {}

  /// Launches a single full warp running `body`.
  template <typename F>
  KernelStats RunWarp(F&& body) {
    const LaunchRecord& rec =
        dev_.Launch(KernelMeta{"test", 32, 0}, LaunchConfig{1, 32},
                    [&](Warp& w) { body(w); });
    return rec.stats;
  }

  Device dev_;
};

TEST_F(CoalescingTest, BroadcastLoadIsOneTransaction) {
  auto buf = dev_.Alloc<float>(1024, "buf");
  const KernelStats s = RunWarp([&](Warp& w) {
    w.Load(buf, [](int) { return 0; }, [](int, float) {});
  });
  EXPECT_EQ(s.global_transactions, 1u);
  EXPECT_EQ(s.global_load_instructions, 1u);
}

TEST_F(CoalescingTest, ConsecutiveFloatsCoalesceToOneSegment) {
  auto buf = dev_.Alloc<float>(1024, "buf");
  // 32 x 4B = 128B = exactly one segment (alloc is 256-aligned).
  const KernelStats s = RunWarp([&](Warp& w) {
    w.Load(buf, [](int lane) { return lane; }, [](int, float) {});
  });
  EXPECT_EQ(s.global_transactions, 1u);
}

TEST_F(CoalescingTest, Stride32FloatsIsFullyScattered) {
  auto buf = dev_.Alloc<float>(32 * 32, "buf");
  const KernelStats s = RunWarp([&](Warp& w) {
    w.Load(buf, [](int lane) { return lane * 32; }, [](int, float) {});
  });
  EXPECT_EQ(s.global_transactions, 32u);
}

TEST_F(CoalescingTest, Stride2FloatsTouchesTwoSegments) {
  auto buf = dev_.Alloc<float>(64, "buf");
  const KernelStats s = RunWarp([&](Warp& w) {
    w.Load(buf, [](int lane) { return lane * 2; }, [](int, float) {});
  });
  EXPECT_EQ(s.global_transactions, 2u);
}

TEST_F(CoalescingTest, StoreCountsLikeLoad) {
  auto buf = dev_.Alloc<float>(1024, "buf");
  const KernelStats s = RunWarp([&](Warp& w) {
    w.Store(buf, [](int lane) { return lane; }, [](int) { return 1.0f; });
  });
  EXPECT_EQ(s.global_transactions, 1u);
  EXPECT_EQ(s.global_store_instructions, 1u);
  EXPECT_EQ(buf[5], 1.0f);
}

TEST_F(CoalescingTest, LoadRangeChargesVectorizedInstructions) {
  auto buf = dev_.Alloc<float>(32 * 64, "buf");
  // Each lane reads 64 consecutive floats with float4 loads.
  const KernelStats s = RunWarp([&](Warp& w) {
    w.LoadRange(buf, [](int lane) { return lane * 64; }, 64, 4,
                [](int, const float*) {});
  });
  EXPECT_EQ(s.global_load_instructions, 16u);  // 64 / 4.
  // 64 floats = 256B = 2 segments per lane, all disjoint.
  EXPECT_EQ(s.global_transactions, 64u);
}

TEST_F(CoalescingTest, LoadRangeScalarChargesPerElement) {
  auto buf = dev_.Alloc<float>(32 * 64, "buf");
  const KernelStats s = RunWarp([&](Warp& w) {
    w.LoadRange(buf, [](int lane) { return lane * 64; }, 64, 1,
                [](int, const float*) {});
  });
  EXPECT_EQ(s.global_load_instructions, 64u);
}

TEST_F(CoalescingTest, LoadRangeBroadcastSharesSegments) {
  auto buf = dev_.Alloc<float>(1024, "buf");
  // All lanes read the same 64-float row: segments are shared.
  const KernelStats s = RunWarp([&](Warp& w) {
    w.LoadRange(buf, [](int) { return 0; }, 64, 4, [](int, const float*) {});
  });
  EXPECT_EQ(s.global_transactions, 2u);
}

TEST_F(CoalescingTest, LoadStridedMultipliesFirstElementPattern) {
  // Column-major layout: 64 points x 8 dims, stride = 64.
  auto buf = dev_.Alloc<float>(64 * 8, "buf");
  const KernelStats s = RunWarp([&](Warp& w) {
    w.LoadStrided(buf, [](int lane) { return lane; }, 8, 64,
                  [](int, const float*) {});
  });
  EXPECT_EQ(s.global_load_instructions, 8u);
  // Lanes 0..31 consecutive -> 1 segment per dimension.
  EXPECT_EQ(s.global_transactions, 8u);
}

TEST_F(CoalescingTest, LoadStridedScatteredLanes) {
  auto buf = dev_.Alloc<float>(32 * 64 * 4, "buf");
  const KernelStats s = RunWarp([&](Warp& w) {
    // Lanes 64 apart: each lane's element is its own segment.
    w.LoadStrided(buf, [](int lane) { return lane * 64; }, 4, 2048,
                  [](int, const float*) {});
  });
  EXPECT_EQ(s.global_transactions, 32u * 4u);
}

TEST_F(CoalescingTest, StoreRangeWritesValues) {
  auto buf = dev_.Alloc<float>(32 * 4, "buf");
  RunWarp([&](Warp& w) {
    w.StoreRange(buf, [](int lane) { return lane * 4; }, 4, 4,
                 [](int lane, size_t j) {
                   return static_cast<float>(lane * 10 + static_cast<int>(j));
                 });
  });
  EXPECT_FLOAT_EQ(buf[0], 0.0f);
  EXPECT_FLOAT_EQ(buf[5 * 4 + 2], 52.0f);
}

TEST_F(CoalescingTest, CacheHitsReduceDramTraffic) {
  auto buf = dev_.Alloc<float>(32, "buf");
  const KernelStats first = RunWarp([&](Warp& w) {
    w.Load(buf, [](int lane) { return lane; }, [](int, float) {});
  });
  EXPECT_EQ(first.dram_transactions, 1u);  // Cold miss.
  const KernelStats second = RunWarp([&](Warp& w) {
    w.Load(buf, [](int lane) { return lane; }, [](int, float) {});
  });
  EXPECT_EQ(second.global_transactions, 1u);
  EXPECT_EQ(second.dram_transactions, 0u);  // L2 hit.
}

}  // namespace
}  // namespace sweetknn::gpusim
