#include "gpusim/memory.h"

#include "gpusim/device.h"
#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

DeviceSpec SmallSpec() {
  DeviceSpec spec = DeviceSpec::TeslaK20c();
  spec.global_mem_bytes = 1024 * 1024;  // 1 MiB.
  return spec;
}

TEST(DeviceMemoryTest, TracksUsage) {
  Device dev(SmallSpec());
  EXPECT_EQ(dev.used_bytes(), 0u);
  {
    auto buf = dev.Alloc<float>(1000, "a");
    // Rounded to 256-byte granularity: 4000 -> 4096.
    EXPECT_EQ(dev.used_bytes(), 4096u);
    EXPECT_EQ(buf.size(), 1000u);
  }
  EXPECT_EQ(dev.used_bytes(), 0u);  // Freed on destruction.
  EXPECT_EQ(dev.peak_used_bytes(), 4096u);
}

TEST(DeviceMemoryTest, AddressesAreAlignedAndDisjoint) {
  Device dev(SmallSpec());
  auto a = dev.Alloc<float>(10, "a");
  auto b = dev.Alloc<float>(10, "b");
  EXPECT_EQ(a.base_addr() % 256, 0u);
  EXPECT_EQ(b.base_addr() % 256, 0u);
  EXPECT_GE(b.base_addr(), a.base_addr() + 256);
}

TEST(DeviceMemoryTest, CanAllocateRespectsCapacity) {
  Device dev(SmallSpec());
  EXPECT_TRUE(dev.CanAllocate(1024 * 1024));
  auto buf = dev.Alloc<uint8_t>(512 * 1024, "half");
  EXPECT_TRUE(dev.CanAllocate(512 * 1024));
  EXPECT_FALSE(dev.CanAllocate(600 * 1024));
}

TEST(DeviceMemoryTest, MoveTransfersOwnership) {
  Device dev(SmallSpec());
  DeviceBuffer<float> a = dev.Alloc<float>(64, "a");
  a[3] = 9.0f;
  const uint64_t addr = a.base_addr();
  DeviceBuffer<float> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): intended.
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.base_addr(), addr);
  EXPECT_EQ(b[3], 9.0f);
  EXPECT_EQ(dev.used_bytes(), 256u);
}

TEST(DeviceMemoryTest, AddressOfIsElementwise) {
  Device dev(SmallSpec());
  auto buf = dev.Alloc<float>(16, "a");
  EXPECT_EQ(buf.AddressOf(4), buf.base_addr() + 16);
}

TEST(DeviceMemoryDeathTest, OutOfMemoryAborts) {
  Device dev(SmallSpec());
  EXPECT_DEATH(dev.Alloc<float>(10 * 1024 * 1024, "too big"),
               "out of memory");
}

TEST(TransferTest, CopiesChargeTime) {
  Device dev(SmallSpec());
  auto buf = dev.Alloc<float>(256, "a");
  std::vector<float> host(256, 2.0f);
  dev.CopyToDevice(&buf, host.data(), host.size());
  EXPECT_EQ(buf[100], 2.0f);
  const double after_h2d = dev.profile().transfer_time_s;
  EXPECT_GT(after_h2d, 0.0);
  std::vector<float> back(256);
  dev.CopyToHost(buf, back.data(), back.size());
  EXPECT_EQ(back[100], 2.0f);
  EXPECT_GT(dev.profile().transfer_time_s, after_h2d);
}

}  // namespace
}  // namespace sweetknn::gpusim
