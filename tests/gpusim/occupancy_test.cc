#include "gpusim/occupancy.h"

#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

const DeviceSpec kSpec = DeviceSpec::TeslaK20c();

TEST(OccupancyTest, LightKernelIsThreadLimited) {
  // 256 threads, 16 regs, no shared: 8 blocks fit by threads (2048/256).
  const Occupancy occ = ComputeOccupancy(kSpec, 256, 16, 0);
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_EQ(occ.warps_per_sm, 64);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(OccupancyTest, RegisterPressureLimits) {
  // 128 regs/thread * 256 threads = 32768 regs/block; 65536/32768 = 2.
  const Occupancy occ = ComputeOccupancy(kSpec, 256, 128, 0);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kRegisters);
  EXPECT_DOUBLE_EQ(occ.fraction, 2 * 8 / 64.0);
}

TEST(OccupancyTest, SharedMemoryLimits) {
  // 24 KiB shared per block -> 2 blocks per SM.
  const Occupancy occ = ComputeOccupancy(kSpec, 256, 16, 24 * 1024);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kSharedMemory);
}

TEST(OccupancyTest, BlockCountLimits) {
  // Tiny blocks: 2048/32 = 64 by threads, but max 16 blocks per SM.
  const Occupancy occ = ComputeOccupancy(kSpec, 32, 16, 0);
  EXPECT_EQ(occ.blocks_per_sm, 16);
  EXPECT_EQ(occ.warps_per_sm, 16);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.25);
}

TEST(OccupancyTest, OversizedSharedYieldsZero) {
  const Occupancy occ = ComputeOccupancy(kSpec, 256, 16, 49 * 1024);
  EXPECT_EQ(occ.blocks_per_sm, 0);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.0);
}

TEST(OccupancyTest, MoreRegistersNeverRaisesOccupancy) {
  double prev = 1.0;
  for (int regs = 16; regs <= 255; regs += 16) {
    const Occupancy occ = ComputeOccupancy(kSpec, 256, regs, 0);
    EXPECT_LE(occ.fraction, prev) << "regs=" << regs;
    prev = occ.fraction;
  }
}

TEST(OccupancyTest, WarpsCappedAtArchitecturalLimit) {
  const Occupancy occ = ComputeOccupancy(kSpec, 1024, 16, 0);
  EXPECT_LE(occ.warps_per_sm, kSpec.MaxWarpsPerSm());
}

}  // namespace
}  // namespace sweetknn::gpusim
