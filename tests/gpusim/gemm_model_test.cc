#include "gpusim/gemm_model.h"

#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

class GemmModelTest : public ::testing::Test {
 protected:
  GemmModelTest() : model_(DeviceSpec::TeslaK20c()) {}
  GemmModel model_;
};

TEST_F(GemmModelTest, EfficiencyBounded) {
  for (int64_t size : {32, 128, 1024, 8192}) {
    const double eff = model_.Efficiency(size, size, size);
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, GemmModel::kPeakEfficiency);
  }
}

TEST_F(GemmModelTest, LargeGemmApproachesPeakEfficiency) {
  EXPECT_NEAR(model_.Efficiency(8192, 8192, 8192),
              GemmModel::kPeakEfficiency, 0.01);
}

TEST_F(GemmModelTest, SmallGemmIsInefficient) {
  EXPECT_LT(model_.Efficiency(100, 100, 100), 0.05);
}

TEST_F(GemmModelTest, ShallowGemmIsInefficient) {
  // Tiny reduction depth can't amortize the prologue.
  EXPECT_LT(model_.Efficiency(4096, 4096, 4),
            0.2 * model_.Efficiency(4096, 4096, 256));
}

TEST_F(GemmModelTest, LargeGemmTimeNearRoofline) {
  const int64_t n = 4096;
  const double flops = 2.0 * n * n * n;
  const double ideal =
      flops / (DeviceSpec::TeslaK20c().peak_sp_flops *
               GemmModel::kPeakEfficiency);
  EXPECT_NEAR(model_.Time(n, n, n), ideal, ideal * 0.2);
}

TEST_F(GemmModelTest, TimeMonotonicInDepth) {
  double prev = 0.0;
  for (int64_t k : {16, 64, 256, 1024, 4096}) {
    const double t = model_.Time(1024, 1024, k);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_F(GemmModelTest, TinyGemmIsCappedBySerialBound) {
  // A 30x30x10000 GEMM must not cost more than the serial single-SM cap.
  const double t = model_.Time(30, 30, 10000);
  const DeviceSpec spec = DeviceSpec::TeslaK20c();
  const double flops = 2.0 * 30 * 30 * 10000;
  const double serial =
      flops / (spec.peak_sp_flops / spec.num_sms * 0.3) + 1e-3;
  EXPECT_LT(t, serial);
  EXPECT_LT(t, 1e-3);
}

TEST_F(GemmModelTest, MemoryBoundThinGemm) {
  // m=1 row: bytes dominate flops.
  const double t = model_.Time(1, 4096, 4096);
  const double bytes = 4.0 * (4096.0 + 4096.0 * 4096 + 4096);
  EXPECT_GE(t, bytes / DeviceSpec::TeslaK20c().mem_bandwidth_bytes_per_s);
}

}  // namespace
}  // namespace sweetknn::gpusim
