// Edge cases of the SIMT DSL: interactions of nested control flow,
// partial warps, and accounting invariants.

#include "gpusim/device.h"
#include "gpusim/warp.h"
#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

struct WarpFixture {
  KernelStats stats;
  Warp warp;
  explicit WarpFixture(LaneMask mask = kFullMask)
      : warp(&stats, 0, 256, 0, mask) {}
};

TEST(WarpEdgeTest, BallotOnPartialWarpIgnoresInactiveLanes) {
  WarpFixture f(/*mask=*/0x000000ff);
  const LaneMask all = f.warp.Ballot([](int) { return true; });
  EXPECT_EQ(all, 0x000000ffu);
}

TEST(WarpEdgeTest, IfElseInsideWhileWithBreak) {
  WarpFixture f;
  Reg<int> i;
  Reg<int> even_work;
  Reg<int> odd_work;
  f.warp.Op([&](int lane) {
    i[lane] = 0;
    even_work[lane] = 0;
    odd_work[lane] = 0;
  });
  f.warp.While(
      [&](int lane) { return i[lane] < 10; },
      [&] {
        const LaneMask even =
            f.warp.Ballot([](int lane) { return lane % 2 == 0; });
        f.warp.IfElse(
            even,
            [&] {
              // Even lanes break after 3 iterations.
              f.warp.BreakIf(
                  f.warp.Ballot([&](int lane) { return i[lane] >= 3; }));
              f.warp.Op([&](int lane) { ++even_work[lane]; });
            },
            [&] { f.warp.Op([&](int lane) { ++odd_work[lane]; }); });
        f.warp.Op([&](int lane) { ++i[lane]; });
      });
  for (int lane = 0; lane < 32; ++lane) {
    if (lane % 2 == 0) {
      EXPECT_EQ(even_work[lane], 3) << lane;
      EXPECT_EQ(i[lane], 3) << lane;
    } else {
      EXPECT_EQ(odd_work[lane], 10) << lane;
      EXPECT_EQ(i[lane], 10) << lane;
    }
  }
}

TEST(WarpEdgeTest, TripleNestedLoops) {
  WarpFixture f;
  Reg<int> total;
  Reg<int> a;
  f.warp.Op([&](int lane) { total[lane] = 0; });
  f.warp.Op([&](int lane) { a[lane] = 0; });
  f.warp.While(
      [&](int lane) { return a[lane] < 2; },
      [&] {
        Reg<int> b;
        f.warp.Op([&](int lane) { b[lane] = 0; });
        f.warp.While(
            [&](int lane) { return b[lane] < 3; },
            [&] {
              Reg<int> c;
              f.warp.Op([&](int lane) { c[lane] = 0; });
              f.warp.While(
                  [&](int lane) { return c[lane] < 4; },
                  [&] {
                    f.warp.Op([&](int lane) {
                      ++total[lane];
                      ++c[lane];
                    });
                  });
              f.warp.Op([&](int lane) { ++b[lane]; });
            });
        f.warp.Op([&](int lane) { ++a[lane]; });
      });
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(total[lane], 2 * 3 * 4);
  }
}

TEST(WarpEdgeTest, ActiveLaneOpsNeverExceedInstructionCapacity) {
  WarpFixture f;
  Reg<int> i;
  f.warp.Op([&](int lane) { i[lane] = 0; });
  f.warp.While([&](int lane) { return i[lane] <= lane; },
               [&] {
                 f.warp.BreakIf(f.warp.Ballot(
                     [](int lane) { return lane == 31; }));
                 f.warp.Op([&](int lane) { ++i[lane]; });
               });
  EXPECT_LE(f.stats.active_lane_ops, f.stats.warp_instructions * 32);
}

TEST(WarpEdgeTest, ContinueThenBreakInSameIteration) {
  WarpFixture f;
  Reg<int> i;
  Reg<int> late_work;
  f.warp.Op([&](int lane) {
    i[lane] = 0;
    late_work[lane] = 0;
  });
  f.warp.While(
      [&](int lane) { return i[lane] < 8; },
      [&] {
        f.warp.Op([&](int lane) { ++i[lane]; });
        // Lanes 0-7 skip the tail this iteration.
        f.warp.ContinueIf(f.warp.Ballot([](int lane) { return lane < 8; }));
        // Lanes 16+ leave the loop entirely once i reaches 4.
        f.warp.BreakIf(f.warp.Ballot(
            [&](int lane) { return lane >= 16 && i[lane] >= 4; }));
        f.warp.Op([&](int lane) { ++late_work[lane]; });
      });
  for (int lane = 0; lane < 32; ++lane) {
    if (lane < 8) {
      EXPECT_EQ(late_work[lane], 0) << lane;
      EXPECT_EQ(i[lane], 8) << lane;
    } else if (lane < 16) {
      EXPECT_EQ(late_work[lane], 8) << lane;
    } else {
      EXPECT_EQ(late_work[lane], 3) << lane;  // i = 1,2,3 survive the break.
      EXPECT_EQ(i[lane], 4) << lane;
    }
  }
}

TEST(WarpEdgeTest, LoadRangeOnPartialWarpCountsOnlyActiveLanes) {
  Device dev(DeviceSpec::TeslaK20c());
  auto buf = dev.Alloc<float>(32 * 16, "buf");
  const auto& rec =
      dev.Launch(KernelMeta{"t", 32, 0}, LaunchConfig{1, 8}, [&](Warp& w) {
        w.LoadRange(buf, [](int lane) { return lane * 16; }, 16, 4,
                    [](int, const float*) {});
      });
  // 8 lanes x 16 floats = 64 bytes... 16 floats = 64B -> shares segments:
  // lanes are 64B apart, so two lanes per 128B segment: 4 transactions.
  EXPECT_EQ(rec.stats.global_transactions, 4u);
}

TEST(WarpEdgeTest, DivergenceCountsAreMonotonicInNesting) {
  WarpFixture flat;
  flat.warp.If(flat.warp.Ballot([](int lane) { return lane < 16; }),
               [&] { flat.warp.Op([](int) {}); });
  WarpFixture nested;
  nested.warp.If(nested.warp.Ballot([](int lane) { return lane < 16; }),
                 [&] {
                   nested.warp.If(nested.warp.Ballot(
                                      [](int lane) { return lane < 8; }),
                                  [&] { nested.warp.Op([](int) {}); });
                 });
  EXPECT_GT(nested.stats.divergent_branches,
            flat.stats.divergent_branches);
}

TEST(WarpEdgeTest, WhileWithImmediatelyFalseCondition) {
  WarpFixture f;
  int bodies = 0;
  f.warp.While([](int) { return false; }, [&] { ++bodies; });
  EXPECT_EQ(bodies, 0);
  // The condition evaluation itself is one instruction.
  EXPECT_EQ(f.stats.warp_instructions, 1u);
}

TEST(WarpEdgeTest, StoreRangePartialTailRange) {
  Device dev(DeviceSpec::TeslaK20c());
  auto buf = dev.Alloc<float>(32 * 7, "buf");
  dev.Launch(KernelMeta{"t", 32, 0}, LaunchConfig{1, 32}, [&](Warp& w) {
    // 7 elements with width 4 -> 2 instructions per lane-range.
    w.StoreRange(buf, [](int lane) { return lane * 7; }, 7, 4,
                 [](int lane, size_t j) {
                   return static_cast<float>(lane + static_cast<int>(j));
                 });
  });
  EXPECT_FLOAT_EQ(buf[3 * 7 + 6], 9.0f);
  EXPECT_EQ(dev.profile().launches[0].stats.global_store_instructions, 2u);
}

}  // namespace
}  // namespace sweetknn::gpusim
