#include "gpusim/profile_report.h"

#include "gpusim/device.h"
#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

Profile MakeProfile() {
  Device dev(DeviceSpec::TeslaK20c());
  auto buf = dev.Alloc<float>(1024, "buf");
  dev.Launch(KernelMeta{"alpha", 32, 0}, LaunchConfig{4, 256}, [&](Warp& w) {
    w.Op([](int) {}, 100);
  });
  dev.Launch(KernelMeta{"alpha", 32, 0}, LaunchConfig{4, 256}, [&](Warp& w) {
    w.Op([](int) {}, 100);
  });
  dev.Launch(KernelMeta{"beta", 32, 0}, LaunchConfig{1, 32}, [&](Warp& w) {
    const LaneMask low = w.Ballot([](int lane) { return lane < 8; });
    w.If(low, [&] { w.Op([](int) {}); });
    w.Load(buf, [](int lane) { return lane; }, [](int, float) {});
  });
  dev.RecordAnalyticLaunch("gemm", 1e-3);
  return dev.profile();
}

TEST(ProfileReportTest, MergesLaunchesByName) {
  const auto rows = SummarizeProfile(MakeProfile());
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by descending time: the analytic 1 ms launch leads.
  EXPECT_EQ(rows[0].kernel_name, "gemm");
  EXPECT_TRUE(rows[0].analytic);
  const auto alpha = std::find_if(rows.begin(), rows.end(), [](auto& r) {
    return r.kernel_name == "alpha";
  });
  ASSERT_NE(alpha, rows.end());
  EXPECT_EQ(alpha->launches, 2);
  // 2 launches x 4 blocks x 8 warps x 100-cost op.
  EXPECT_EQ(alpha->warp_instructions, 2u * 4 * 8 * 100);
}

TEST(ProfileReportTest, SharesSumToOne) {
  const auto rows = SummarizeProfile(MakeProfile());
  double total_share = 0.0;
  for (const auto& row : rows) total_share += row.time_share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(ProfileReportTest, EfficiencyIsPerKernel) {
  const auto rows = SummarizeProfile(MakeProfile());
  const auto beta = std::find_if(rows.begin(), rows.end(), [](auto& r) {
    return r.kernel_name == "beta";
  });
  ASSERT_NE(beta, rows.end());
  // Ballot (32) + masked op (8) + load (32) over 3 instructions.
  EXPECT_NEAR(beta->warp_efficiency, (32.0 + 8.0 + 32.0) / 96.0, 1e-9);
}

TEST(ProfileReportTest, FormattedReportMentionsEveryKernel) {
  const std::string report = FormatProfileReport(MakeProfile());
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("gemm"), std::string::npos);
  EXPECT_NE(report.find("(model)"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(ProfileReportTest, EmptyProfile) {
  Profile empty;
  EXPECT_TRUE(SummarizeProfile(empty).empty());
  const std::string report = FormatProfileReport(empty);
  EXPECT_NE(report.find("kernel"), std::string::npos);
}

}  // namespace
}  // namespace sweetknn::gpusim
