// Determinism suite for the parallel execution engine: running a grid at
// 1, 2, or 8 host workers must produce bit-identical functional results
// and bit-identical LaunchRecords (instructions, transactions,
// dram_transactions, divergence, atomic serializations, simulated time).
#include <array>
#include <cstdint>
#include <vector>

#include "baseline/brute_force_cpu.h"
#include "baseline/ti_knn_cpu.h"
#include "common/rng.h"
#include "core/ti_knn_gpu.h"
#include "gpusim/device.h"
#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

constexpr std::array<int, 3> kWorkerCounts = {1, 2, 8};

void ExpectStatsEqual(const KernelStats& a, const KernelStats& b,
                      const std::string& kernel) {
  EXPECT_EQ(a.warp_instructions, b.warp_instructions) << kernel;
  EXPECT_EQ(a.active_lane_ops, b.active_lane_ops) << kernel;
  EXPECT_EQ(a.divergent_branches, b.divergent_branches) << kernel;
  EXPECT_EQ(a.global_transactions, b.global_transactions) << kernel;
  EXPECT_EQ(a.dram_transactions, b.dram_transactions) << kernel;
  EXPECT_EQ(a.global_load_instructions, b.global_load_instructions) << kernel;
  EXPECT_EQ(a.global_store_instructions, b.global_store_instructions)
      << kernel;
  EXPECT_EQ(a.atomic_operations, b.atomic_operations) << kernel;
  EXPECT_EQ(a.atomic_serializations, b.atomic_serializations) << kernel;
}

void ExpectProfilesEqual(const Profile& a, const Profile& b) {
  ASSERT_EQ(a.launches.size(), b.launches.size());
  for (size_t i = 0; i < a.launches.size(); ++i) {
    const LaunchRecord& ra = a.launches[i];
    const LaunchRecord& rb = b.launches[i];
    EXPECT_EQ(ra.kernel_name, rb.kernel_name);
    EXPECT_EQ(ra.grid_blocks, rb.grid_blocks);
    EXPECT_EQ(ra.block_threads, rb.block_threads);
    ExpectStatsEqual(ra.stats, rb.stats, ra.kernel_name);
    // Bitwise double equality: the cost model is a pure function of the
    // stats, so identical stats must give identical simulated time.
    EXPECT_EQ(ra.occupancy, rb.occupancy) << ra.kernel_name;
    EXPECT_EQ(ra.sim_time_s, rb.sim_time_s) << ra.kernel_name;
  }
  EXPECT_EQ(a.transfer_time_s, b.transfer_time_s);
}

void ExpectResultsEqual(const KnnResult& a, const KnnResult& b) {
  ASSERT_EQ(a.num_queries(), b.num_queries());
  ASSERT_EQ(a.k(), b.k());
  for (size_t q = 0; q < a.num_queries(); ++q) {
    for (int j = 0; j < a.k(); ++j) {
      EXPECT_EQ(a.row(q)[j].index, b.row(q)[j].index) << "q=" << q;
      EXPECT_EQ(a.row(q)[j].distance, b.row(q)[j].distance) << "q=" << q;
    }
  }
}

/// A grid whose blocks stress every order-sensitive part of the engine:
/// divergent control flow, coalesced and strided loads with heavy L2
/// reuse across blocks (so dram_transactions depend on the global access
/// order), and cross-block atomics of every flavor.
struct MicroRun {
  Profile profile;
  std::vector<uint32_t> histogram;
  std::vector<float> minmax;
  std::vector<float> out;
};

MicroRun RunMicroGrid(int workers) {
  Device dev(DeviceSpec::TeslaK20c());
  dev.set_execution_threads(workers);

  // 4 MB of floats: larger than the 1.5 MB L2, so blocks evict each
  // other's segments and the replay order is load-bearing.
  const size_t n = 1u << 20;
  std::vector<float> host_data(n);
  Rng rng(42);
  for (float& v : host_data) v = rng.NextFloat();
  DeviceBuffer<float> data = dev.Alloc<float>(n, "data");
  dev.CopyToDevice(&data, host_data.data(), n);

  const size_t hist_bins = 97;
  DeviceBuffer<uint32_t> hist = dev.Alloc<uint32_t>(hist_bins, "hist");
  for (size_t i = 0; i < hist_bins; ++i) hist[i] = 0;
  DeviceBuffer<float> minmax = dev.Alloc<float>(2, "minmax");
  minmax[0] = 1e30f;
  minmax[1] = -1e30f;

  const LaunchConfig cfg{64, 256};
  const size_t total = static_cast<size_t>(cfg.TotalThreads());
  DeviceBuffer<float> out = dev.Alloc<float>(total, "out");

  dev.Launch(KernelMeta{"micro_gather_diverge", 32, 0}, cfg, [&](Warp& w) {
    Reg<uint32_t> tid;
    w.Op([&](int lane) {
      tid[lane] = static_cast<uint32_t>(w.GlobalThreadId(lane));
    });
    Reg<float> acc;
    w.Op([&](int lane) { acc[lane] = 0.0f; });
    // Per-lane trip counts force divergent loop exits.
    Reg<uint32_t> trips;
    w.Op([&](int lane) { trips[lane] = 1 + tid[lane] % 5; });
    Reg<uint32_t> t;
    w.Op([&](int lane) { t[lane] = 0; });
    w.While([&](int lane) { return t[lane] < trips[lane]; }, [&] {
      Reg<float> v;
      // Scattered gather with heavy cross-block overlap.
      w.Load(data,
             [&](int lane) {
               return (static_cast<size_t>(tid[lane]) * 2654435761u +
                       t[lane] * 7919u) %
                      n;
             },
             [&](int lane, float x) { v[lane] = x; });
      w.If(w.Ballot([&](int lane) { return (tid[lane] & 1u) == 0; }),
           [&] { w.Op([&](int lane) { acc[lane] += v[lane]; }); });
      w.Op([&](int lane) { ++t[lane]; });
    });
    w.Store(out, [&](int lane) { return tid[lane]; },
            [&](int lane) { return acc[lane]; });
  });

  dev.Launch(KernelMeta{"micro_strided", 32, 0}, cfg, [&](Warp& w) {
    Reg<float> sum;
    w.Op([&](int lane) { sum[lane] = 0.0f; });
    // Column-major style strided read: 8 elements, 4096 apart.
    w.LoadStrided(data,
                  [&](int lane) {
                    return (static_cast<size_t>(w.GlobalThreadId(lane)) *
                            31u) %
                           (n - 8 * 4096);
                  },
                  /*count=*/8, /*stride=*/4096,
                  [&](int lane, const float* p) { sum[lane] += p[0]; });
    w.Op([](int) {});
  });

  dev.Launch(KernelMeta{"micro_atomics", 32, 0}, cfg, [&](Warp& w) {
    Reg<uint32_t> tid;
    w.Op([&](int lane) {
      tid[lane] = static_cast<uint32_t>(w.GlobalThreadId(lane));
    });
    // Cross-block histogram: every block hits the same 97 cells.
    w.AtomicAdd(hist, [&](int lane) { return tid[lane] % hist_bins; },
                [](int) { return uint32_t{1}; }, [](int, uint32_t) {});
    w.AtomicMinFloat(minmax, [](int) { return 0; },
                     [&](int lane) { return host_data[tid[lane]]; });
    w.AtomicMaxFloat(minmax, [](int) { return 1; },
                     [&](int lane) { return host_data[tid[lane]]; });
  });

  MicroRun run;
  run.profile = dev.profile();
  run.histogram.assign(hist_bins, 0);
  for (size_t i = 0; i < hist_bins; ++i) run.histogram[i] = hist[i];
  run.minmax = {minmax[0], minmax[1]};
  run.out.resize(total);
  dev.CopyToHost(out, run.out.data(), total);
  return run;
}

TEST(ParallelLaunch, MicroGridIsWorkerCountInvariant) {
  const MicroRun serial = RunMicroGrid(1);
  // Sanity: the workload actually exercises cache pressure, divergence,
  // and atomic conflicts.
  const KernelStats agg = serial.profile.AggregateStats();
  EXPECT_GT(agg.dram_transactions, 0u);
  EXPECT_LT(agg.dram_transactions, agg.global_transactions);
  EXPECT_GT(agg.divergent_branches, 0u);
  EXPECT_GT(agg.atomic_serializations, 0u);
  for (const int workers : kWorkerCounts) {
    SCOPED_TRACE(workers);
    const MicroRun run = RunMicroGrid(workers);
    ExpectProfilesEqual(serial.profile, run.profile);
    EXPECT_EQ(serial.histogram, run.histogram);
    EXPECT_EQ(serial.minmax, run.minmax);
    EXPECT_EQ(serial.out, run.out);
  }
}

TEST(ParallelLaunch, HostSerialMetaForcesLegacyPath) {
  // A deliberately order-dependent kernel (fetch-add slot reservation)
  // marked host_serial must give the serial slot assignment at any
  // worker count.
  auto run = [](int workers) {
    Device dev(DeviceSpec::TeslaK20c());
    dev.set_execution_threads(workers);
    const size_t n = 4096;
    DeviceBuffer<uint32_t> cursor = dev.Alloc<uint32_t>(1, "cursor");
    cursor[0] = 0;
    DeviceBuffer<uint32_t> slots = dev.Alloc<uint32_t>(n, "slots");
    KernelMeta meta{"reserve_slots", 24, 0};
    meta.host_serial = true;
    dev.Launch(meta, LaunchConfig::Cover(static_cast<int64_t>(n), 128),
               [&](Warp& w) {
      Reg<uint32_t> slot;
      w.AtomicAdd(cursor, [](int) { return 0; },
                  [](int) { return uint32_t{1}; },
                  [&](int lane, uint32_t old) { slot[lane] = old; });
      w.Store(slots,
              [&](int lane) { return w.GlobalThreadId(lane); },
              [&](int lane) { return slot[lane]; });
    });
    std::vector<uint32_t> out(n);
    dev.CopyToHost(slots, out.data(), n);
    return out;
  };
  const std::vector<uint32_t> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

// --- End-to-end: the real level-1/level-2 kernels --------------------------

HostMatrix RandomClusteredMatrix(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  HostMatrix out(n, dims);
  const int clusters = 9;
  for (size_t p = 0; p < n; ++p) {
    const uint64_t c = rng.NextBounded(clusters);
    for (size_t j = 0; j < dims; ++j) {
      out.at(p, j) = static_cast<float>(c) * 0.7f + rng.NextFloat() * 0.3f;
    }
  }
  return out;
}

struct EngineRun {
  KnnResult result{0, 1};
  uint64_t distance_calcs = 0;
  double sim_time_s = 0.0;
  Profile profile;
};

EngineRun RunEngine(const core::TiOptions& base, int workers,
                    const HostMatrix& query, const HostMatrix& target,
                    int k) {
  core::TiOptions options = base;
  options.sim_threads = workers;
  Device dev(DeviceSpec::TeslaK20c());
  core::TiKnnEngine engine(&dev, options);
  engine.Prepare(query, target);
  EngineRun run;
  core::KnnRunStats stats;
  run.result = engine.Run(k, &stats);
  run.distance_calcs = stats.distance_calcs;
  run.sim_time_s = stats.sim_time_s;
  run.profile = dev.profile();
  return run;
}

void ExpectEngineDeterministic(const core::TiOptions& options) {
  const HostMatrix target = RandomClusteredMatrix(700, 8, 1);
  const HostMatrix query = RandomClusteredMatrix(300, 8, 2);
  const int k = 10;
  const EngineRun serial = RunEngine(options, 1, query, target, k);
  for (const int workers : kWorkerCounts) {
    SCOPED_TRACE(workers);
    const EngineRun run = RunEngine(options, workers, query, target, k);
    ExpectResultsEqual(serial.result, run.result);
    EXPECT_EQ(serial.distance_calcs, run.distance_calcs);
    EXPECT_EQ(serial.sim_time_s, run.sim_time_s);
    ExpectProfilesEqual(serial.profile, run.profile);
  }
}

TEST(ParallelLaunch, SweetKnnAdaptiveIsWorkerCountInvariant) {
  ExpectEngineDeterministic(core::TiOptions{});
}

TEST(ParallelLaunch, BasicTiIsWorkerCountInvariant) {
  ExpectEngineDeterministic(core::TiOptions::BasicTi());
}

TEST(ParallelLaunch, MultiThreadPerQueryIsWorkerCountInvariant) {
  core::TiOptions options;
  options.threads_per_query_override = 4;  // exercises shared-theta slots
  options.filter_override = core::Level2Filter::kFull;
  ExpectEngineDeterministic(options);
}

TEST(ParallelLaunch, PartialFilterIsWorkerCountInvariant) {
  core::TiOptions options;
  options.filter_override = core::Level2Filter::kPartial;
  ExpectEngineDeterministic(options);
}

TEST(ParallelLaunch, CpuBaselinesAreThreadCountInvariant) {
  const HostMatrix target = RandomClusteredMatrix(500, 6, 3);
  const HostMatrix query = RandomClusteredMatrix(200, 6, 4);
  const int k = 5;
  const KnnResult bf1 = baseline::BruteForceCpu(query, target, k,
                                                core::Metric::kEuclidean, 1);
  baseline::TiCpuStats ti_stats1;
  const KnnResult ti1 =
      baseline::TiKnnCpu(query, target, k, 0, &ti_stats1, 7, 1);
  for (const int workers : kWorkerCounts) {
    SCOPED_TRACE(workers);
    ExpectResultsEqual(bf1, baseline::BruteForceCpu(
                                query, target, k, core::Metric::kEuclidean,
                                workers));
    baseline::TiCpuStats ti_stats;
    ExpectResultsEqual(
        ti1, baseline::TiKnnCpu(query, target, k, 0, &ti_stats, 7, workers));
    EXPECT_EQ(ti_stats1.distance_calcs, ti_stats.distance_calcs);
  }
}

}  // namespace
}  // namespace sweetknn::gpusim
