#include "gpusim/cost_model.h"

#include "gpusim/warp.h"
#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

LaunchRecord MakeRecord(int grid_blocks, int block_threads,
                        uint64_t instructions, uint64_t transactions,
                        uint64_t dram) {
  LaunchRecord rec;
  rec.kernel_name = "test";
  rec.grid_blocks = grid_blocks;
  rec.block_threads = block_threads;
  rec.regs_per_thread = 32;
  rec.shared_bytes_per_block = 0;
  rec.stats.warp_instructions = instructions;
  rec.stats.active_lane_ops = instructions * 32;
  rec.stats.global_transactions = transactions;
  rec.stats.dram_transactions = dram;
  return rec;
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : model_(DeviceSpec::TeslaK20c()) {}
  CostModel model_;
};

TEST_F(CostModelTest, MoreInstructionsTakeLonger) {
  LaunchRecord small = MakeRecord(1000, 256, 1'000'000, 0, 0);
  LaunchRecord large = MakeRecord(1000, 256, 10'000'000, 0, 0);
  model_.Finalize(&small);
  model_.Finalize(&large);
  EXPECT_GT(large.sim_time_s, small.sim_time_s);
  // Compute-bound: 10x the instructions ~ 10x time minus launch overhead.
  EXPECT_NEAR((large.sim_time_s - model_.spec().kernel_launch_overhead_s) /
                  (small.sim_time_s - model_.spec().kernel_launch_overhead_s),
              10.0, 0.5);
}

TEST_F(CostModelTest, SmallGridsExposeLatency) {
  // Same work, tiny grid vs saturating grid.
  LaunchRecord tiny = MakeRecord(1, 32, 1'000'000, 0, 0);
  LaunchRecord big = MakeRecord(1000, 256, 1'000'000, 0, 0);
  model_.Finalize(&tiny);
  model_.Finalize(&big);
  EXPECT_GT(tiny.sim_time_s, 5.0 * big.sim_time_s);
}

TEST_F(CostModelTest, DramBoundKernel) {
  // 1 GiB of DRAM traffic at 208 GB/s ~ 5.2 ms.
  const uint64_t transactions = (1ull << 30) / 128;
  LaunchRecord rec = MakeRecord(1000, 256, 1000, transactions, transactions);
  model_.Finalize(&rec);
  EXPECT_NEAR(rec.sim_time_s, 5.16e-3, 0.5e-3);
}

TEST_F(CostModelTest, CacheHitsAreCheaperThanDram) {
  const uint64_t transactions = (1ull << 30) / 128;
  LaunchRecord miss = MakeRecord(1000, 256, 1000, transactions, transactions);
  LaunchRecord hit = MakeRecord(1000, 256, 1000, transactions, 0);
  model_.Finalize(&miss);
  model_.Finalize(&hit);
  EXPECT_LT(hit.sim_time_s, miss.sim_time_s);
  EXPECT_GT(hit.sim_time_s, 1e-4);  // Still bounded by L2 bandwidth.
}

TEST_F(CostModelTest, LaunchOverheadIsFloor) {
  LaunchRecord rec = MakeRecord(1, 32, 0, 0, 0);
  model_.Finalize(&rec);
  EXPECT_GE(rec.sim_time_s, model_.spec().kernel_launch_overhead_s);
}

TEST_F(CostModelTest, OccupancyIsRecorded) {
  LaunchRecord rec = MakeRecord(1000, 256, 1000, 0, 0);
  model_.Finalize(&rec);
  EXPECT_GT(rec.occupancy, 0.9);
  LaunchRecord heavy = MakeRecord(1000, 256, 1000, 0, 0);
  heavy.regs_per_thread = 128;
  model_.Finalize(&heavy);
  EXPECT_LT(heavy.occupancy, rec.occupancy);
}

TEST_F(CostModelTest, AtomicsAddTime) {
  LaunchRecord rec = MakeRecord(1000, 256, 1000, 0, 0);
  rec.stats.atomic_operations = 10'000'000;
  rec.stats.atomic_serializations = 10'000'000;
  model_.Finalize(&rec);
  LaunchRecord base = MakeRecord(1000, 256, 1000, 0, 0);
  model_.Finalize(&base);
  EXPECT_GT(rec.sim_time_s, base.sim_time_s);
}

TEST_F(CostModelTest, TransferTimeMatchesPcieBandwidth) {
  const double t = model_.TransferTime(6ull * 1000 * 1000 * 1000);
  EXPECT_NEAR(t, 1.0, 0.01);
}

}  // namespace
}  // namespace sweetknn::gpusim
