#include "gpusim/device.h"

#include <set>

#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

TEST(DeviceTest, LaunchCoversEveryThreadExactlyOnce) {
  Device dev(DeviceSpec::TeslaK20c());
  std::set<int> seen;
  const LaunchConfig cfg = LaunchConfig::Cover(1000, 128);
  EXPECT_EQ(cfg.grid_blocks, 8);
  dev.Launch(KernelMeta{"cover", 32, 0}, cfg, [&](Warp& w) {
    w.Op([&](int lane) {
      const int tid = w.GlobalThreadId(lane);
      EXPECT_TRUE(seen.insert(tid).second) << "duplicate thread " << tid;
    });
  });
  EXPECT_EQ(seen.size(), 1024u);  // 8 blocks x 128 threads.
  EXPECT_EQ(*seen.rbegin(), 1023);
}

TEST(DeviceTest, PartialTrailingWarpIsMasked) {
  Device dev(DeviceSpec::TeslaK20c());
  int total_lanes = 0;
  dev.Launch(KernelMeta{"partial", 32, 0}, LaunchConfig{1, 40},
             [&](Warp& w) { total_lanes += w.ActiveCount(); });
  EXPECT_EQ(total_lanes, 40);
}

TEST(DeviceTest, ProfileRecordsLaunches) {
  Device dev(DeviceSpec::TeslaK20c());
  dev.Launch(KernelMeta{"a", 32, 0}, LaunchConfig{1, 32},
             [](Warp& w) { w.Op([](int) {}); });
  dev.Launch(KernelMeta{"b", 32, 0}, LaunchConfig{1, 32},
             [](Warp& w) { w.Op([](int) {}); });
  ASSERT_EQ(dev.profile().launches.size(), 2u);
  EXPECT_EQ(dev.profile().launches[0].kernel_name, "a");
  EXPECT_EQ(dev.profile().launches[1].kernel_name, "b");
  EXPECT_GT(dev.SimTime(), 0.0);
}

TEST(DeviceTest, AnalyticLaunchContributesTime) {
  Device dev(DeviceSpec::TeslaK20c());
  dev.RecordAnalyticLaunch("gemm", 1.5e-3);
  EXPECT_DOUBLE_EQ(dev.profile().TotalKernelTime(), 1.5e-3);
  EXPECT_TRUE(dev.profile().launches[0].analytic);
  // Analytic launches are excluded from aggregate counters.
  EXPECT_EQ(dev.profile().AggregateStats().warp_instructions, 0u);
}

TEST(DeviceTest, ResetProfileClears) {
  Device dev(DeviceSpec::TeslaK20c());
  dev.RecordAnalyticLaunch("x", 1.0);
  dev.ResetProfile();
  EXPECT_TRUE(dev.profile().launches.empty());
  EXPECT_DOUBLE_EQ(dev.SimTime(), 0.0);
}

TEST(DeviceTest, StatsForKernelsMatching) {
  Device dev(DeviceSpec::TeslaK20c());
  dev.Launch(KernelMeta{"level2_full_filter", 32, 0}, LaunchConfig{1, 32},
             [](Warp& w) { w.Op([](int) {}); });
  dev.Launch(KernelMeta{"other", 32, 0}, LaunchConfig{1, 32},
             [](Warp& w) { w.Op([](int) {}, 5); });
  const KernelStats s = dev.profile().StatsForKernelsMatching("level2");
  EXPECT_EQ(s.warp_instructions, 1u);
}

TEST(DeviceTest, LaunchRejectsOversizedBlocks) {
  Device dev(DeviceSpec::TeslaK20c());
  EXPECT_DEATH(dev.Launch(KernelMeta{"big", 32, 0}, LaunchConfig{1, 2048},
                          [](Warp&) {}),
               "block_threads");
}

TEST(CacheSimTest, MissThenHit) {
  CacheSim cache(16);
  EXPECT_FALSE(cache.Access(100));
  EXPECT_TRUE(cache.Access(100));
}

TEST(CacheSimTest, ClearEvictsEverything) {
  CacheSim cache(16);
  cache.Access(1);
  cache.Clear();
  EXPECT_FALSE(cache.Access(1));
}

TEST(CacheSimTest, CapacityBoundsHitRate) {
  CacheSim cache(64);
  // Stream far more segments than capacity twice; second pass should
  // still mostly miss (working set exceeds capacity).
  int hits = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t seg = 0; seg < 10000; ++seg) {
      if (cache.Access(seg)) ++hits;
    }
  }
  EXPECT_LT(hits, 2000);
}

TEST(CacheSimTest, SmallWorkingSetMostlyHits) {
  CacheSim cache(1024);
  int hits = 0;
  for (int pass = 0; pass < 10; ++pass) {
    for (uint64_t seg = 0; seg < 64; ++seg) {
      if (cache.Access(seg)) ++hits;
    }
  }
  EXPECT_GT(hits, 500);
}

}  // namespace
}  // namespace sweetknn::gpusim
