#include "gpusim/warp.h"

#include <vector>

#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

/// Standalone warp over fresh stats, full mask unless specified.
struct WarpFixture {
  KernelStats stats;
  Warp warp;
  explicit WarpFixture(LaneMask mask = kFullMask)
      : warp(&stats, /*block_id=*/0, /*block_threads=*/256,
             /*warp_in_block=*/0, mask) {}
};

TEST(WarpTest, OpChargesOneInstructionAllLanes) {
  WarpFixture f;
  int calls = 0;
  f.warp.Op([&](int) { ++calls; });
  EXPECT_EQ(calls, 32);
  EXPECT_EQ(f.stats.warp_instructions, 1u);
  EXPECT_EQ(f.stats.active_lane_ops, 32u);
}

TEST(WarpTest, OpWithCostScalesCharges) {
  WarpFixture f;
  f.warp.Op([](int) {}, /*cost=*/10);
  EXPECT_EQ(f.stats.warp_instructions, 10u);
  EXPECT_EQ(f.stats.active_lane_ops, 320u);
}

TEST(WarpTest, PartialMaskOnlyRunsActiveLanes) {
  WarpFixture f(/*mask=*/0x0000000f);
  std::vector<int> lanes;
  f.warp.Op([&](int lane) { lanes.push_back(lane); });
  EXPECT_EQ(lanes, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(f.stats.active_lane_ops, 4u);
}

TEST(WarpTest, GlobalThreadIdGeometry) {
  KernelStats stats;
  Warp w(&stats, /*block_id=*/3, /*block_threads=*/128, /*warp_in_block=*/2,
         kFullMask);
  EXPECT_EQ(w.GlobalThreadId(0), 3 * 128 + 2 * 32);
  EXPECT_EQ(w.GlobalThreadId(31), 3 * 128 + 2 * 32 + 31);
  EXPECT_EQ(w.BlockThreadId(5), 2 * 32 + 5);
}

TEST(WarpTest, BallotEvaluatesPredicate) {
  WarpFixture f;
  const LaneMask even = f.warp.Ballot([](int lane) { return lane % 2 == 0; });
  EXPECT_EQ(even, 0x55555555u);
  EXPECT_EQ(f.stats.warp_instructions, 1u);
}

TEST(WarpTest, IfNarrowsMaskAndCountsDivergence) {
  WarpFixture f;
  const LaneMask low = f.warp.Ballot([](int lane) { return lane < 8; });
  int calls = 0;
  f.warp.If(low, [&] { f.warp.Op([&](int) { ++calls; }); });
  EXPECT_EQ(calls, 8);
  EXPECT_EQ(f.stats.divergent_branches, 1u);
  // Mask restored afterwards.
  calls = 0;
  f.warp.Op([&](int) { ++calls; });
  EXPECT_EQ(calls, 32);
}

TEST(WarpTest, IfAllLanesIsNotDivergent) {
  WarpFixture f;
  f.warp.If(kFullMask, [&] { f.warp.Op([](int) {}); });
  EXPECT_EQ(f.stats.divergent_branches, 0u);
}

TEST(WarpTest, IfNoLanesSkipsBody) {
  WarpFixture f;
  bool entered = false;
  f.warp.If(0, [&] { entered = true; });
  EXPECT_FALSE(entered);
}

TEST(WarpTest, IfElseRunsBothSidesSerially) {
  WarpFixture f;
  const LaneMask low = f.warp.Ballot([](int lane) { return lane < 10; });
  int then_calls = 0;
  int else_calls = 0;
  f.warp.IfElse(
      low, [&] { f.warp.Op([&](int) { ++then_calls; }); },
      [&] { f.warp.Op([&](int) { ++else_calls; }); });
  EXPECT_EQ(then_calls, 10);
  EXPECT_EQ(else_calls, 22);
  EXPECT_EQ(f.stats.divergent_branches, 1u);
}

TEST(WarpTest, WhileUniformTripCount) {
  WarpFixture f;
  Reg<int> i;
  f.warp.Op([&](int lane) { i[lane] = 0; });
  int iterations = 0;
  f.warp.While([&](int lane) { return i[lane] < 5; },
               [&] {
                 ++iterations;
                 f.warp.Op([&](int lane) { ++i[lane]; });
               });
  EXPECT_EQ(iterations, 5);
  EXPECT_EQ(f.stats.divergent_branches, 0u);
}

TEST(WarpTest, WhileUnevenTripsIdleFinishedLanes) {
  WarpFixture f;
  Reg<int> i;
  Reg<int> work;
  f.warp.Op([&](int lane) {
    i[lane] = 0;
    work[lane] = 0;
  });
  // Lane l iterates l+1 times; warp runs 32 iterations total.
  int iterations = 0;
  f.warp.While([&](int lane) { return i[lane] <= lane; },
               [&] {
                 ++iterations;
                 f.warp.Op([&](int lane) {
                   ++i[lane];
                   ++work[lane];
                 });
               });
  EXPECT_EQ(iterations, 32);
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(work[lane], lane + 1);
  }
  // Efficiency decays as lanes retire: divergence recorded.
  EXPECT_GT(f.stats.divergent_branches, 0u);
}

TEST(WarpTest, BreakIfStopsLanes) {
  WarpFixture f;
  Reg<int> i;
  f.warp.Op([&](int lane) { i[lane] = 0; });
  f.warp.While([&](int lane) { return i[lane] < 100; },
               [&] {
                 f.warp.BreakIf(
                     f.warp.Ballot([&](int lane) { return i[lane] >= lane; }));
                 f.warp.Op([&](int lane) { ++i[lane]; });
               });
  // Lane l breaks when i == l, so the final value of i is l.
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(i[lane], lane);
  }
}

TEST(WarpTest, ContinueIfSkipsRestOfIteration) {
  WarpFixture f;
  Reg<int> i;
  Reg<int> executed;
  f.warp.Op([&](int lane) {
    i[lane] = 0;
    executed[lane] = 0;
  });
  f.warp.While([&](int lane) { return i[lane] < 4; },
               [&] {
                 f.warp.Op([&](int lane) { ++i[lane]; });
                 // Skip even lanes for the tail of the body.
                 f.warp.ContinueIf(
                     f.warp.Ballot([](int lane) { return lane % 2 == 0; }));
                 f.warp.Op([&](int lane) { ++executed[lane]; });
               });
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(executed[lane], lane % 2 == 0 ? 0 : 4) << "lane " << lane;
    EXPECT_EQ(i[lane], 4);  // Continue rejoins at the next iteration.
  }
}

TEST(WarpTest, NestedWhileBreakAffectsInnerOnly) {
  WarpFixture f;
  Reg<int> outer;
  Reg<int> inner_total;
  f.warp.Op([&](int lane) {
    outer[lane] = 0;
    inner_total[lane] = 0;
  });
  f.warp.While([&](int lane) { return outer[lane] < 3; },
               [&] {
                 Reg<int> j;
                 f.warp.Op([&](int lane) { j[lane] = 0; });
                 f.warp.While([&](int lane) { return j[lane] < 10; },
                              [&] {
                                f.warp.BreakIf(f.warp.Ballot(
                                    [&](int lane) { return j[lane] >= 2; }));
                                f.warp.Op([&](int lane) {
                                  ++j[lane];
                                  ++inner_total[lane];
                                });
                              });
                 f.warp.Op([&](int lane) { ++outer[lane]; });
               });
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(outer[lane], 3);
    EXPECT_EQ(inner_total[lane], 6);  // 2 inner iterations x 3 outer.
  }
}

TEST(WarpTest, BreakInsideIfExitsLoop) {
  WarpFixture f;
  Reg<int> i;
  f.warp.Op([&](int lane) { i[lane] = 0; });
  f.warp.While([&](int lane) { return i[lane] < 100; },
               [&] {
                 const LaneMask past = f.warp.Ballot(
                     [&](int lane) { return i[lane] >= 7; });
                 f.warp.If(past, [&] { f.warp.BreakIf(f.warp.active()); });
                 f.warp.Op([&](int lane) { ++i[lane]; });
               });
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(i[lane], 7);
  }
}

TEST(WarpTest, ChargeManualAccumulates) {
  WarpFixture f;
  f.warp.ChargeManual(100, 1600);
  EXPECT_EQ(f.stats.warp_instructions, 100u);
  EXPECT_EQ(f.stats.active_lane_ops, 1600u);
}

TEST(WarpTest, ChargeMemoryDefaultsAllDram) {
  WarpFixture f;
  f.warp.ChargeMemory(10, 4, 6);
  EXPECT_EQ(f.stats.global_transactions, 10u);
  EXPECT_EQ(f.stats.dram_transactions, 10u);
  EXPECT_EQ(f.stats.global_load_instructions, 4u);
  EXPECT_EQ(f.stats.global_store_instructions, 6u);
}

TEST(WarpTest, ChargeMemoryWithCachedShare) {
  WarpFixture f;
  f.warp.ChargeMemory(10, 4, 6, /*dram_transactions=*/3);
  EXPECT_EQ(f.stats.global_transactions, 10u);
  EXPECT_EQ(f.stats.dram_transactions, 3u);
}

TEST(WarpEfficiencyTest, FullWarpIsFullyEfficient) {
  WarpFixture f;
  f.warp.Op([](int) {});
  EXPECT_DOUBLE_EQ(f.stats.WarpEfficiency(), 1.0);
}

TEST(WarpEfficiencyTest, DivergedHalvesEfficiency) {
  WarpFixture f;
  const LaneMask low = f.warp.Ballot([](int lane) { return lane < 16; });
  f.warp.If(low, [&] { f.warp.Op([](int) {}); });
  // Two instructions: ballot (32 active) + masked op (16 active).
  EXPECT_DOUBLE_EQ(f.stats.WarpEfficiency(), (32.0 + 16.0) / 64.0);
}

}  // namespace
}  // namespace sweetknn::gpusim
