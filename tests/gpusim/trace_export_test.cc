#include "gpusim/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "gpusim/device.h"
#include "gtest/gtest.h"

namespace sweetknn::gpusim {
namespace {

Profile MakeProfile() {
  Device dev(DeviceSpec::TeslaK20c());
  dev.Launch(KernelMeta{"ker\"nel", 32, 0}, LaunchConfig{2, 64},
             [](Warp& w) { w.Op([](int) {}, 50); });
  dev.RecordAnalyticLaunch("gemm", 2e-3);
  dev.ChargeTransfer(1024);
  return dev.profile();
}

TEST(TraceExportTest, ProducesValidJsonStructure) {
  const std::string json = ProfileToChromeTrace(MakeProfile());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("gemm"), std::string::npos);
  EXPECT_NE(json.find("pcie transfers"), std::string::npos);
  // The quote in the kernel name is escaped.
  EXPECT_NE(json.find("ker\\\"nel"), std::string::npos);
  // Balanced braces (crude structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceExportTest, EventsArePlacedBackToBack) {
  const std::string json = ProfileToChromeTrace(MakeProfile());
  // The second event starts where the first ends: its ts must be > 0.
  const size_t second = json.find("gemm");
  ASSERT_NE(second, std::string::npos);
  const size_t ts_pos = json.find("\"ts\":", second - 200);
  ASSERT_NE(ts_pos, std::string::npos);
}

TEST(TraceExportTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/trace.json";
  ASSERT_TRUE(WriteChromeTrace(MakeProfile(), path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExportTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteChromeTrace(MakeProfile(), "/no/such/dir/x.json").ok());
}

TEST(DeviceSpecPresetsTest, PresetsDiffer) {
  const DeviceSpec k20 = DeviceSpec::TeslaK20c();
  const DeviceSpec k40 = DeviceSpec::TeslaK40();
  const DeviceSpec small = DeviceSpec::GtxSmall();
  EXPECT_GT(k40.num_sms, k20.num_sms);
  EXPECT_GT(k40.peak_sp_flops, k20.peak_sp_flops);
  EXPECT_LT(small.num_sms, k20.num_sms);
  EXPECT_LT(small.mem_bandwidth_bytes_per_s,
            k20.mem_bandwidth_bytes_per_s);
}

}  // namespace
}  // namespace sweetknn::gpusim
