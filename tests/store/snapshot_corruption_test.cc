// Corruption fuzzing of the snapshot format: every single-bit flip and
// every truncation of a valid snapshot must come back as a clean Status
// error — never a crash, never a silently-accepted wrong index. Labeled
// `slow` in ctest (it opens the file tens of thousands of times).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/sweet_knn.h"
#include "gtest/gtest.h"
#include "store/snapshot.h"

namespace sweetknn::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Bytes of a freshly built, valid snapshot. With `mutate`, the index
/// first takes inserts and removes, so the file is format v2 with
/// non-empty delta and tombstone payloads in the mutation section.
std::string BuildSnapshotBytes(const std::string& path,
                               bool mutate = false) {
  Rng rng(21);
  HostMatrix target(90, 4);
  for (size_t i = 0; i < target.rows(); ++i) {
    for (size_t j = 0; j < target.cols(); ++j) {
      target.at(i, j) = static_cast<float>(rng.NextDouble() * 4.0 - 2.0);
    }
  }
  SweetKnnIndex index(target);
  if (mutate) {
    for (int i = 0; i < 5; ++i) {
      std::vector<float> p(target.cols());
      for (float& x : p) x = rng.NextFloat();
      index.Insert(p);
    }
    EXPECT_TRUE(index.Remove(8));
    EXPECT_TRUE(index.Remove(31));
  }
  EXPECT_TRUE(index.Save(path, "corruption-fuzz").ok());
  return ReadFile(path);
}

/// Rejection must be a recoverable Status, with a non-empty message.
void ExpectCleanError(const std::string& path, const char* what) {
  const Result<IndexSnapshot> loaded = LoadIndexSnapshot(path);
  ASSERT_FALSE(loaded.ok()) << "accepted a corrupted snapshot (" << what
                            << ")";
  EXPECT_TRUE(loaded.status().code() == StatusCode::kIoError ||
              loaded.status().code() == StatusCode::kInvalidArgument)
      << what << ": " << loaded.status().ToString();
  EXPECT_FALSE(loaded.status().message().empty()) << what;
}

TEST(SnapshotCorruptionTest, EverySingleBitFlipIsRejected) {
  const std::string path = TempPath("bitflip.sksnap");
  const std::string good = BuildSnapshotBytes(path);
  ASSERT_FALSE(good.empty());
  ASSERT_TRUE(LoadIndexSnapshot(path).ok());

  // One deterministic pseudo-random bit per byte position covers every
  // byte of the file; CRC32 detects any single-bit error, so all of
  // these must fail (the whole-file checksum protects even the section
  // CRCs and the checksum field itself).
  Rng rng(42);
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(
        static_cast<unsigned char>(bad[pos]) ^
        static_cast<unsigned char>(1u << rng.NextBounded(8)));
    WriteFile(path, bad);
    ExpectCleanError(path,
                     ("bit flip at byte " + std::to_string(pos)).c_str());
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, SeededRandomCorruptionsAreRejected) {
  const std::string path = TempPath("random.sksnap");
  const std::string good = BuildSnapshotBytes(path);
  ASSERT_FALSE(good.empty());

  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bad = good;
    // Corrupt 1-4 bytes at random positions with random values.
    const int edits = 1 + static_cast<int>(rng.NextBounded(4));
    bool changed = false;
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.NextBounded(bad.size());
      const char value = static_cast<char>(rng.NextBounded(256));
      changed |= bad[pos] != value;
      bad[pos] = value;
    }
    if (!changed) continue;  // wrote the same bytes back
    WriteFile(path, bad);
    ExpectCleanError(path, ("random corruption trial " +
                            std::to_string(trial)).c_str());
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, EveryTruncationIsRejected) {
  const std::string path = TempPath("trunc.sksnap");
  const std::string good = BuildSnapshotBytes(path);
  ASSERT_FALSE(good.empty());

  for (size_t len = 0; len < good.size(); ++len) {
    WriteFile(path, good.substr(0, len));
    ExpectCleanError(path, ("truncation to " + std::to_string(len) +
                            " bytes").c_str());
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, V2MutationSectionBitFlipsAreRejected) {
  // Same every-byte sweep over a format-v2 file: the mutation section
  // (id map, delta points, tombstones, next_id) enjoys the same CRC
  // armor as the v1 sections.
  const std::string path = TempPath("bitflip_v2.sksnap");
  const std::string good = BuildSnapshotBytes(path, /*mutate=*/true);
  ASSERT_FALSE(good.empty());
  uint32_t version = 0;
  std::memcpy(&version, good.data() + sizeof(kSnapshotMagic),
              sizeof(version));
  ASSERT_EQ(version, kSnapshotFormatV2);
  ASSERT_TRUE(LoadIndexSnapshot(path).ok());

  Rng rng(43);
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(
        static_cast<unsigned char>(bad[pos]) ^
        static_cast<unsigned char>(1u << rng.NextBounded(8)));
    WriteFile(path, bad);
    ExpectCleanError(path,
                     ("v2 bit flip at byte " + std::to_string(pos)).c_str());
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, V2EveryTruncationIsRejected) {
  const std::string path = TempPath("trunc_v2.sksnap");
  const std::string good = BuildSnapshotBytes(path, /*mutate=*/true);
  ASSERT_FALSE(good.empty());
  for (size_t len = 0; len < good.size(); ++len) {
    WriteFile(path, good.substr(0, len));
    ExpectCleanError(path, ("v2 truncation to " + std::to_string(len) +
                            " bytes").c_str());
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, MutationSectionInV1FileIsRejected) {
  // A file claiming format v1 must not smuggle in a v2-only section id:
  // the reader bounds section ids by the file's own version.
  const std::string path = TempPath("v1_smuggle.sksnap");
  {
    SnapshotWriter writer(path, kSnapshotFormatV1);
    ASSERT_TRUE(writer.WriteSection(kSectionMeta, "m").ok());
    ASSERT_TRUE(writer.WriteSection(kSectionMutation, "overlay").ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  const Result<SnapshotReader> reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("section"), std::string::npos)
      << reader.status().message();
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, GrownLengthFieldsDoNotOverAllocate) {
  // Corrupting a section length to a huge value must fail on the bounds
  // check, not by attempting a multi-gigabyte allocation. Section
  // headers start after [magic][version][endian guard]; the length field
  // sits 4 bytes into the header.
  const std::string path = TempPath("length.sksnap");
  const std::string good = BuildSnapshotBytes(path);
  const size_t len_offset = sizeof(kSnapshotMagic) + 2 * sizeof(uint32_t) +
                            sizeof(uint32_t);
  std::string bad = good;
  const uint64_t huge = ~uint64_t{0} / 2;
  ASSERT_LE(len_offset + sizeof(huge), bad.size());
  std::memcpy(bad.data() + len_offset, &huge, sizeof(huge));
  WriteFile(path, bad);
  ExpectCleanError(path, "section length grown to 2^63");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sweetknn::store
