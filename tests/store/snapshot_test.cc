#include "store/snapshot.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/sweet_knn.h"
#include "gtest/gtest.h"

namespace sweetknn::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

HostMatrix RandomMatrix(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  HostMatrix m(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) {
      m.at(i, j) = static_cast<float>(rng.NextDouble() * 10.0 - 5.0);
    }
  }
  return m;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A freshly built single-shard index snapshot, produced through the real
/// build path (SweetKnnIndex::Save).
IndexSnapshot BuildSnapshot(const std::string& path, size_t n = 80,
                            size_t dims = 6, uint64_t seed = 7) {
  const HostMatrix target = RandomMatrix(n, dims, seed);
  SweetKnnIndex index(target);
  EXPECT_TRUE(index.Save(path, "unit-test").ok());
  Result<IndexSnapshot> snap = LoadIndexSnapshot(path);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return std::move(snap).value();
}

TEST(SnapshotWriterReaderTest, SectionRoundTrip) {
  const std::string path = TempPath("sections.sksnap");
  {
    SnapshotWriter writer(path);
    ASSERT_TRUE(writer.WriteSection(kSectionMeta, "hello").ok());
    ASSERT_TRUE(writer.WriteSection(kSectionTarget, std::string()).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().format_version(), kSnapshotFormatVersion);
  ASSERT_EQ(reader.value().sections().size(), 2u);
  ASSERT_NE(reader.value().Section(kSectionMeta), nullptr);
  EXPECT_EQ(*reader.value().Section(kSectionMeta), "hello");
  ASSERT_NE(reader.value().Section(kSectionTarget), nullptr);
  EXPECT_TRUE(reader.value().Section(kSectionTarget)->empty());
  EXPECT_EQ(reader.value().Section(kSectionClustering), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotWriterReaderTest, EndMarkerIdIsReserved) {
  const std::string path = TempPath("reserved.sksnap");
  SnapshotWriter writer(path);
  EXPECT_FALSE(writer.WriteSection(kSectionEnd, "x").ok());
  std::remove(path.c_str());
}

TEST(SnapshotWriterReaderTest, MissingFileIsDescriptiveError) {
  Result<SnapshotReader> reader =
      SnapshotReader::Open("/nonexistent/no.sksnap");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

TEST(SnapshotWriterReaderTest, BadMagicRejected) {
  const std::string path = TempPath("magic.sksnap");
  WriteFile(path, "NOTASNAP-------------------------");
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos)
      << reader.status().message();
  std::remove(path.c_str());
}

TEST(SnapshotWriterReaderTest, VersionSkewRejected) {
  const std::string path = TempPath("version.sksnap");
  {
    SnapshotWriter writer(path);
    ASSERT_TRUE(writer.WriteSection(kSectionMeta, "x").ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  std::string bytes = ReadFile(path);
  const uint32_t future = kSnapshotFormatVersion + 1;
  std::memcpy(bytes.data() + sizeof(kSnapshotMagic), &future,
              sizeof(future));
  WriteFile(path, bytes);
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("version skew"),
            std::string::npos)
      << reader.status().message();
  std::remove(path.c_str());
}

TEST(SnapshotWriterReaderTest, TrailingGarbageRejected) {
  const std::string path = TempPath("trailing.sksnap");
  {
    SnapshotWriter writer(path);
    ASSERT_TRUE(writer.WriteSection(kSectionMeta, "x").ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  WriteFile(path, ReadFile(path) + "junk");
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("trailing"), std::string::npos)
      << reader.status().message();
  std::remove(path.c_str());
}

TEST(SnapshotWriterReaderTest, EveryTruncationRejected) {
  const std::string path = TempPath("trunc.sksnap");
  {
    SnapshotWriter writer(path);
    ASSERT_TRUE(writer.WriteSection(kSectionMeta, "payload").ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  const std::string bytes = ReadFile(path);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFile(path, bytes.substr(0, len));
    Result<SnapshotReader> reader = SnapshotReader::Open(path);
    EXPECT_FALSE(reader.ok()) << "accepted a " << len << "-byte prefix of a "
                              << bytes.size() << "-byte snapshot";
  }
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, SaveLoadPreservesEverything) {
  const std::string path = TempPath("index.sksnap");
  const HostMatrix target = RandomMatrix(120, 5, 3);
  SweetKnnIndex index(target);
  ASSERT_TRUE(index.Save(path, "dataset-name").ok());

  Result<IndexSnapshot> snap = LoadIndexSnapshot(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const IndexSnapshot& s = snap.value();
  EXPECT_EQ(s.dataset_name, "dataset-name");
  EXPECT_EQ(s.builder, "SweetKnnIndex::Save");
  EXPECT_EQ(s.shard_index, 0u);
  EXPECT_EQ(s.shard_count, 1u);
  EXPECT_EQ(s.shard_offset, 0u);
  ASSERT_EQ(s.target.rows(), target.rows());
  ASSERT_EQ(s.target.cols(), target.cols());
  EXPECT_EQ(std::memcmp(s.target.data(), target.data(),
                        target.size() * sizeof(float)),
            0);
  EXPECT_GT(s.clustering.num_clusters, 0);
  EXPECT_EQ(s.clustering.assignment.size(), target.rows());
  EXPECT_EQ(s.options_fingerprint,
            OptionsFingerprint(core::TiOptions::Sweet()));
  EXPECT_EQ(s.device_fingerprint,
            DeviceFingerprint(gpusim::DeviceSpec::TeslaK20c()));
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, SaveLoadSaveIsByteIdentical) {
  const std::string path1 = TempPath("canonical1.sksnap");
  const std::string path2 = TempPath("canonical2.sksnap");
  const IndexSnapshot snap = BuildSnapshot(path1);
  ASSERT_TRUE(SaveIndexSnapshot(snap, path2).ok());
  EXPECT_EQ(ReadFile(path1), ReadFile(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(IndexSnapshotTest, WarmLoadedIndexAnswersBitIdentically) {
  const std::string path = TempPath("warm.sksnap");
  const HostMatrix target = RandomMatrix(150, 7, 11);
  SweetKnnIndex cold(target);
  ASSERT_TRUE(cold.Save(path).ok());

  Result<std::unique_ptr<SweetKnnIndex>> warm = SweetKnnIndex::Load(path);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm.value()->size(), cold.size());
  EXPECT_EQ(warm.value()->dims(), cold.dims());

  const HostMatrix queries = RandomMatrix(40, 7, 12);
  for (const int k : {1, 5, 17}) {
    const KnnResult a = cold.Query(queries, k);
    const KnnResult b = warm.value()->Query(queries, k);
    ASSERT_EQ(a.num_queries(), b.num_queries());
    ASSERT_EQ(a.k(), b.k());
    for (size_t q = 0; q < a.num_queries(); ++q) {
      ASSERT_EQ(std::memcmp(a.row(q), b.row(q),
                            static_cast<size_t>(k) * sizeof(Neighbor)),
                0)
          << "k=" << k << " query " << q;
    }
  }
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, LoadRejectsOptionsFingerprintMismatch) {
  const std::string path = TempPath("optmismatch.sksnap");
  BuildSnapshot(path);
  SweetKnn::Config config;
  config.options = core::TiOptions::BasicTi();
  Result<std::unique_ptr<SweetKnnIndex>> loaded =
      SweetKnnIndex::Load(path, config);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("different options"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, LoadRejectsDeviceFingerprintMismatch) {
  const std::string path = TempPath("devmismatch.sksnap");
  BuildSnapshot(path);
  SweetKnn::Config config;
  config.device = gpusim::DeviceSpec::TeslaK40();
  Result<std::unique_ptr<SweetKnnIndex>> loaded =
      SweetKnnIndex::Load(path, config);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("different device"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, SimThreadsDoesNotChangeTheFingerprint) {
  core::TiOptions a = core::TiOptions::Sweet();
  core::TiOptions b = a;
  b.sim_threads = 7;
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  b.kmeans_iterations = 3;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
}

uint32_t FileFormatVersion(const std::string& path) {
  const std::string bytes = ReadFile(path);
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kSnapshotMagic),
              sizeof(version));
  return version;
}

TEST(SnapshotVersionTest, PristineSnapshotsStayFormatV1) {
  // The v2 format bump must not disturb pristine files: an unmutated
  // index writes exactly the bytes a pre-v2 build wrote, so existing
  // snapshot fleets stay byte-stable (and hash-stable) across upgrades.
  const std::string path = TempPath("pristine_v1.sksnap");
  const IndexSnapshot snap = BuildSnapshot(path);
  EXPECT_FALSE(snap.HasOverlay());
  EXPECT_EQ(FileFormatVersion(path), kSnapshotFormatV1);

  // The v2 reader reports the original version and re-encodes the file
  // byte-identically.
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().format_version(), kSnapshotFormatV1);
  EXPECT_EQ(reader.value().Section(kSectionMutation), nullptr);
  const std::string resaved = TempPath("pristine_v1_resave.sksnap");
  ASSERT_TRUE(SaveIndexSnapshot(snap, resaved).ok());
  EXPECT_EQ(ReadFile(path), ReadFile(resaved));
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

/// A snapshot carrying every overlay field: explicit id map (base ids
/// with holes), delta points, tombstones, and an allocator watermark.
IndexSnapshot OverlaySnapshot(const std::string& path) {
  IndexSnapshot snap = BuildSnapshot(path, 40, 3, 19);
  const size_t dims = snap.target.cols();
  snap.id_map.clear();
  for (uint32_t i = 0; i < snap.target.rows(); ++i) {
    snap.id_map.push_back(2 * i);  // holes: compacted-away history
  }
  snap.delta_ids = {90, 93, 95};
  snap.delta_points = HostMatrix(3, dims);
  Rng rng(23);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t j = 0; j < dims; ++j) {
      snap.delta_points.at(r, j) = rng.NextFloat();
    }
  }
  snap.tombstones = {4, 38};
  snap.next_id = 96;
  return snap;
}

TEST(SnapshotVersionTest, OverlayRoundTripsThroughV2) {
  const std::string path = TempPath("overlay_v2.sksnap");
  const IndexSnapshot snap = OverlaySnapshot(path);
  ASSERT_TRUE(snap.HasOverlay());
  ASSERT_TRUE(ValidateIndexSnapshot(snap).ok());
  ASSERT_TRUE(SaveIndexSnapshot(snap, path).ok());
  EXPECT_EQ(FileFormatVersion(path), kSnapshotFormatV2);

  Result<IndexSnapshot> loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const IndexSnapshot& l = loaded.value();
  EXPECT_EQ(l.id_map, snap.id_map);
  EXPECT_EQ(l.delta_ids, snap.delta_ids);
  EXPECT_EQ(l.tombstones, snap.tombstones);
  EXPECT_EQ(l.next_id, snap.next_id);
  ASSERT_EQ(l.delta_points.rows(), snap.delta_points.rows());
  ASSERT_EQ(l.delta_points.cols(), snap.delta_points.cols());
  EXPECT_EQ(std::memcmp(l.delta_points.data(), snap.delta_points.data(),
                        snap.delta_points.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(l.target.data(), snap.target.data(),
                        snap.target.size() * sizeof(float)),
            0);

  // v2 encoding is canonical too: Save(Load(file)) == file.
  const std::string resaved = TempPath("overlay_v2_resave.sksnap");
  ASSERT_TRUE(SaveIndexSnapshot(l, resaved).ok());
  EXPECT_EQ(ReadFile(path), ReadFile(resaved));
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

TEST(SnapshotVersionTest, MutatedIndexSavesAsV2AndWarmLoadsExactly) {
  // Through the real index path: mutate, save (must become v2), load,
  // and answer bit-identically to the still-live mutated index.
  const std::string path = TempPath("mutated_index.sksnap");
  const HostMatrix target = RandomMatrix(90, 5, 31);
  SweetKnnIndex index(target);
  Rng rng(37);
  for (int i = 0; i < 7; ++i) {
    std::vector<float> p(5);
    for (float& x : p) x = rng.NextFloat();
    index.Insert(p);
  }
  ASSERT_TRUE(index.Remove(12));
  ASSERT_TRUE(index.Remove(57));
  ASSERT_TRUE(index.Save(path).ok());
  EXPECT_EQ(FileFormatVersion(path), kSnapshotFormatV2);

  Result<std::unique_ptr<SweetKnnIndex>> warm = SweetKnnIndex::Load(path);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm.value()->size(), index.size());
  EXPECT_EQ(warm.value()->next_id(), index.next_id());
  const HostMatrix queries = RandomMatrix(25, 5, 41);
  for (const int k : {1, 4, 11}) {
    const KnnResult a = index.Query(queries, k);
    const KnnResult b = warm.value()->Query(queries, k);
    for (size_t q = 0; q < a.num_queries(); ++q) {
      ASSERT_EQ(std::memcmp(a.row(q), b.row(q),
                            static_cast<size_t>(k) * sizeof(Neighbor)),
                0)
          << "k=" << k << " query " << q;
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotVersionTest, OverlayValidationRejectsInconsistency) {
  const std::string path = TempPath("overlay_bad.sksnap");
  const IndexSnapshot good = OverlaySnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(ValidateIndexSnapshot(good).ok());

  {
    IndexSnapshot bad = good;
    std::swap(bad.delta_ids[0], bad.delta_ids[1]);
    const Status s = ValidateIndexSnapshot(bad);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("not strictly increasing"),
              std::string::npos)
        << s.message();
  }
  {
    // A tombstone naming a delta id: deletes of delta-resident points
    // are physical erases, never tombstones.
    IndexSnapshot bad = good;
    bad.tombstones.push_back(bad.delta_ids[1]);
    const Status s = ValidateIndexSnapshot(bad);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("erased, not tombstoned"), std::string::npos)
        << s.message();
  }
  {
    // Allocator watermark below an existing id would hand out dupes.
    IndexSnapshot bad = good;
    bad.next_id = bad.delta_ids.back();
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
  {
    // Delta matrix shape must agree with the delta id list.
    IndexSnapshot bad = good;
    bad.delta_ids.push_back(bad.next_id - 1);
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
  {
    // Delta ids must sit above every base id (monotone allocation).
    IndexSnapshot bad = good;
    bad.delta_ids[0] = bad.id_map.back() - 1;
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
  {
    IndexSnapshot bad = good;
    bad.id_map[0] = bad.id_map[1];  // not strictly increasing
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
}

TEST(ValidateIndexSnapshotTest, CatchesStructuralCorruption) {
  const std::string path = TempPath("structural.sksnap");
  const IndexSnapshot good = BuildSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(ValidateIndexSnapshot(good).ok());

  {
    IndexSnapshot bad = good;
    bad.clustering.assignment[0] =
        static_cast<uint32_t>(bad.clustering.num_clusters);
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
  {
    IndexSnapshot bad = good;
    bad.clustering.member_offsets.back() += 1;
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
  {
    IndexSnapshot bad = good;
    bad.clustering.member_ids[1] = bad.clustering.member_ids[0];
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
  {
    IndexSnapshot bad = good;
    bad.clustering.num_clusters = 0;
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
  {
    IndexSnapshot bad = good;
    bad.shard_index = 3;
    bad.shard_count = 2;
    EXPECT_FALSE(ValidateIndexSnapshot(bad).ok());
  }
}

TEST(ShardDirectoryTest, PathNamingAndListing) {
  EXPECT_EQ(ShardSnapshotPath("/d", 2, 8), "/d/shard-2-of-8.sksnap");

  const std::string dir = TempPath("shardset");
  std::filesystem::create_directories(dir);
  for (int s = 0; s < 3; ++s) {
    WriteFile(ShardSnapshotPath(dir, s, 3), "placeholder");
  }
  Result<std::vector<std::string>> listed = ListShardSnapshots(dir);
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  ASSERT_EQ(listed.value().size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(listed.value()[static_cast<size_t>(s)],
              ShardSnapshotPath(dir, s, 3));
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardDirectoryTest, IncompleteOrInconsistentSetsRejected) {
  EXPECT_FALSE(ListShardSnapshots("/nonexistent/dir").ok());

  const std::string dir = TempPath("badshardset");
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(ListShardSnapshots(dir).ok());  // no snapshots at all

  WriteFile(ShardSnapshotPath(dir, 0, 3), "x");
  WriteFile(ShardSnapshotPath(dir, 2, 3), "x");
  Result<std::vector<std::string>> gap = ListShardSnapshots(dir);
  ASSERT_FALSE(gap.ok());
  EXPECT_NE(gap.status().message().find("missing shard 1"),
            std::string::npos)
      << gap.status().message();

  WriteFile(ShardSnapshotPath(dir, 1, 3), "x");
  WriteFile(ShardSnapshotPath(dir, 0, 2), "x");  // mixed shard counts
  EXPECT_FALSE(ListShardSnapshots(dir).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sweetknn::store
