// Corruption fuzzing of the cluster wire protocol (docs/distributed.md):
// the frame layer (net/frame.h) and every message codec (net/wire.h)
// driven over seeded corruptions — single-bit flips of every bit,
// every truncation prefix, oversized length fields, version skew, and
// random byte soup. The acceptance bar is the .sksnap store's: every
// corruption is rejected with a clean Status, never a crash, a hang, or
// a silently wrong decode.
//
// The frame CRC covers type + payload_len + payload, and magic/version
// are validated by value, so EVERY single-bit flip of a valid frame must
// be rejected. Message payloads sit below the CRC, so a flipped payload
// byte may still decode (the frame layer is what vouches for bytes);
// there the bar is bounds-safety: no crash, no absurd allocation.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "net/frame.h"
#include "net/wire.h"
#include "store/payload_io.h"

namespace sweetknn::net {
namespace {

std::string SamplePayload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string payload(n, '\0');
  for (char& c : payload) c = static_cast<char>(rng.NextBounded(256));
  return payload;
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

TEST(FrameFuzzTest, RoundTrip) {
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                         size_t{4096}}) {
    const std::string payload = SamplePayload(n, 11 + n);
    const std::string bytes = EncodeFrame(42, payload);
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes + n + sizeof(uint32_t));
    Frame frame;
    size_t consumed = 0;
    ASSERT_TRUE(DecodeFrame(bytes, &frame, &consumed).ok());
    EXPECT_EQ(frame.type, 42u);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(consumed, bytes.size());
  }
}

TEST(FrameFuzzTest, EverySingleBitFlipRejected) {
  const std::string payload = SamplePayload(96, 23);
  const std::string good = EncodeFrame(7, payload);
  Frame frame;
  ASSERT_TRUE(DecodeFrame(good, &frame, nullptr).ok());
  for (size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      const Status status = DecodeFrame(bad, &frame, nullptr);
      EXPECT_FALSE(status.ok())
          << "flip of byte " << byte << " bit " << bit << " was accepted";
    }
  }
}

TEST(FrameFuzzTest, EveryTruncationRejected) {
  const std::string good = EncodeFrame(9, SamplePayload(64, 31));
  Frame frame;
  for (size_t len = 0; len < good.size(); ++len) {
    const Status status = DecodeFrame(good.substr(0, len), &frame, nullptr);
    EXPECT_FALSE(status.ok())
        << "truncation to " << len << " of " << good.size()
        << " bytes was accepted";
  }
}

TEST(FrameFuzzTest, OversizedLengthRejected) {
  // A header promising more than the payload cap must be refused before
  // anything is allocated for it — regardless of how many bytes follow.
  for (const uint64_t len :
       {kMaxFramePayload + 1, uint64_t{1} << 40, ~uint64_t{0}}) {
    std::string bytes;
    const uint32_t magic = kFrameMagic;
    const uint32_t version = kFrameVersion;
    const uint32_t type = 3;
    bytes.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
    bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
    bytes.append(reinterpret_cast<const char*>(&type), sizeof(type));
    bytes.append(reinterpret_cast<const char*>(&len), sizeof(len));
    bytes.append(1024, 'x');
    Frame frame;
    const Status status = DecodeFrame(bytes, &frame, nullptr);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("cap"), std::string::npos)
        << status.ToString();
  }
}

TEST(FrameFuzzTest, VersionSkewRejected) {
  std::string bytes = EncodeFrame(5, SamplePayload(16, 47));
  for (const uint32_t version : {uint32_t{0}, uint32_t{2}, ~uint32_t{0}}) {
    std::string skewed = bytes;
    std::memcpy(skewed.data() + sizeof(uint32_t), &version, sizeof(version));
    Frame frame;
    const Status status = DecodeFrame(skewed, &frame, nullptr);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("version"), std::string::npos)
        << status.ToString();
  }
}

TEST(FrameFuzzTest, BadMagicRejected) {
  std::string bytes = EncodeFrame(5, "hello");
  const uint32_t magic = 0xdeadbeef;
  std::memcpy(bytes.data(), &magic, sizeof(magic));
  Frame frame;
  EXPECT_FALSE(DecodeFrame(bytes, &frame, nullptr).ok());
}

TEST(FrameFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(20260809);
  Frame frame;
  for (int i = 0; i < 2000; ++i) {
    const size_t n = rng.NextBounded(200);
    std::string soup = SamplePayload(n, rng.NextU64());
    // Half the time, make the soup header-shaped so the deeper checks
    // (length, CRC) get exercised instead of failing at the magic.
    if (n >= kFrameHeaderBytes && rng.NextBounded(2) == 0) {
      const uint32_t magic = kFrameMagic;
      const uint32_t version = kFrameVersion;
      std::memcpy(soup.data(), &magic, sizeof(magic));
      std::memcpy(soup.data() + 4, &version, sizeof(version));
    }
    DecodeFrame(soup, &frame, nullptr);  // must return, never crash
  }
}

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

HostMatrix SmallMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  HostMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m.at(r, c) = rng.NextFloat();
  }
  return m;
}

/// One representative encoded payload per message type, paired with its
/// decoder. The fuzz below drives every decoder over every truncation
/// prefix and a byte-flip sweep.
struct CodecSample {
  const char* name;
  std::string payload;
  Status (*decode)(const std::string&);
};

std::vector<CodecSample> AllCodecSamples() {
  std::vector<CodecSample> samples;

  PrepareColdRequest cold;
  cold.shard_index = 2;
  cold.offset = 100;
  cold.slice = SmallMatrix(5, 3, 1);
  cold.tenant = "faces";
  samples.push_back({"PrepareCold", EncodePrepareCold(cold),
                     [](const std::string& p) {
                       PrepareColdRequest req;
                       return DecodePrepareCold(p, &req);
                     }});

  PrepareSnapshotRequest snap;
  snap.shard_index = 1;
  snap.path = "/tmp/some/shard-0-of-2.sksnap";
  snap.tenant = "faces";
  samples.push_back({"PrepareSnapshot", EncodePrepareSnapshot(snap),
                     [](const std::string& p) {
                       PrepareSnapshotRequest req;
                       return DecodePrepareSnapshot(p, &req);
                     }});

  QueryRequest query;
  query.k = 4;
  query.queries = SmallMatrix(3, 6, 2);
  query.shard_indices = {0, 2, 5};
  query.tenant = "faces";
  samples.push_back({"Query", EncodeQuery(query), [](const std::string& p) {
                       QueryRequest req;
                       return DecodeQuery(p, &req);
                     }});

  QueryReply reply;
  reply.shard_indices = {1, 3};
  reply.answers.resize(2);
  reply.answers[0].pristine = true;
  reply.answers[0].offset = 10;
  reply.answers[0].result = KnnResult(3, 4);
  reply.answers[1].pristine = false;
  reply.answers[1].result = KnnResult(3, 4);
  samples.push_back({"QueryReply", EncodeQueryReply(reply),
                     [](const std::string& p) {
                       QueryReply r;
                       return DecodeQueryReply(p, &r);
                     }});

  InsertRequest insert;
  insert.shard_index = 1;
  insert.id = 77;
  insert.point = {0.5f, -0.25f, 3.0f};
  samples.push_back({"Insert", EncodeInsert(insert), [](const std::string& p) {
                       InsertRequest req;
                       return DecodeInsert(p, &req);
                     }});

  RemoveRequest remove;
  remove.shard_index = 0;
  remove.id = 13;
  samples.push_back({"Remove", EncodeRemove(remove), [](const std::string& p) {
                       RemoveRequest req;
                       return DecodeRemove(p, &req);
                     }});

  RemoveReply removed;
  removed.found = true;
  samples.push_back({"RemoveReply", EncodeRemoveReply(removed),
                     [](const std::string& p) {
                       RemoveReply r;
                       return DecodeRemoveReply(p, &r);
                     }});

  CompactRequest compact;
  compact.shard_index = 3;
  samples.push_back({"Compact", EncodeCompact(compact),
                     [](const std::string& p) {
                       CompactRequest req;
                       return DecodeCompact(p, &req);
                     }});

  SaveShardRequest save;
  save.shard_index = 1;
  save.shard_count = 4;
  save.path = "/tmp/catchup-1-7.sksnap";
  save.dataset_name = "fuzz";
  save.next_id = 99;
  samples.push_back({"SaveShard", EncodeSaveShard(save),
                     [](const std::string& p) {
                       SaveShardRequest req;
                       return DecodeSaveShard(p, &req);
                     }});

  ListIndexesReply indexes;
  indexes.names = {"default", "faces", "a-rather-long-index-name"};
  samples.push_back({"ListIndexesReply", EncodeListIndexesReply(indexes),
                     [](const std::string& p) {
                       ListIndexesReply r;
                       return DecodeListIndexesReply(p, &r);
                     }});

  HealthReply health;
  health.queries_served = 12;
  health.shards.push_back({0, 50, 3, 1, 52});
  health.shards.push_back({2, 40, 0, 0, 40});
  samples.push_back({"HealthReply", EncodeHealthReply(health),
                     [](const std::string& p) {
                       HealthReply r;
                       return DecodeHealthReply(p, &r);
                     }});

  // Offline-job codecs (docs/modalities.md): the range payloads carry a
  // variable-cardinality CSR section, so their truncation/flip coverage
  // guards the offset-monotonicity and allocation checks.
  JobSubmitRequest job_submit;
  job_submit.job_id = 9;
  job_submit.kind = WireJobKind::kRange;
  job_submit.radius = 0.5f;
  job_submit.k = 3;
  job_submit.queries = SmallMatrix(2, 3, 9);
  job_submit.shard_indices = {0, 1};
  job_submit.chunk_rows = 16;
  job_submit.tenant = "faces";
  samples.push_back({"JobSubmit", EncodeJobSubmit(job_submit),
                     [](const std::string& p) {
                       JobSubmitRequest req;
                       return DecodeJobSubmit(p, &req);
                     }});

  JobPollRequest job_poll;
  job_poll.job_id = 9;
  samples.push_back({"JobPoll", EncodeJobPoll(job_poll),
                     [](const std::string& p) {
                       JobPollRequest req;
                       return DecodeJobPoll(p, &req);
                     }});

  JobPollReply job_progress;
  job_progress.state = WireJobState::kRunning;
  job_progress.total_rows = 100;
  job_progress.done_rows = 40;
  job_progress.error = "still chewing";
  samples.push_back({"JobPollReply", EncodeJobPollReply(job_progress),
                     [](const std::string& p) {
                       JobPollReply r;
                       return DecodeJobPollReply(p, &r);
                     }});

  JobCancelRequest job_cancel;
  job_cancel.job_id = 9;
  samples.push_back({"JobCancel", EncodeJobCancel(job_cancel),
                     [](const std::string& p) {
                       JobCancelRequest req;
                       return DecodeJobCancel(p, &req);
                     }});

  JobResultRequest job_result;
  job_result.job_id = 9;
  samples.push_back({"JobResult", EncodeJobResult(job_result),
                     [](const std::string& p) {
                       JobResultRequest req;
                       return DecodeJobResult(p, &req);
                     }});

  JobResultReply job_answer;
  job_answer.kind = WireJobKind::kRange;
  job_answer.range.AppendRow({Neighbor{3, 0.25f}, Neighbor{8, 0.5f}});
  job_answer.range.AppendRow({});
  job_answer.range.AppendRow({Neighbor{1, 0.125f}});
  job_answer.knn = KnnResult(1, 2);
  samples.push_back({"JobResultReply", EncodeJobResultReply(job_answer),
                     [](const std::string& p) {
                       JobResultReply r;
                       return DecodeJobResultReply(p, &r);
                     }});

  ExportLiveRequest export_live;
  export_live.shard_indices = {0, 2};
  export_live.tenant = "faces";
  samples.push_back({"ExportLive", EncodeExportLive(export_live),
                     [](const std::string& p) {
                       ExportLiveRequest req;
                       return DecodeExportLive(p, &req);
                     }});

  ExportLiveReply export_reply;
  export_reply.ids = {3, 5};
  export_reply.points = SmallMatrix(2, 3, 11);
  samples.push_back({"ExportLiveReply", EncodeExportLiveReply(export_reply),
                     [](const std::string& p) {
                       ExportLiveReply r;
                       return DecodeExportLiveReply(p, &r);
                     }});

  return samples;
}

TEST(WireFuzzTest, EveryTruncationRejected) {
  for (const CodecSample& sample : AllCodecSamples()) {
    SCOPED_TRACE(sample.name);
    ASSERT_TRUE(sample.decode(sample.payload).ok())
        << "round trip broken for " << sample.name;
    for (size_t len = 0; len < sample.payload.size(); ++len) {
      EXPECT_FALSE(sample.decode(sample.payload.substr(0, len)).ok())
          << sample.name << " accepted a truncation to " << len << " of "
          << sample.payload.size() << " bytes";
    }
  }
}

TEST(WireFuzzTest, ByteFlipsNeverCrash) {
  // Below the frame CRC a flipped byte may legitimately still decode
  // (the values are data, not structure) — the bar here is that a
  // corrupted length prefix or count can never crash the decoder or
  // make it allocate absurdly. Each decode must simply return.
  for (const CodecSample& sample : AllCodecSamples()) {
    SCOPED_TRACE(sample.name);
    for (size_t byte = 0; byte < sample.payload.size(); ++byte) {
      for (const uint8_t mask : {0x01, 0x80, 0xff}) {
        std::string bad = sample.payload;
        bad[byte] = static_cast<char>(bad[byte] ^ mask);
        sample.decode(bad);  // must return, never crash
      }
    }
  }
}

TEST(WireFuzzTest, RandomSoupNeverCrashes) {
  Rng rng(424242);
  for (int i = 0; i < 500; ++i) {
    const std::string soup = SamplePayload(rng.NextBounded(160), rng.NextU64());
    for (const CodecSample& sample : AllCodecSamples()) {
      sample.decode(soup);  // must return, never crash
    }
    DecodeError(soup);  // returns some Status either way; must not crash
  }
}

// The tenant name rides at the END of the prepare/query payloads (the
// legacy field order is untouched ahead of it) and must survive the
// round trip exactly — a worker validating the wrong index name would
// serve cross-tenant answers.
TEST(WireFuzzTest, TenantFieldRoundTrip) {
  PrepareColdRequest cold;
  cold.shard_index = 1;
  cold.slice = SmallMatrix(2, 3, 5);
  cold.tenant = "faces";
  PrepareColdRequest cold_out;
  ASSERT_TRUE(DecodePrepareCold(EncodePrepareCold(cold), &cold_out).ok());
  EXPECT_EQ(cold_out.tenant, "faces");

  PrepareSnapshotRequest snap;
  snap.shard_index = 0;
  snap.path = "/tmp/x.sksnap";
  snap.tenant = "plates";
  PrepareSnapshotRequest snap_out;
  ASSERT_TRUE(
      DecodePrepareSnapshot(EncodePrepareSnapshot(snap), &snap_out).ok());
  EXPECT_EQ(snap_out.tenant, "plates");

  QueryRequest query;
  query.k = 2;
  query.queries = SmallMatrix(1, 3, 6);
  query.shard_indices = {0};
  query.tenant = "default";
  QueryRequest query_out;
  ASSERT_TRUE(DecodeQuery(EncodeQuery(query), &query_out).ok());
  EXPECT_EQ(query_out.tenant, "default");
}

TEST(WireFuzzTest, ListIndexesReplyRoundTripAndAbsurdCountRejected) {
  ListIndexesReply reply;
  reply.names = {"default", "faces"};
  ListIndexesReply out;
  ASSERT_TRUE(
      DecodeListIndexesReply(EncodeListIndexesReply(reply), &out).ok());
  EXPECT_EQ(out.names, reply.names);

  ListIndexesReply empty;
  ASSERT_TRUE(
      DecodeListIndexesReply(EncodeListIndexesReply(empty), &out).ok());
  EXPECT_TRUE(out.names.empty());

  // A count no payload of this size could carry must be refused before
  // any reserve() happens.
  store::PayloadWriter w;
  w.PutU64(~uint64_t{0});
  const Status absurd = DecodeListIndexesReply(w.Take(), &out);
  ASSERT_FALSE(absurd.ok());
  EXPECT_EQ(absurd.code(), StatusCode::kIoError) << absurd.ToString();
}

TEST(WireFuzzTest, ErrorRoundTrip) {
  const Status want = Status::Unavailable("shard 3 has no live host");
  const Status got = DecodeError(EncodeError(want));
  EXPECT_EQ(got.code(), want.code());
  EXPECT_EQ(got.message(), want.message());
  // An Error frame carrying Ok is nonsense on the wire; the decoder
  // treats code 0 the same as any other out-of-range code.
  const Status degenerate = DecodeError(EncodeError(Status::Ok()));
  EXPECT_EQ(degenerate.code(), StatusCode::kIoError)
      << degenerate.ToString();
}

}  // namespace
}  // namespace sweetknn::net
